"""E6 — PCE interception overhead and the line-rate (precomputation) claim."""

from conftest import run_and_check

from repro.experiments import e6_pce_overhead as e6


def test_bench_e6_pce_overhead(benchmark):
    run_and_check(
        benchmark,
        lambda: e6.run_e6(num_sites=4, num_flows=25),
        e6.check_shape,
        e6.HEADERS,
        "E6: DNS-path latency with/without PCEs; precomputed vs on-demand",
    )
