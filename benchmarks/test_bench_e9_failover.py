"""E9 — locator failure recovery: probing + backup locators vs static mapping."""

from conftest import run_and_check

from repro.experiments import e9_failover as e9


def test_bench_e9_failover(benchmark):
    rows = run_and_check(
        benchmark,
        lambda: e9.run_e9(),
        e9.check_shape,
        e9.HEADERS,
        "E9: access-link failure — blackhole window and loss",
    )
    probing = next(row for row in rows if row.variant == "pce+probing")
    # Detection should take a small number of probe periods, not seconds.
    assert probing.blackhole_seconds < 2.0
