#!/usr/bin/env python
"""cProfile harness for the workload hot path.

Builds one scenario, runs the bulk workload under cProfile and prints
the top functions by cumulative and internal time — the tool behind the
hot-path passes (``__slots__`` on packets, the bucketed event queue,
defaultdict accounting, the fluid tier).  Keep invocations comparable:
the world is built *outside* the profiled region, so the numbers are the
workload + data-plane costs only.

Usage::

    PYTHONPATH=src python benchmarks/profile_workload.py
    PYTHONPATH=src python benchmarks/profile_workload.py --pacing fluid
    PYTHONPATH=src python benchmarks/profile_workload.py \\
        --sites 60 --flows 120 --packets 200 --top 30 --sort tottime
"""

import argparse
import cProfile
import pstats
import sys

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.traffic.popularity import PACING_MODES


def profile_run(args):
    config = ScenarioConfig(control_plane="pce", num_sites=args.sites,
                            num_providers=8, seed=args.seed, tracing=False,
                            access_rate_bps=10_000_000.0)
    workload = WorkloadConfig(num_flows=args.flows,
                              arrival_rate=args.arrival_rate, zipf_s=1.2,
                              size_dist="constant",
                              packets_per_flow=args.packets,
                              payload_bytes=1200, pacing=args.pacing,
                              pace_rate_bps=2_000_000.0,
                              elephant_threshold=10.0, fluid_threshold=10.0,
                              grace_period=10.0)
    scenario = build_scenario(config)  # outside the profiled region
    profiler = cProfile.Profile()
    profiler.enable()
    records = run_workload(scenario, workload)
    profiler.disable()
    ok = sum(1 for record in records if not record.failed)
    print(f"pacing={args.pacing} sites={args.sites} flows={len(records)} "
          f"({ok} ok), {scenario.sim.processed_events} events processed")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return stats


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pacing", default="shaped", choices=PACING_MODES,
                        help="sender mode to profile (default: shaped)")
    parser.add_argument("--sites", type=int, default=60)
    parser.add_argument("--flows", type=int, default=120)
    parser.add_argument("--packets", type=int, default=200,
                        help="packets per flow (default: 200, bulk-heavy)")
    parser.add_argument("--arrival-rate", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print (default: 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default: cumulative)")
    profile_run(parser.parse_args(argv))
    return 0


if __name__ == "__main__":
    sys.exit(main())
