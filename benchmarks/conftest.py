"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artefact (DESIGN.md §4): it runs the
experiment once inside pytest-benchmark's timer, prints the regenerated
table, and asserts the expected *shape* (who wins, by what kind of factor)
via the experiment's ``check_shape``.
"""


def run_and_check(benchmark, run, check, headers, title):
    """Run an experiment under the benchmark timer, print, and shape-check."""
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.metrics import format_table

    table = format_table(headers, [row.as_tuple() for row in rows], title=title)
    print()
    print(table)
    failures = check(rows)
    assert failures == [], f"shape check failed: {failures}"
    return rows
