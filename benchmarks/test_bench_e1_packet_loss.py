"""E1 — initial-packet fate vs control plane and miss policy (claim C1)."""

from conftest import run_and_check

from repro.experiments import e1_packet_loss as e1


def test_bench_e1_packet_loss(benchmark):
    rows = run_and_check(
        benchmark,
        lambda: e1.run_e1(num_sites=8, num_flows=40, cache_ttls=(2.0, 60.0)),
        e1.check_shape,
        e1.HEADERS,
        "E1: first-data-packet fate during mapping resolution",
    )
    pce_rows = [row for row in rows if row.system == "pce"]
    assert all(row.sent_immediately == row.flows for row in pce_rows)
