"""Benchmarks for the worldbuild layer: route build and world reuse.

BENCH tracks the *build* path from this PR on: provider-mesh route
installation through the memoized :class:`~repro.net.routing.RoutingPlan`
at 60/120/500 sites, full scenario builds, and the checkpoint-restore
world reuse that the sweep workers lean on.  The reuse benchmark enforces
the sweep engine's contract: restoring a cached world must be at least 5x
faster than building it (observed: >30x at 120 sites).
"""

import os
import time

import pytest

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.worldbuild import WorldBuilder, build_world
from repro.net.routing import install_mesh_routes
from repro.net.topology import build_topology
from repro.sim import Simulator

SITE_COUNTS = (60, 120, 500)

#: Restore-vs-build floor the reuse benchmarks assert.  Locally the contract
#: is 5x (observed >18x); CI runners are noisy single-shot timers, so the
#: workflow relaxes the gate via this env var rather than flaking the build.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "5.0"))


def _build_topology(sites):
    sim = Simulator(seed=11, tracing=False)
    return build_topology(sim, num_sites=sites, num_providers=8)


@pytest.mark.parametrize("sites", SITE_COUNTS)
def test_bench_topology_build(benchmark, sites):
    """Full topology build (nodes, links, plan-based route install)."""
    topology = benchmark.pedantic(_build_topology, args=(sites,),
                                  rounds=1, iterations=1)
    assert len(topology.sites) == sites
    total = sum(len(p.fib) for p in topology.providers)
    print(f"\n  {sites} sites: {total} provider FIB entries, "
          f"{len(topology.attachments)} attachments")
    assert total > 0


@pytest.mark.parametrize("sites", SITE_COUNTS)
def test_bench_route_install(benchmark, sites):
    """Plan-based attachment install vs the from-scratch reference."""
    topology = _build_topology(sites)
    providers = topology.providers
    attachments = topology.attachments

    started = time.perf_counter()
    install_mesh_routes(providers, attachments)  # fresh Dijkstra every call
    full_elapsed = time.perf_counter() - started

    plan = topology.routing_plan()
    benchmark.pedantic(plan.install, args=(attachments,),
                       rounds=1, iterations=1)
    print(f"\n  {sites} sites: from-scratch reference {full_elapsed:.4f}s "
          f"for {len(attachments)} attachments")


@pytest.mark.parametrize("sites", SITE_COUNTS)
def test_bench_world_build(benchmark, sites):
    """Scenario (world) build through the worldbuild layer."""
    config = ScenarioConfig(control_plane="pce", num_sites=sites,
                            num_providers=8, tracing=False)
    scenario = benchmark.pedantic(build_world, args=(config,),
                                  rounds=1, iterations=1)
    assert scenario.world_checkpoint is not None


def test_bench_world_reuse_speedup(benchmark):
    """Cache-restore must beat a fresh 120-site build by >=5x (sweep contract)."""
    config = ScenarioConfig(control_plane="pce", num_sites=120,
                            num_providers=8, tracing=False)
    started = time.perf_counter()
    build_world(config)
    fresh_elapsed = time.perf_counter() - started

    builder = WorldBuilder()
    builder.scenario_for(config)  # warm the cache (miss + checkpoint)

    started = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        builder.scenario_for(config)
    reuse_elapsed = (time.perf_counter() - started) / rounds
    assert builder.stats.hits == rounds

    benchmark.pedantic(builder.scenario_for, args=(config,),
                       rounds=1, iterations=1)
    speedup = fresh_elapsed / reuse_elapsed
    print(f"\n  fresh build {fresh_elapsed:.3f}s, reuse {reuse_elapsed:.4f}s "
          f"-> {speedup:.0f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"world reuse only {speedup:.1f}x faster than a fresh build")


def test_bench_failover_world_reuse_speedup(benchmark):
    """Probing worlds (the failover preset's) now cache: restore >=5x build.

    Before periodic tasks became engine-owned, ``enable_probing`` worlds
    bypassed the cache entirely and were rebuilt per cell; this enforces
    the floor for the newly cacheable configuration.
    """
    config = ScenarioConfig(control_plane="pce", num_sites=60,
                            num_providers=8, enable_probing=True,
                            probe_period=0.3, probe_timeout=0.15,
                            start_irc=True, tracing=False)
    started = time.perf_counter()
    scenario = build_world(config)
    fresh_elapsed = time.perf_counter() - started
    assert scenario.world_checkpoint is not None   # no bypass remains
    assert any(task.armed for task in scenario.sim.periodic_tasks)

    builder = WorldBuilder()
    builder.scenario_for(config)  # warm the cache (miss + checkpoint)

    started = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        builder.scenario_for(config)
    reuse_elapsed = (time.perf_counter() - started) / rounds
    assert builder.stats.hits == rounds and builder.stats.bypasses == 0

    benchmark.pedantic(builder.scenario_for, args=(config,),
                       rounds=1, iterations=1)
    speedup = fresh_elapsed / reuse_elapsed
    print(f"\n  probing world: fresh build {fresh_elapsed:.3f}s, reuse "
          f"{reuse_elapsed:.4f}s -> {speedup:.0f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"failover world reuse only {speedup:.1f}x faster than a fresh build")
