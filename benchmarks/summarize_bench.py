#!/usr/bin/env python
"""Condense pytest-benchmark JSON into a compact perf-trajectory record.

CI runs the smoke benchmarks with ``--benchmark-json`` and feeds the
(large, machine-detailed) output through this script to produce
``BENCH_ci.json``: one median per benchmark plus the named speedup ratios
the paper reproduction leans on (world reuse, snapshot restores).  The
compact file is uploaded as a workflow artifact per run, so the perf
trajectory is machine-readable instead of living only in log scrollback.

Usage::

    python -m pytest benchmarks -k "not 500" --benchmark-json bench.json
    python benchmarks/summarize_bench.py bench.json -o BENCH_ci.json
"""

import argparse
import json
import sys

#: Named speedup ratios: name -> (numerator benchmark, denominator
#: benchmark), each matched on the exact pytest-benchmark ``name``.  A
#: ratio is emitted only when both sides ran (the 500-site benchmarks are
#: local-only, so CI summaries simply omit their ratios).
SPEEDUP_RATIOS = {
    # In-process checkpoint reuse: build vs cached-world restore.
    "world_reuse_120": ("test_bench_world_build[120]",
                        "test_bench_world_reuse_speedup"),
    # Shared snapshot store, live tier: build vs fork-inherited restore.
    "live_snapshot_restore_60": ("test_bench_world_build[60]",
                                 "test_bench_live_store_restore_speedup"),
    # Shared snapshot store, file tier: cold build+serialize vs warm blob
    # deserialization (what a warm --snapshot-dir rerun saves per world).
    "file_snapshot_restore_60": ("test_bench_file_store_cold_build",
                                 "test_bench_file_store_restore_speedup"),
    # 500-site amortization (local runs only).
    "live_snapshot_restore_500": ("test_bench_world_build[500]",
                                  "test_bench_snapshot_500_site_amortization"),
    # Pacing overhead at 60 sites: shaped sender / constant-spacing sender
    # (an overhead ratio — the benchmark gates it at <= 1.5x locally).
    "pacing_overhead_60": ("test_bench_workload_shaped",
                           "test_bench_workload_constant"),
    # Fluid tier at 60 sites: packet-level elephants / fluid chunks on the
    # same bulk-dominated workload (the benchmark gates it at >= 5x
    # locally; see REPRO_FLUID_SPEEDUP_FLOOR).
    "fluid_speedup_60": ("test_bench_workload_bulk_packet",
                         "test_bench_workload_bulk_fluid"),
    # Tiered topology scaling: 4k-site build / 1k-site build (an overhead
    # ratio — the benchmark gates it under REPRO_TOPOLOGY_SCALING_CEILING,
    # far below the 16x an all-pairs provider Dijkstra would cost).
    "tiered_build_scaling_4x": ("test_bench_tiered_build[4000]",
                                "test_bench_tiered_build[1000]"),
}

SCHEMA = "repro.bench/v1"


def summarize(raw):
    """The compact summary dict for one pytest-benchmark JSON payload."""
    medians = {}
    for bench in raw.get("benchmarks", []):
        medians[bench["name"]] = round(bench["stats"]["median"], 9)
    speedups = {}
    for name, (numerator, denominator) in SPEEDUP_RATIOS.items():
        if numerator in medians and denominator in medians \
                and medians[denominator] > 0:
            speedups[name] = round(medians[numerator] / medians[denominator], 3)
    summary = {
        "schema": SCHEMA,
        "python": raw.get("machine_info", {}).get("python_version"),
        "benchmarks": dict(sorted(medians.items())),
        "speedups": speedups,
    }
    commit = raw.get("commit_info") or {}
    if commit.get("id"):
        summary["commit"] = commit["id"]
    return summary


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="pytest-benchmark --benchmark-json file")
    parser.add_argument("-o", "--output", default="BENCH_ci.json",
                        help="compact summary destination (default: "
                             "BENCH_ci.json)")
    args = parser.parse_args(argv)
    with open(args.input) as handle:
        raw = json.load(handle)
    summary = summarize(raw)
    with open(args.output, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"{args.output}: {len(summary['benchmarks'])} medians, "
          f"{len(summary['speedups'])} speedup ratios")
    for name, ratio in sorted(summary["speedups"].items()):
        print(f"  {name}: {ratio:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
