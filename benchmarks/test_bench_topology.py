"""Benchmarks for tiered topology generation and hierarchical routing.

BENCH tracks internet-shaped world construction: :func:`repro.net.topogen.build`
with the tiered family at 1k and 4k stub sites, covering the tier-0 clique,
transit attachment, IXP wiring, and the hierarchical route install.  The
scaling gate asserts the whole point of :class:`HierarchicalRoutingPlan`:
growing the world 4x may not cost anywhere near the 16x a full all-pairs
Dijkstra over the provider mesh would (observed locally: ~4.5x).
"""

import os
import time

import pytest

from repro.net.topogen import TopologySpec, build
from repro.sim import Simulator

SITE_COUNTS = (1000, 4000)

#: Build-time ratio ceiling for the 4x site growth.  Quadratic route install
#: would land at ~16x; the hierarchical plan keeps it near-linear (~4.5x
#: observed).  CI runners are noisy single-shot timers, so the workflow
#: relaxes the gate via this env var rather than flaking the build.
SCALING_CEILING = float(os.environ.get("REPRO_TOPOLOGY_SCALING_CEILING", "10.0"))


def _build_tiered(sites):
    sim = Simulator(seed=11, tracing=False)
    spec = TopologySpec(family="tiered", num_sites=sites, hosts_per_site=1)
    return build(sim, spec)


@pytest.mark.parametrize("sites", SITE_COUNTS)
def test_bench_tiered_build(benchmark, sites):
    """Full tiered world build: tiers, IXPs, stubs, hierarchical install."""
    topology = benchmark.pedantic(_build_tiered, args=(sites,),
                                  rounds=1, iterations=1)
    assert len(topology.sites) == sites
    assert topology.tier_layout is not None
    assert topology.ix_routers
    fib_total = sum(len(p.fib) for p in topology.providers)
    print(f"\n  {sites} sites: {len(topology.providers)} providers, "
          f"{len(topology.ix_routers)} IXPs, {fib_total} provider FIB entries")
    assert fib_total > 0


def test_bench_tiered_scaling(benchmark):
    """4x more stub sites must build in well under 16x the time."""
    def measure():
        _build_tiered(SITE_COUNTS[0])  # warm allocator/caches off the clock
        timings = {}
        for sites in SITE_COUNTS:
            # Best of two: single-shot builds under a loaded suite can see
            # 2-3x GC/scheduler noise, which dwarfs the signal on the small
            # build and would flake the ratio gate.
            timings[sites] = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                _build_tiered(sites)
                timings[sites] = min(timings[sites],
                                     time.perf_counter() - started)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    small, large = (timings[s] for s in SITE_COUNTS)
    ratio = large / small if small else float("inf")
    print(f"\n  build time {SITE_COUNTS[0]}: {small:.2f}s, "
          f"{SITE_COUNTS[1]}: {large:.2f}s -> ratio {ratio:.1f}x "
          f"(ceiling {SCALING_CEILING:g}x)")
    assert ratio < SCALING_CEILING, (
        f"tiered build scaled {ratio:.1f}x for 4x sites "
        f"(ceiling {SCALING_CEILING:g}x — hierarchical install regressed?)")
