"""F1 — regenerate the Fig. 1 step timeline (DESIGN.md experiment F1)."""

from repro.experiments.fig1 import run_fig1_walkthrough
from repro.metrics import format_table


def test_bench_fig1_steps(benchmark):
    outcome = benchmark.pedantic(run_fig1_walkthrough, rounds=1, iterations=1)
    rows = [(label, "-" if when is None else f"{when * 1000:.3f} ms", description)
            for label, when, description in outcome["steps"]]
    print()
    print(format_table(("step", "time", "what happens"), rows,
                       title="Fig. 1 control-plane walkthrough (Steps 1-8)"))
    extra = outcome["records"]
    print(f"first encap {extra['first_encap'] * 1000:.3f} ms, "
          f"first decap {extra['first_decap'] * 1000:.3f} ms, "
          f"reverse multicast {extra['reverse_multicast'] * 1000:.3f} ms, "
          f"delivery {extra['delivery'] * 1000:.3f} ms")
    failed = {name for name, ok in outcome["checks"].items() if not ok}
    assert not failed, f"Fig. 1 checks failed: {failed}"
