"""E4 — independent ingress/egress TE via the PCE's per-flow mappings (claim C3)."""

from conftest import run_and_check

from repro.experiments import e4_te_flexibility as e4


def test_bench_e4_te_flexibility(benchmark):
    run_and_check(
        benchmark,
        lambda: e4.run_e4(num_sites=5, num_flows=40),
        e4.check_shape,
        e4.HEADERS,
        "E4: inbound/outbound provider load balance, PCE vs static LISP",
    )


def test_bench_e4_push_ablation(benchmark):
    """Ablation: push-to-all-ITRs vs push-to-one under TE re-homing."""
    from repro.experiments.scenario import FLOW_UDP_PORT, ScenarioConfig, build_scenario
    from repro.net.packet import udp_packet

    def run_ablation():
        results = {}
        for mode in ("all", "one"):
            config = ScenarioConfig(control_plane="pce", num_sites=4, seed=59,
                                    push_mode=mode)
            scenario = build_scenario(config)
            sim = scenario.sim
            cp = scenario.control_plane
            site = scenario.topology.sites[0]
            host = site.hosts[0]
            stub = scenario.stub_for(host, site)

            # Exactly one flow per destination, so in push-to-one mode the
            # mapping exists on exactly one ITR.
            def flows():
                for dst in (1, 2, 3):
                    target = scenario.topology.sites[dst]
                    address, _elapsed = yield stub.lookup(scenario.host_name(target, 0))
                    host.send(udp_packet(host.address, address, 5000, FLOW_UDP_PORT))

            sim.process(flows())
            sim.run(until=5.0)
            # Re-home every destination to the other ITR, then send again.
            moved = 0
            for prefix, index in list(cp.egress_assignments[site.index].items()):
                cp.set_egress_route(site, prefix, (index + 1) % len(site.xtrs))
                moved += 1
                host.send(udp_packet(host.address, prefix.address_at(10),
                                     5000, FLOW_UDP_PORT))
            sim.run(until=sim.now + 2.0)
            results[mode] = (moved, cp.miss_policy.stats.dropped)
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    moved_all, dropped_all = results["all"]
    moved_one, dropped_one = results["one"]
    print(f"\npush-to-all: {moved_all} re-homed, {dropped_all} drops; "
          f"push-to-one: {moved_one} re-homed, {dropped_one} drops")
    assert dropped_all == 0, "push-to-all must survive re-homing"
    assert dropped_one > 0, "push-to-one must strand re-homed flows"
