"""Micro-benchmarks of the hot substrate paths.

These are conventional multi-round pytest-benchmark measurements (unlike
the experiment benches, which time one full simulation): the event kernel,
the FIB's longest-prefix match, DNS wire encode/decode, and map-cache
lookups.  They guard against performance regressions that would make the
experiment suite crawl.
"""

import random

from repro.dns.message import DnsMessage, make_query, make_reply
from repro.dns.records import ResourceRecord, TYPE_A
from repro.lisp.map_cache import MapCache
from repro.lisp.mappings import MappingRecord, RlocEntry
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.fib import Fib
from repro.sim import Simulator


def test_bench_event_kernel_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.call_in(i * 0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_bench_process_switching(benchmark):
    def run_processes():
        sim = Simulator()

        def worker():
            for _ in range(100):
                yield sim.timeout(0.01)

        for _ in range(100):
            sim.process(worker())
        sim.run()
        return sim.processed_events

    assert benchmark(run_processes) > 10_000


def _build_fib(entries=1000, seed=5):
    rng = random.Random(seed)
    fib = Fib()
    for _ in range(entries):
        value = rng.getrandbits(32)
        length = rng.randint(8, 28)
        fib.add(IPv4Prefix.containing(value, length), "iface")
    return fib, rng


def test_bench_fib_lpm_lookup(benchmark):
    fib, rng = _build_fib()
    probes = [IPv4Address(rng.getrandbits(32)) for _ in range(1000)]
    sentinel = fib.entries()[0]

    def lookups():
        hits = 0
        for probe in probes:
            if fib.lookup(probe, default=sentinel) is not sentinel:
                hits += 1
        return hits

    benchmark(lookups)


def test_bench_dns_encode_decode(benchmark):
    query = make_query(1234, "host3.site17.example.")
    reply = make_reply(query,
                       answers=[ResourceRecord("host3.site17.example.", TYPE_A,
                                               60, "100.0.17.13")],
                       authoritative=True)

    def roundtrip():
        return DnsMessage.decode(reply.encode()).answer_addresses()[0]

    assert benchmark(roundtrip) == IPv4Address("100.0.17.13")


def test_bench_map_cache_lookup(benchmark):
    sim = Simulator()
    cache = MapCache(sim)
    for site in range(200):
        prefix = IPv4Prefix(f"100.{site >> 8}.{site & 255}.0/24")
        cache.install(MappingRecord(prefix, (RlocEntry(f"10.0.{site & 255}.1"),),
                                    ttl=1e9))
    eids = [IPv4Address(f"100.0.{site}.10") for site in range(200)]

    def lookups():
        found = 0
        for eid in eids:
            if cache.lookup(eid) is not None:
                found += 1
        return found

    assert benchmark(lookups) == 200
