"""Micro-benchmarks for the sweep hot path: FIB churn and cell fan-out.

``BENCH_*.json`` tracking starts here for the structures this PR optimizes:
the FIB's install->expire churn (pruned trie must be O(live), and fast),
the TtlCache's never-re-touched-key churn, and the sweep engine's per-cell
cost with tracing disabled.
"""

from repro.dns.cache import TtlCache
from repro.experiments.sweep import SweepGrid, expand_grid, run_cell, run_sweep
from repro.net.addresses import IPv4Prefix
from repro.net.fib import Fib
from repro.sim import Simulator


def test_bench_fib_install_expire_churn(benchmark):
    """N disjoint /24 install->remove cycles; node count must stay flat."""
    prefixes = [IPv4Prefix.containing((100 << 24) + (i << 8), 24)
                for i in range(512)]

    def churn():
        fib = Fib()
        for _round in range(4):
            for prefix in prefixes:
                fib.add(prefix, "tag")
            for prefix in prefixes:
                fib.remove(prefix)
        return fib.node_count()

    assert benchmark(churn) == 1  # only the root survives


def test_bench_fib_churn_with_live_working_set(benchmark):
    """Churn against a resident working set: O(live entries) nodes."""
    live = [IPv4Prefix.containing((100 << 24) + (i << 8), 24) for i in range(128)]
    churned = [IPv4Prefix.containing((101 << 24) + (i << 8), 24)
               for i in range(512)]

    def churn():
        fib = Fib()
        for prefix in live:
            fib.add(prefix, "keep")
        for prefix in churned:
            fib.add(prefix, "tmp")
            fib.remove(prefix)
        return len(fib), fib.node_count()

    size, nodes = benchmark(churn)
    assert size == 128
    assert nodes <= 1 + 128 * 24  # bounded by the live set, not the churn


def test_bench_ttl_cache_churn(benchmark):
    """Insert-once-never-read keys: compaction keeps the dict bounded."""

    def churn():
        sim = Simulator()
        cache = TtlCache(sim, name="bench")
        for i in range(20_000):
            cache.put(i, i, ttl=0.5)
            sim.now += 0.1
        return cache.stored_entries

    assert benchmark(churn) < 2 * TtlCache.COMPACT_THRESHOLD


def test_bench_sweep_cell(benchmark):
    """One moderately sized cell, tracing disabled (the sweep unit of work)."""
    grid = SweepGrid(control_planes=("alt",), site_counts=(16,), seeds=(7,),
                     zipf_values=(1.2,), num_flows=30, arrival_rate=30.0)
    cell = expand_grid(grid)[0]

    result = benchmark.pedantic(run_cell, args=(cell,), rounds=1, iterations=1)
    assert result["metrics"]["flows"] == 30


def test_bench_sweep_fanout(benchmark):
    """A small multi-cell sweep end to end (expansion + run + aggregate)."""
    grid = SweepGrid(control_planes=("pce", "alt"), site_counts=(4,),
                     seeds=(1, 2), zipf_values=(1.0,), num_flows=10,
                     arrival_rate=20.0)

    payload = benchmark.pedantic(run_sweep, args=(grid,),
                                 kwargs={"workers": 1}, rounds=1, iterations=1)
    assert payload["num_cells"] == 4
    assert len(payload["aggregates"]) == 2
