"""E2 — (T_DNS + T_map) ≈ T_DNS for the PCE control plane (claim C2)."""

from conftest import run_and_check

from repro.experiments import e2_overlap as e2


def test_bench_e2_overlap(benchmark):
    run_and_check(
        benchmark,
        lambda: e2.run_e2(num_sites=6, num_flows=20, depths=(0, 2)),
        e2.check_shape,
        e2.HEADERS,
        "E2: mapping-resolution overlap with DNS resolution",
    )
