"""E7 — map-cache aging: hit ratio and loss vs TTL and popularity skew."""

from conftest import run_and_check

from repro.experiments import e7_cache_aging as e7


def test_bench_e7_cache_aging(benchmark):
    run_and_check(
        benchmark,
        lambda: e7.run_e7(num_sites=8, num_flows=40, ttls=(1.0, 10.0, 120.0)),
        e7.check_shape,
        e7.HEADERS,
        "E7: cache aging — reactive LISP vs PCE push",
    )
