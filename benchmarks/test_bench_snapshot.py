"""Benchmarks for the shared world-snapshot store.

BENCH tracks both store tiers from this PR on:

- the *live* tier (fork fan-out): one parent-side build amortizes across
  all workers, whose first touch of a world is an in-place checkpoint
  reset — the gate asserts it beats a fresh build by the same
  restore-vs-build floor the worldbuild benchmarks enforce;
- the *file-backed* tier (``--snapshot-dir`` / spawn platforms): warm
  restores deserialize a validated blob, gated to beat the store's cold
  path (a fresh build serialized into the store) by the snapshot floor.

The 500-site amortization benchmark stays local-only (CI filters on
``-k "not 500"``) like the 500-site worldbuild benchmarks.
"""

import gc
import os
import time

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.worldbuild import SnapshotStore, build_world

#: Shared restore-vs-build floor (same machinery as test_bench_worldbuild;
#: CI relaxes it via the env var on noisy runners).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "5.0"))

#: Floor for the file-backed tier: deserializing a blob must beat building
#: one into the store.  Generic unpickling reconstructs the whole object
#: graph, so its margin over this codebase's already-optimized builds is
#: structurally smaller than the in-place restore's — it gets its own
#: env-tunable floor (falling back to a conservative default rather than
#: the in-place floor).
SNAPSHOT_FLOOR = float(os.environ.get("REPRO_SNAPSHOT_SPEEDUP_FLOOR", "1.5"))


def _config(sites):
    return ScenarioConfig(control_plane="pce", num_sites=sites,
                          num_providers=8, tracing=False)


def _best_of(func, rounds=3):
    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        func()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_bench_live_store_restore_speedup(benchmark):
    """Live-tier restore (in-place reset) must beat a fresh 60-site build.

    This is the fork fan-out hot path: workers inherit the parent's
    prebuilt world and reset it, so N workers cost one build plus N of
    these restores instead of N builds.
    """
    config = _config(60)
    store = SnapshotStore()
    assert store.ensure(config, live=True) == "build"

    build_elapsed = _best_of(lambda: build_world(config))
    restore_elapsed = _best_of(lambda: store.restore(config))
    gc.collect()  # don't bill dropped benchmark worlds to the timed rounds
    benchmark.pedantic(store.restore, args=(config,), rounds=3, iterations=1)

    speedup = build_elapsed / restore_elapsed
    print(f"\n  60 sites: fresh build {build_elapsed:.4f}s, live restore "
          f"{restore_elapsed:.4f}s -> {speedup:.0f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"live store restore only {speedup:.1f}x faster than a fresh build")


def test_bench_file_store_cold_build(benchmark, tmp_path):
    """The file tier's cold path: build a 60-site world and serialize it
    into an empty content-addressed store (what a store miss costs, and
    the numerator of the file-tier speedup ratio in BENCH summaries)."""
    config = _config(60)

    def cold_build(directory):
        store = SnapshotStore(directory)
        assert store.ensure(config) == "build"

    gc.collect()
    benchmark.pedantic(
        cold_build, setup=lambda: ((str(tmp_path / f"w{time.monotonic_ns()}"),), {}),
        rounds=3, iterations=1)


def test_bench_file_store_restore_speedup(benchmark, tmp_path):
    """File-tier restore must beat building a 60-site world into the store.

    The cold path (what a store miss costs) builds the world and
    serializes it into the content-addressed directory; the warm path
    reads, validates and deserializes the blob.  Warm reruns of
    ``repro sweep --snapshot-dir`` pay only the latter.
    """
    config = _config(60)
    directory = str(tmp_path / "worlds")

    started = time.perf_counter()
    cold_store = SnapshotStore(directory)
    assert cold_store.ensure(config) == "build"
    cold_elapsed = time.perf_counter() - started

    def warm_restore():
        store = SnapshotStore(directory)  # fresh store: no memory cache
        assert store.restore(config) is not None

    restore_elapsed = _best_of(warm_restore)
    gc.collect()
    benchmark.pedantic(warm_restore, rounds=3, iterations=1)

    speedup = cold_elapsed / restore_elapsed
    print(f"\n  60 sites: cold build+serialize {cold_elapsed:.4f}s, "
          f"file restore {restore_elapsed:.4f}s -> {speedup:.1f}x")
    assert speedup >= SNAPSHOT_FLOOR, (
        f"file-store restore only {speedup:.1f}x faster than a cold build")


def test_bench_snapshot_500_site_amortization(benchmark):
    """One 500-site build amortizes across workers (local-only, like all
    500-site benchmarks): N first touches cost one build plus N in-place
    restores, each of which must beat a fresh build by the floor."""
    config = _config(500)
    store = SnapshotStore()

    started = time.perf_counter()
    assert store.ensure(config, live=True) == "build"
    build_elapsed = time.perf_counter() - started

    workers = 4
    restore_elapsed = _best_of(lambda: store.restore(config), rounds=workers)
    benchmark.pedantic(store.restore, args=(config,), rounds=1, iterations=1)

    amortized = (build_elapsed + workers * restore_elapsed) / workers
    speedup = build_elapsed / restore_elapsed
    print(f"\n  500 sites: build {build_elapsed:.3f}s, live restore "
          f"{restore_elapsed:.4f}s ({speedup:.0f}x); {workers} workers pay "
          f"{amortized:.3f}s/world vs {build_elapsed:.3f}s each without "
          f"the store")
    assert speedup >= SPEEDUP_FLOOR, (
        f"500-site live restore only {speedup:.1f}x faster than a build")
    assert amortized < build_elapsed, (
        "shared store failed to amortize the 500-site build")
