"""E5 — control-plane messages, bytes and state vs deployment scale."""

from conftest import run_and_check

from repro.experiments import e5_overhead as e5


def test_bench_e5_overhead(benchmark):
    run_and_check(
        benchmark,
        lambda: e5.run_e5(site_counts=(4, 8, 16)),
        e5.check_shape,
        e5.HEADERS,
        "E5: control-plane overhead and per-router state vs #sites",
    )
