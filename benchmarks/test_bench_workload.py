"""Benchmarks for the workload sender: pacing overhead at 60 sites.

The shaped sender (mice burst, elephants pace — per-flow plans plus
per-link byte accounting on every hop) must stay within
``PACING_OVERHEAD_CEILING`` of the historical constant-spacing sender on
the same world and flow mix.  Both runs restore the same cached 60-site
world, so the comparison times exactly the workload + accounting hot
path, not world construction.
"""

import os
import time

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.experiments.worldbuild import WorldBuilder

#: Shaped-vs-constant wall-time ceiling the overhead benchmark asserts.
#: Locally the contract is 1.5x (observed well under); CI runners are noisy
#: single-shot timers, so the workflow relaxes the gate via this env var.
PACING_OVERHEAD_CEILING = float(
    os.environ.get("REPRO_PACING_OVERHEAD_CEILING", "1.5"))

CONFIG = ScenarioConfig(control_plane="pce", num_sites=60, num_providers=8,
                        access_rate_bps=10_000_000.0, tracing=False)


def _workload(pacing):
    return WorkloadConfig(num_flows=150, arrival_rate=60.0, zipf_s=1.2,
                          size_dist="pareto", packets_per_flow=6,
                          payload_bytes=1200, pacing=pacing,
                          pace_rate_bps=2_000_000.0)


_BUILDER = WorldBuilder(max_worlds=1)


def _run(pacing):
    scenario = _BUILDER.scenario_for(CONFIG)  # build once, restore after
    return run_workload(scenario, _workload(pacing))


def test_bench_workload_constant(benchmark):
    """Constant-spacing sender at 60 sites (the pacing-overhead baseline)."""
    _run("constant")  # warm the world cache: time a restore+run, not a build
    records = benchmark.pedantic(_run, args=("constant",),
                                 rounds=1, iterations=1)
    assert len(records) == 150
    assert all(r.flow_kind == "constant" for r in records if not r.failed)


def test_bench_workload_shaped(benchmark):
    """Shaped sender must stay within the overhead ceiling of constant."""
    _run("shaped")  # warm the world cache so both sides time a restore+run

    rounds = 3
    started = time.perf_counter()
    for _ in range(rounds):
        _run("constant")
    constant_elapsed = (time.perf_counter() - started) / rounds

    started = time.perf_counter()
    for _ in range(rounds - 1):
        _run("shaped")
    records = benchmark.pedantic(_run, args=("shaped",),
                                 rounds=1, iterations=1)
    shaped_elapsed = (time.perf_counter() - started
                      + benchmark.stats.stats.total) / rounds

    kinds = {r.flow_kind for r in records if not r.failed}
    assert "mouse" in kinds and "elephant" in kinds, (
        f"shaped run produced no mice/elephant mix: {kinds}")
    overhead = shaped_elapsed / constant_elapsed
    print(f"\n  constant {constant_elapsed:.3f}s, shaped {shaped_elapsed:.3f}s "
          f"-> {overhead:.2f}x")
    assert overhead <= PACING_OVERHEAD_CEILING, (
        f"shaped sender {overhead:.2f}x slower than constant spacing "
        f"(ceiling {PACING_OVERHEAD_CEILING}x)")
