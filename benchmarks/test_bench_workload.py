"""Benchmarks for the workload sender: pacing overhead and fluid speedup.

The shaped sender (mice burst, elephants pace — per-flow plans plus
per-link byte accounting on every hop) must stay within
``PACING_OVERHEAD_CEILING`` of the historical constant-spacing sender on
the same world and flow mix.  The fluid tier must beat the packet-level
sender by at least ``FLUID_SPEEDUP_FLOOR`` on a bulk-dominated workload —
the wall-clock win that makes million-flow cells interactive.  All runs
restore the same cached 60-site world, so the comparisons time exactly
the workload + accounting hot path, not world construction.
"""

import os
import time

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.experiments.worldbuild import WorldBuilder

#: Shaped-vs-constant wall-time ceiling the overhead benchmark asserts.
#: Locally the contract is 1.5x (observed well under); CI runners are noisy
#: single-shot timers, so the workflow relaxes the gate via this env var.
PACING_OVERHEAD_CEILING = float(
    os.environ.get("REPRO_PACING_OVERHEAD_CEILING", "1.5"))

#: Minimum fluid-over-packet speedup on the bulk workload.  Locally the
#: contract is 5x (observed far above); CI relaxes it via the env var.
FLUID_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_FLUID_SPEEDUP_FLOOR", "5.0"))

CONFIG = ScenarioConfig(control_plane="pce", num_sites=60, num_providers=8,
                        access_rate_bps=10_000_000.0, tracing=False)


def _workload(pacing):
    return WorkloadConfig(num_flows=150, arrival_rate=60.0, zipf_s=1.2,
                          size_dist="pareto", packets_per_flow=6,
                          payload_bytes=1200, pacing=pacing,
                          pace_rate_bps=2_000_000.0)


_BUILDER = WorldBuilder(max_worlds=1)


def _run(pacing):
    scenario = _BUILDER.scenario_for(CONFIG)  # build once, restore after
    return run_workload(scenario, _workload(pacing))


def test_bench_workload_constant(benchmark):
    """Constant-spacing sender at 60 sites (the pacing-overhead baseline)."""
    _run("constant")  # warm the world cache: time a restore+run, not a build
    records = benchmark.pedantic(_run, args=("constant",),
                                 rounds=1, iterations=1)
    assert len(records) == 150
    assert all(r.flow_kind == "constant" for r in records if not r.failed)


def test_bench_workload_shaped(benchmark):
    """Shaped sender must stay within the overhead ceiling of constant."""
    _run("shaped")  # warm the world cache so both sides time a restore+run

    rounds = 3
    started = time.perf_counter()
    for _ in range(rounds):
        _run("constant")
    constant_elapsed = (time.perf_counter() - started) / rounds

    started = time.perf_counter()
    for _ in range(rounds - 1):
        _run("shaped")
    records = benchmark.pedantic(_run, args=("shaped",),
                                 rounds=1, iterations=1)
    shaped_elapsed = (time.perf_counter() - started
                      + benchmark.stats.stats.total) / rounds

    kinds = {r.flow_kind for r in records if not r.failed}
    assert "mouse" in kinds and "elephant" in kinds, (
        f"shaped run produced no mice/elephant mix: {kinds}")
    overhead = shaped_elapsed / constant_elapsed
    print(f"\n  constant {constant_elapsed:.3f}s, shaped {shaped_elapsed:.3f}s "
          f"-> {overhead:.2f}x")
    assert overhead <= PACING_OVERHEAD_CEILING, (
        f"shaped sender {overhead:.2f}x slower than constant spacing "
        f"(ceiling {PACING_OVERHEAD_CEILING}x)")


def _bulk_workload(pacing):
    """Bulk-dominated mix: every flow is 200 packets, all above threshold.

    In ``shaped`` mode each flow is a paced elephant — 200 per-packet
    timeout/transmission event chains.  In ``fluid`` mode the same flows
    advance as a probe plus four quarter-second chunks.
    """
    return WorkloadConfig(num_flows=120, arrival_rate=60.0, zipf_s=1.2,
                          size_dist="constant", packets_per_flow=200,
                          payload_bytes=1200, pacing=pacing,
                          pace_rate_bps=2_000_000.0,
                          elephant_threshold=10.0, fluid_threshold=10.0,
                          grace_period=10.0)


def _run_bulk(pacing):
    scenario = _BUILDER.scenario_for(CONFIG)
    return run_workload(scenario, _bulk_workload(pacing))


def test_bench_workload_bulk_packet(benchmark):
    """Packet-level elephants on the bulk mix (the fluid-speedup baseline)."""
    _run_bulk("shaped")  # warm the world cache: time a restore+run
    records = benchmark.pedantic(_run_bulk, args=("shaped",),
                                 rounds=1, iterations=1)
    assert all(r.flow_kind == "elephant" for r in records if not r.failed)


def test_bench_workload_bulk_fluid(benchmark):
    """Fluid chunks must beat packet elephants by the speedup floor."""
    _run_bulk("fluid")  # warm the world cache so both sides time restore+run

    started = time.perf_counter()
    _run_bulk("shaped")
    packet_elapsed = time.perf_counter() - started

    records = benchmark.pedantic(_run_bulk, args=("fluid",),
                                 rounds=1, iterations=1)
    fluid_elapsed = benchmark.stats.stats.total

    ok = [r for r in records if not r.failed]
    assert ok and all(r.flow_kind == "fluid" for r in ok)
    assert all(r.bytes_sent == r.bytes_budget for r in ok)
    speedup = packet_elapsed / fluid_elapsed
    print(f"\n  packet {packet_elapsed:.3f}s, fluid {fluid_elapsed:.3f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= FLUID_SPEEDUP_FLOOR, (
        f"fluid sender only {speedup:.1f}x faster than packet elephants "
        f"(floor {FLUID_SPEEDUP_FLOOR}x)")
