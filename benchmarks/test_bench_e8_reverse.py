"""E8 — reverse-mapping completion vs the avoided two-way resolution."""

from conftest import run_and_check

from repro.experiments import e8_reverse_mapping as e8


def test_bench_e8_reverse_mapping(benchmark):
    run_and_check(
        benchmark,
        lambda: e8.run_e8(num_sites=4, providers_per_site=3, num_flows=15),
        e8.check_shape,
        e8.HEADERS,
        "E8: two-way resolution completion — ETR multicast vs pull",
    )
