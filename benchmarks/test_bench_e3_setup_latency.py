"""E3 — TCP connection-setup latency, the paper's §1 formulas."""

from conftest import run_and_check

from repro.experiments import e3_setup_latency as e3


def test_bench_e3_setup_latency(benchmark):
    rows = run_and_check(
        benchmark,
        lambda: e3.run_e3(num_sites=6, num_flows=25),
        e3.check_shape,
        e3.HEADERS,
        "E3: connection setup latency (plain vs LISP variants vs PCE)",
    )
    by_system = {row.system: row for row in rows}
    # The headline: PCE-based CP restores plain-IP setup latency.
    assert abs(by_system["pce"].total_mean - by_system["plain"].total_mean) < 0.02
