"""Command-line interface: run any experiment and print its table.

Usage::

    python -m repro list
    python -m repro run fig1
    python -m repro run e1 --num-sites 8 --flows 40
    python -m repro run e3 --seed 5
    python -m repro run all            # every experiment, small sizes

Each experiment prints the regenerated table plus its shape-check verdict
(the same checks the benchmark harness enforces).

Parameter sweeps (``repro sweep``)
----------------------------------

``sweep`` expands a declarative grid (control plane x topology family x
site count x seed x
Zipf skew x flow-size distribution x pacing mode x RLOC-failure fraction)
into scenario/workload cells, pre-builds each distinct world exactly once
into a shared snapshot store (workers restore serialized world blobs
instead of rebuilding; ``--snapshot-dir`` persists them across
invocations), fans the cells out across a persistent worker pool, streams
per-cell results to a JSONL artifact, and writes aggregated JSON/CSV
artifacts::

    python -m repro sweep                       # "smoke" preset, 1 worker
    python -m repro sweep --preset scale --workers 4 \\
        --json sweep.json --csv sweep.csv       # 48 cells incl. 120 sites
    python -m repro sweep --preset failover     # RLOC failures mid-workload
    python -m repro sweep --preset shaped       # size-aware traffic shaping
    python -m repro sweep --preset baselines --sites 4 16 --seeds 1 2 3 \\
        --size-dists constant pareto --pacings constant shaped
    python -m repro sweep --preset scale --workers 4 \\
        --snapshot-dir ~/.cache/repro-worlds    # rerun: zero world builds

Static analysis (``repro analyze``)
-----------------------------------

``analyze`` runs the AST-based determinism & snapshot contract checkers
(:mod:`repro.analysis`) over a source tree and exits nonzero on any
finding — the CI gate behind docs/contracts.md::

    python -m repro analyze                     # src/repro, all rules
    python -m repro analyze src/repro --rules SNAP01,DET01
    python -m repro analyze --list-rules

Presets live in :data:`repro.experiments.sweep.PRESETS`; the axis flags
(``--control-planes/--topologies/--sites/--seeds/--zipf/--size-dists/
--pacings/--fail-fractions/--flows/--mode``) override the chosen preset's
axes.  Aggregates are
deterministic: the same grid and seeds produce byte-identical JSON for any
``--workers`` value (world-cache counters are reported separately).  For
giant grids, ``--no-json`` keeps the run memory-flat: aggregation and CSV
writing fold over the JSONL stream and the per-cell list is never held in
memory.
"""

import argparse
import os
import sys

from repro.metrics import format_table


def _run_fig1(args):
    from repro.experiments.fig1 import run_fig1_walkthrough

    outcome = run_fig1_walkthrough(seed=args.seed)
    rows = [(label, "-" if when is None else f"{when * 1000:.3f} ms", description)
            for label, when, description in outcome["steps"]]
    print(format_table(("step", "time", "what happens"), rows,
                       title="Fig. 1 walkthrough"))
    print()
    for name, ok in outcome["checks"].items():
        print(f"  [{'ok' if ok else 'FAILED'}] {name}")
    return all(outcome["checks"].values())


def _table_runner(module_name, run_kwargs_builder):
    def runner(args):
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        rows = module.__dict__[_RUN_NAMES[module_name]](**run_kwargs_builder(args))
        print(format_table(module.HEADERS, [row.as_tuple() for row in rows]))
        failures = module.check_shape(rows)
        print()
        if failures:
            print("shape-check FAILURES:")
            for failure in failures:
                print(f"  - {failure}")
            return False
        print("shape check: ok")
        return True

    return runner


_RUN_NAMES = {
    "e1_packet_loss": "run_e1",
    "e2_overlap": "run_e2",
    "e3_setup_latency": "run_e3",
    "e4_te_flexibility": "run_e4",
    "e5_overhead": "run_e5",
    "e6_pce_overhead": "run_e6",
    "e7_cache_aging": "run_e7",
    "e8_reverse_mapping": "run_e8",
    "e9_failover": "run_e9",
    "e10_topology_shape": "run_e10",
}

EXPERIMENTS = {
    "fig1": ("Fig. 1 step walkthrough", _run_fig1),
    "e1": ("first-packet fate during resolution",
           _table_runner("e1_packet_loss",
                         lambda a: dict(num_sites=a.num_sites, num_flows=a.flows,
                                        seed=a.seed))),
    "e2": ("mapping/DNS resolution overlap",
           _table_runner("e2_overlap",
                         lambda a: dict(num_sites=min(a.num_sites, 6),
                                        num_flows=a.flows, seed=a.seed))),
    "e3": ("TCP connection-setup latency",
           _table_runner("e3_setup_latency",
                         lambda a: dict(num_sites=min(a.num_sites, 6),
                                        num_flows=a.flows, seed=a.seed))),
    "e4": ("inbound/outbound TE flexibility",
           _table_runner("e4_te_flexibility",
                         lambda a: dict(num_sites=min(a.num_sites, 6),
                                        num_flows=a.flows, seed=a.seed))),
    "e5": ("control-plane overhead vs scale",
           _table_runner("e5_overhead", lambda a: dict(seed=a.seed))),
    "e6": ("PCE interception overhead",
           _table_runner("e6_pce_overhead",
                         lambda a: dict(num_flows=a.flows, seed=a.seed))),
    "e7": ("map-cache aging",
           _table_runner("e7_cache_aging",
                         lambda a: dict(num_sites=a.num_sites, num_flows=a.flows,
                                        seed=a.seed))),
    "e8": ("reverse-mapping completion",
           _table_runner("e8_reverse_mapping", lambda a: dict(seed=a.seed))),
    "e9": ("locator failure / probing failover",
           _table_runner("e9_failover", lambda a: dict(seed=a.seed))),
    "e10": ("mapping systems vs topology shape",
            _table_runner("e10_topology_shape",
                          lambda a: dict(num_sites=a.num_sites,
                                         num_flows=a.flows, seed=a.seed))),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Advantages of a PCE-based Control Plane "
                    "for LISP' (CoNEXT 2008)")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run an experiment")
    run.add_argument("experiment", choices=[*sorted(EXPERIMENTS), "all"])
    run.add_argument("--seed", type=int, default=11)
    run.add_argument("--num-sites", type=int, default=8)
    run.add_argument("--flows", type=int, default=30)
    report = sub.add_parser("report", help="regenerate the full report")
    report.add_argument("-o", "--output", default=None,
                        help="write markdown to this file (default: stdout)")
    report.add_argument("--seed", type=int, default=11)
    analyze = sub.add_parser(
        "analyze", help="run the determinism & snapshot contract checkers")
    from repro.analysis.cli import add_arguments as add_analyze_arguments

    add_analyze_arguments(analyze)
    sweep = sub.add_parser("sweep", help="run a scenario parameter sweep")
    sweep.add_argument("--preset", default="smoke",
                       help="grid preset (see repro.experiments.sweep.PRESETS)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes for cell fan-out")
    sweep.add_argument("--json", default=None, help="write full payload here")
    sweep.add_argument("--no-json", action="store_true",
                       help="never materialise the per-cell result list "
                            "(memory-flat mode for giant grids: aggregates "
                            "and CSV fold over the JSONL stream)")
    sweep.add_argument("--csv", default=None, help="write per-cell CSV here")
    sweep.add_argument("--jsonl", default=None,
                       help="stream per-cell results here (default: derived "
                            "from --json, else sweep-<preset>.cells.jsonl)")
    sweep.add_argument("--max-worlds", type=int, default=None,
                       help="per-worker world-cache capacity (the shared "
                            "snapshot store additionally holds one world "
                            "per distinct world key for the run's duration)")
    sweep.add_argument("--snapshot-dir", default=None,
                       help="persistent world-snapshot store: built worlds "
                            "are serialized here (content-addressed by world "
                            "key + schema version) and repeated sweeps "
                            "restore instead of rebuilding")
    sweep.add_argument("--control-planes", nargs="+", default=None)
    sweep.add_argument("--topologies", nargs="+", default=None,
                       help="topology families (fig1/flat/tiered/caida; "
                            "see repro.net.topogen)")
    sweep.add_argument("--sites", nargs="+", type=int, default=None)
    sweep.add_argument("--seeds", nargs="+", type=int, default=None)
    sweep.add_argument("--zipf", nargs="+", type=float, default=None)
    sweep.add_argument("--size-dists", nargs="+", default=None,
                       help="flow-size distributions (constant/pareto/lognormal)")
    sweep.add_argument("--pacings", nargs="+", default=None,
                       help="pacing modes (constant/shaped: mice burst, "
                            "elephants pace at the workload's target rate)")
    sweep.add_argument("--fail-fractions", nargs="+", type=float, default=None,
                       help="fractions of sites whose primary RLOC fails")
    sweep.add_argument("--flows", type=int, default=None)
    sweep.add_argument("--mode", choices=("udp", "tcp"), default=None)
    return parser


def _run_sweep_command(args):
    from dataclasses import replace

    from repro.experiments.sweep import DEFAULT_MAX_WORLDS, PRESETS, run_sweep

    if args.preset not in PRESETS:
        print(f"unknown preset {args.preset!r}; available: "
              f"{', '.join(sorted(PRESETS))}")
        return 1
    grid = PRESETS[args.preset]
    if args.max_worlds is not None and args.max_worlds < 1:
        print(f"sweep error: --max-worlds must be >= 1, got {args.max_worlds}")
        return 1
    if args.no_json and args.json is not None:
        print("sweep error: --no-json cannot be combined with --json")
        return 1
    overrides = {}
    if args.control_planes is not None:
        overrides["control_planes"] = tuple(args.control_planes)
    if args.topologies is not None:
        overrides["topologies"] = tuple(args.topologies)
    if args.sites is not None:
        overrides["site_counts"] = tuple(args.sites)
    if args.seeds is not None:
        overrides["seeds"] = tuple(args.seeds)
    if args.zipf is not None:
        overrides["zipf_values"] = tuple(args.zipf)
    if args.size_dists is not None:
        overrides["size_dists"] = tuple(args.size_dists)
    if args.pacings is not None:
        overrides["pacings"] = tuple(args.pacings)
    if args.fail_fractions is not None:
        overrides["fail_fractions"] = tuple(args.fail_fractions)
    if args.flows is not None:
        overrides["num_flows"] = args.flows
    if args.mode is not None:
        overrides["mode"] = args.mode
    if overrides:
        grid = replace(grid, **overrides)

    jsonl_path = args.jsonl
    if jsonl_path is None:
        if args.json is not None:
            base = args.json[:-5] if args.json.endswith(".json") else args.json
            jsonl_path = f"{base}.cells.jsonl"
        else:
            jsonl_path = f"sweep-{grid.name}.cells.jsonl"

    try:
        payload = run_sweep(
            grid, workers=max(1, args.workers), json_path=args.json,
            csv_path=args.csv, jsonl_path=jsonl_path,
            max_worlds=(args.max_worlds if args.max_worlds is not None
                        else DEFAULT_MAX_WORLDS),
            include_cells=not args.no_json,
            snapshot_dir=(None if args.snapshot_dir is None
                          else os.path.expanduser(args.snapshot_dir)))
    except ValueError as error:
        print(f"sweep error: {error}")
        return 1
    rows = [(a["control_plane"], a["topology"], a["num_sites"], a["zipf_s"],
             a["size_dist"],
             a["pacing"], f"{a['fail_fraction']:g}", a["cells"],
             a["flows"], a["first_packet_drops"], a["packets_lost"],
             "-" if a["cache_hit_ratio_mean"] is None
             else f"{a['cache_hit_ratio_mean']:.3f}",
             "-" if a["setup_p95_mean"] is None
             else f"{a['setup_p95_mean'] * 1000:.2f} ms",
             "ok" if a["bytes_conserved"] else "VIOLATED",
             f"{a['access_util_peak']:.2f}")
            for a in payload["aggregates"]]
    print(format_table(("system", "topo", "sites", "zipf", "sizes", "pacing",
                        "fail",
                        "cells", "flows", "first_pkt_drops", "pkts_lost",
                        "hit_ratio", "setup_p95", "bytes", "util"), rows,
                       title=f"sweep '{grid.name}': {payload['num_cells']} cells"))
    cache = payload["world_cache"]
    print(f"world cache: {cache['hits']} hits / {cache['restores']} restores "
          f"/ {cache['builds']} builds "
          f"({cache['misses']} misses, {cache['bypasses']} bypasses)")
    store = cache.get("store")
    if store is not None:
        kind = "persistent" if store["persistent"] else "shared"
        print(f"snapshot store ({kind}): {store['builds']} built / "
              f"{store['blob_hits']} blob hits / "
              f"{store['invalidated']} invalidated, "
              f"{store['worlds']} worlds held")
    for path, label in ((args.json, "json"), (args.csv, "csv"),
                        (jsonl_path, "jsonl")):
        if path is not None:
            print(f"{label} written to {path}")
    return 0


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        print(format_table(("experiment", "regenerates"),
                           [(name, description)
                            for name, (description, _runner) in sorted(EXPERIMENTS.items())]))
        return 0
    if args.command == "analyze":
        from repro.analysis.cli import run as run_analyze

        return run_analyze(args)
    if args.command == "sweep":
        return _run_sweep_command(args)
    if args.command == "report":
        from repro.experiments.report import generate_report

        text, ok = generate_report(seed=args.seed, out=args.output)
        if args.output is None:
            print(text)
        else:
            print(f"report written to {args.output} "
                  f"({'all shapes ok' if ok else 'SHAPE FAILURES'})")
        return 0 if ok else 1
    if args.experiment == "all":
        ok = True
        for name, (description, runner) in sorted(EXPERIMENTS.items()):
            print(f"\n=== {name}: {description} ===")
            ok = runner(args) and ok
        return 0 if ok else 1
    description, runner = EXPERIMENTS[args.experiment]
    print(f"=== {args.experiment}: {description} ===")
    return 0 if runner(args) else 1


if __name__ == "__main__":
    sys.exit(main())
