"""F1 — the Fig. 1 walkthrough: Steps 1-8 as an emergent event trace.

Builds the exact Fig. 1 world (two sites, disjoint provider pairs), starts
one flow, and extracts the timeline of the eight steps plus the first-data-
packet and reverse-mapping events.  The harness checks that the ordering
and the paper's timing claim — mapping installed before the host can send —
hold in simulation rather than by construction.
"""

from repro.experiments.scenario import FLOW_UDP_PORT, ScenarioConfig, build_scenario
from repro.net.packet import udp_packet

STEP_KINDS = [
    ("1", "pce.step1-ipc", "PCE_S learns E_S via IPC, picks ingress RLOC"),
    ("2-5", "pce.observe-query", "PCEs observe the iterative DNS queries"),
    ("6", "pce.step6-encap", "PCE_D encapsulates the reply + mapping (port P)"),
    ("7a", "pce.step7a-forward", "PCE_S forwards the DNS reply to DNS_S"),
    ("7b", "pce.step7b-push", "PCE_S pushes (E_S,E_D,RLOC_S,RLOC_D) to all ITRs"),
    ("8", "pce.step8-dns-reply", "DNS_S answers E_S"),
]


def run_fig1_walkthrough(seed=7):
    """Run the walkthrough; returns {steps, checks, records}."""
    config = ScenarioConfig(control_plane="pce", fig1=True, seed=seed)
    scenario = build_scenario(config)
    sim = scenario.sim
    topology = scenario.topology
    site_s, site_d = topology.sites
    source = site_s.hosts[0]
    stub = scenario.stub_for(source, site_s)
    qname = scenario.host_name(site_d, 0)
    timeline = {}

    def flow():
        address, _elapsed = yield stub.lookup(qname)
        timeline["dns_done"] = sim.now
        timeline["address"] = address
        source.send(udp_packet(source.address, address, 5000, FLOW_UDP_PORT,
                               payload_bytes=1000))

    sim.process(flow())
    sim.run(until=5.0)

    dns_s_address = str(site_s.dns_address)
    steps = []
    for label, kind, description in STEP_KINDS:
        matches = sim.trace.of_kind(kind)
        if kind == "pce.observe-query":
            # Steps 2-5 are the *iterative* queries (resolver -> hierarchy),
            # not the host's initial stub query, which also transits PCE_S.
            matches = [r for r in matches if r.detail.get("dst") != dns_s_address]
        if not matches:
            steps.append((label, None, description))
            continue
        steps.append((label, matches[0].time, description))

    installs = [r.time for r in sim.trace.of_kind("itr.mapping-installed")
                if r.detail.get("origin") == "pce-push"]
    encaps = sim.trace.of_kind("itr.encap")
    decaps = sim.trace.of_kind("etr.decap")
    reverse = sim.trace.of_kind("etr.reverse-multicast")
    reverse_installs = [r.time for r in sim.trace.of_kind("itr.mapping-installed")
                        if r.detail.get("origin", "").startswith("reverse")]
    sink = scenario.sink_for(site_d.index, 0)

    first_encap = encaps[0].time if encaps else None
    checks = {
        # The paper's operational claim: the mapping is in place at the ITRs
        # before the host's first data packet needs it.
        "mapping_installed_before_first_packet": bool(installs) and
            first_encap is not None and max(installs) <= first_encap,
        # And its timing claim: installation lands within the DNS resolution
        # window (tolerance of one intra-site RTT for the final local hops).
        "mapping_ready_within_dns_window": bool(installs) and
            max(installs) <= timeline.get("dns_done", float("inf")) + 0.001,
        "first_packet_delivered": sink.received == 1,
        "no_itr_drops": scenario.total_first_packet_drops() == 0,
        "reverse_mapping_on_all_etrs": len(reverse_installs) >= len(site_d.xtrs) - 1,
        "step_order_monotonic": _monotonic([t for _l, t, _d in steps if t is not None]),
    }
    records = {
        "dns_done": timeline.get("dns_done"),
        "itr_installs": installs,
        "first_encap": encaps[0].time if encaps else None,
        "first_decap": decaps[0].time if decaps else None,
        "reverse_multicast": reverse[0].time if reverse else None,
        "delivery": sink.arrival_times[0] if sink.arrival_times else None,
    }
    return {"steps": steps, "checks": checks, "records": records,
            "scenario": scenario}


def _monotonic(times):
    return all(a <= b for a, b in zip(times, times[1:], strict=False))
