"""E8 — completing the two-way resolution via the first data packet.

The paper's closing paragraph: when the first data packet reaches the
chosen ETR it (i) delivers it, (ii) extracts the reverse mapping, and
(iii) multicasts it to the other local ETRs and the PCE database.  We
measure, per flow, the time from the ETR's decapsulation until *every*
sibling ETR holds the reverse mapping — a few intra-site hops — and compare
it against what a two-way *pull* resolution would have cost (the latency of
resolving the source's mapping through ALT from the destination side),
which is the alternative the paper explicitly avoids.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.metrics.stats import summarize


@dataclass
class E8Row:
    variant: str
    samples: int
    completion_mean: float
    completion_p95: float

    def as_tuple(self):
        return (self.variant, self.samples, round(self.completion_mean, 6),
                round(self.completion_p95, 6))


HEADERS = ("variant", "samples", "completion_mean", "completion_p95")


def run_e8(num_sites=4, providers_per_site=3, num_flows=20, seed=97):
    rows = []
    rows.append(_pce_reverse_completion(num_sites, providers_per_site,
                                        num_flows, seed))
    rows.append(_two_way_pull_baseline(num_sites, providers_per_site,
                                       num_flows, seed))
    return rows


def _pce_reverse_completion(num_sites, providers_per_site, num_flows, seed):
    config = ScenarioConfig(control_plane="pce", num_sites=num_sites,
                            providers_per_site=providers_per_site, seed=seed)
    scenario = build_scenario(config)
    workload = WorkloadConfig(num_flows=num_flows, arrival_rate=3.0,
                              packets_per_flow=1)
    run_workload(scenario, workload)
    sim = scenario.sim
    multicasts = sim.trace.of_kind("etr.reverse-multicast")
    installs = [r for r in sim.trace.of_kind("itr.mapping-installed")
                if r.detail.get("origin") == "reverse-multicast"]
    completions = []
    expected_siblings = providers_per_site - 1
    for event in multicasts:
        prefix = event.detail["prefix"]
        arrivals = sorted(r.time for r in installs
                          if r.detail.get("prefix") == prefix and r.time >= event.time)
        if len(arrivals) >= expected_siblings:
            completions.append(arrivals[expected_siblings - 1] - event.time)
    stats = summarize(completions)
    return E8Row(variant="pce-reverse-multicast", samples=len(completions),
                 completion_mean=stats["mean"], completion_p95=stats["p95"])


def _two_way_pull_baseline(num_sites, providers_per_site, num_flows, seed):
    """What the avoided alternative costs: a full ALT pull from the D side."""
    config = ScenarioConfig(control_plane="alt", num_sites=num_sites,
                            providers_per_site=providers_per_site, seed=seed,
                            miss_policy="queue", gleaning=False)
    scenario = build_scenario(config)
    workload = WorkloadConfig(num_flows=num_flows, arrival_rate=3.0,
                              packets_per_flow=1)
    run_workload(scenario, workload)
    latencies = scenario.mapping_system.stats.resolution_latencies
    stats = summarize(latencies)
    return E8Row(variant="two-way-pull(alt)", samples=len(latencies),
                 completion_mean=stats["mean"], completion_p95=stats["p95"])


def check_shape(rows):
    failures = []
    by_variant = {row.variant: row for row in rows}
    pce = by_variant.get("pce-reverse-multicast")
    pull = by_variant.get("two-way-pull(alt)")
    if pce is None or pce.samples == 0:
        failures.append("no reverse-multicast completions observed")
        return failures
    if pce.completion_mean > 0.005:
        failures.append(
            f"reverse multicast took {pce.completion_mean:.4f}s (expected intra-site)")
    if pull and pull.samples and not pull.completion_mean > pce.completion_mean * 3:
        failures.append("two-way pull not substantially slower than ETR multicast")
    return failures
