"""E10 — mapping systems across topology shapes (flat vs tiered vs CAIDA).

The paper's comparisons all run on the Fig. 1 flat mesh; this experiment
re-asks the mapping-system questions on internet-shaped graphs (see
:mod:`repro.net.topogen`): a tier-0 default-free clique, tier-1/tier-2
transit, IXPs, and multihomed stubs, plus the CAIDA-skewed preset where a
few megaproviders attract most customers.

Expected shape: the tiered families derive a far larger transit population
than the flat mesh's four providers, route hierarchically (core-only
tables + aggregation — the plan type is part of the row), and still
deliver the workload: resolution succeeds, setup completes, and byte
accounting stays conserved on every family.  Path stretch shows up as
higher provider-to-provider delay estimates on tiered fabrics (transit
chains and IX hops) than inside a flat clique.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.net.routing import HierarchicalRoutingPlan


@dataclass
class E10Row:
    system: str
    topology: str
    num_sites: int
    providers: int
    ixps: int
    hierarchical: bool
    flows: int
    flows_failed: int
    mesh_delay_mean: float
    cache_hit_ratio: float
    control_messages: int
    bytes_conserved: bool

    def as_tuple(self):
        return (self.system, self.topology, self.num_sites, self.providers,
                self.ixps, "yes" if self.hierarchical else "no", self.flows,
                self.flows_failed, f"{self.mesh_delay_mean * 1000:.2f} ms",
                round(self.cache_hit_ratio, 3), self.control_messages,
                "ok" if self.bytes_conserved else "VIOLATED")


HEADERS = ("system", "topology", "sites", "providers", "ixps", "hier",
           "flows", "failed", "mesh_delay", "hit_ratio", "ctl_msgs", "bytes")

DEFAULT_FAMILIES = ("flat", "tiered", "caida")
DEFAULT_SYSTEMS = ("pce", "alt")


def _mesh_delay_mean(topology):
    """Mean pairwise provider delay through the installed routing plan."""
    plan = topology.routing_plan()
    providers = topology.providers
    total = 0.0
    count = 0
    for i, a in enumerate(providers):
        for b in providers[i + 1:]:
            delay = plan.delay(a, b)
            if delay is not None:
                total += delay
                count += 1
    return total / count if count else 0.0


def run_e10(num_sites=12, num_flows=30, seed=71, families=DEFAULT_FAMILIES,
            systems=DEFAULT_SYSTEMS):
    rows = []
    for system in systems:
        for family in families:
            config = ScenarioConfig(control_plane=system, topology=family,
                                    num_sites=num_sites, seed=seed,
                                    miss_policy="queue", tracing=False)
            scenario = build_scenario(config)
            workload = WorkloadConfig(num_flows=num_flows, arrival_rate=15.0,
                                      packets_per_flow=3, zipf_s=1.0)
            records = run_workload(scenario, workload)

            hits = misses = 0
            for xtr_list in scenario.xtrs_by_site.values():
                for xtr in xtr_list:
                    hits += xtr.map_cache.hits
                    misses += xtr.map_cache.misses
            lookups = hits + misses
            if scenario.mapping_system is not None:
                messages = scenario.mapping_system.stats.messages
            else:
                messages = scenario.control_plane.total_control_messages()
            topology = scenario.topology
            rows.append(E10Row(
                system=system, topology=family, num_sites=num_sites,
                providers=len(topology.providers),
                ixps=len(topology.ix_routers),
                hierarchical=isinstance(topology.routing_plan(),
                                        HierarchicalRoutingPlan),
                flows=len(records),
                flows_failed=sum(1 for r in records if r.failed),
                mesh_delay_mean=_mesh_delay_mean(topology),
                cache_hit_ratio=hits / lookups if lookups else 0.0,
                control_messages=messages,
                bytes_conserved=scenario.byte_accounting()["conserved"]))
    return rows


def check_shape(rows):
    failures = []
    by_key = {(row.system, row.topology): row for row in rows}
    for row in rows:
        if row.flows == 0:
            failures.append(f"{row.system}/{row.topology}: no flows ran")
        if not row.bytes_conserved:
            failures.append(f"{row.system}/{row.topology}: bytes not conserved")
        if row.control_messages <= 0:
            failures.append(f"{row.system}/{row.topology}: no control traffic")
        if row.flows and row.flows_failed > row.flows // 2:
            failures.append(
                f"{row.system}/{row.topology}: most flows failed "
                f"({row.flows_failed}/{row.flows})")
        tiered_family = row.topology in ("tiered", "caida")
        if tiered_family != row.hierarchical:
            failures.append(
                f"{row.system}/{row.topology}: wrong routing plan kind")
        if tiered_family and row.ixps < 1:
            failures.append(f"{row.system}/{row.topology}: no IXPs generated")
    for system in sorted({row.system for row in rows}):
        flat = by_key.get((system, "flat"))
        for family in ("tiered", "caida"):
            shaped = by_key.get((system, family))
            if flat is None or shaped is None:
                continue
            # Internet-shaped fabrics derive a transit population well
            # beyond the flat mesh's default four providers.
            if not shaped.providers > flat.providers:
                failures.append(
                    f"{system}/{family}: transit population not larger "
                    "than the flat mesh")
    return failures
