"""E1 — initial-packet fate during mapping resolution (claim C1).

For each control-plane/miss-policy combination, runs the same Poisson+Zipf
workload and classifies every flow's *first* data packet: sent immediately,
dropped at the ITR, queued then flushed, or carried over the control plane.
The PCE row must show zero drops and zero queueing at any cache hit ratio;
the reactive baselines degrade as their caches miss.
"""

from collections import Counter
from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, classify_first_packet, run_workload

#: The systems E1 compares, as (label, scenario overrides).
DEFAULT_VARIANTS = (
    ("pce", dict(control_plane="pce")),
    ("alt+drop", dict(control_plane="alt", miss_policy="drop")),
    ("alt+queue", dict(control_plane="alt", miss_policy="queue")),
    ("alt+cp-data", dict(control_plane="alt", miss_policy="cp-data")),
    ("cons+drop", dict(control_plane="cons", miss_policy="drop")),
    ("nerd", dict(control_plane="nerd", miss_policy="drop")),
)


@dataclass
class E1Row:
    system: str
    cache_ttl: float
    flows: int
    hit_ratio: float
    sent_immediately: int
    dropped: int
    queued_then_sent: int
    carried_over_cp: int
    packets_lost: int
    mean_queue_delay: float

    def as_tuple(self):
        return (self.system, self.cache_ttl, self.flows, round(self.hit_ratio, 3),
                self.sent_immediately, self.dropped, self.queued_then_sent,
                self.carried_over_cp, self.packets_lost,
                round(self.mean_queue_delay, 5))


HEADERS = ("system", "cache_ttl", "flows", "hit_ratio", "sent_now", "dropped",
           "queued", "cp_data", "pkts_lost", "queue_delay")


def run_e1(num_sites=8, num_flows=40, cache_ttls=(2.0, 60.0), seed=11,
           variants=DEFAULT_VARIANTS, arrival_rate=10.0, zipf_s=1.0):
    """Run the sweep; returns a list of :class:`E1Row`."""
    rows = []
    for label, overrides in variants:
        for cache_ttl in cache_ttls:
            config = ScenarioConfig(num_sites=num_sites, seed=seed,
                                    cache_ttl_override=cache_ttl,
                                    mapping_ttl=cache_ttl, **overrides)
            scenario = build_scenario(config)
            workload = WorkloadConfig(num_flows=num_flows, arrival_rate=arrival_rate,
                                      zipf_s=zipf_s)
            records = run_workload(scenario, workload)
            outcomes = Counter(classify_first_packet(r) for r in records)
            rows.append(_make_row(label, cache_ttl, scenario, records, outcomes))
    return rows


def _make_row(label, cache_ttl, scenario, records, outcomes):
    hits = misses = 0
    for xtr_list in scenario.xtrs_by_site.values():
        for xtr in xtr_list:
            hits += xtr.map_cache.hits
            misses += xtr.map_cache.misses
    total = hits + misses
    policy_stats = scenario.miss_policy.stats if scenario.miss_policy else None
    queue_delays = policy_stats.queue_delays if policy_stats else []
    return E1Row(
        system=label,
        cache_ttl=cache_ttl,
        flows=len(records),
        hit_ratio=hits / total if total else 1.0,
        sent_immediately=outcomes.get("sent-immediately", 0),
        dropped=outcomes.get("dropped", 0) + outcomes.get("stuck-in-queue", 0),
        queued_then_sent=outcomes.get("queued-then-sent", 0),
        carried_over_cp=outcomes.get("carried-over-cp", 0),
        packets_lost=sum(r.packets_lost for r in records if not r.failed),
        mean_queue_delay=(sum(queue_delays) / len(queue_delays)) if queue_delays else 0.0,
    )


def check_shape(rows):
    """The claims E1 must reproduce; returns a list of failed assertions."""
    failures = []
    by_system = {}
    for row in rows:
        by_system.setdefault(row.system, []).append(row)
    for row in by_system.get("pce", []):
        if row.dropped != 0:
            failures.append(f"pce dropped {row.dropped} first packets (ttl={row.cache_ttl})")
        if row.queued_then_sent != 0:
            failures.append(f"pce queued packets (ttl={row.cache_ttl})")
        if row.packets_lost != 0:
            failures.append(f"pce lost {row.packets_lost} packets (ttl={row.cache_ttl})")
    for row in by_system.get("alt+drop", []):
        if row.dropped == 0:
            failures.append(f"alt+drop unexpectedly lossless (ttl={row.cache_ttl})")
    for row in by_system.get("alt+queue", []):
        if row.queued_then_sent == 0:
            failures.append("alt+queue never queued")
        if row.mean_queue_delay <= 0:
            failures.append("alt+queue has zero queue delay")
    for row in by_system.get("nerd", []):
        if row.dropped != 0 or row.packets_lost != 0:
            failures.append("nerd dropped packets despite pushed database")
    return failures
