"""Experiment drivers: one module per paper artefact (see DESIGN.md §4).

Each driver exposes a ``run(...)`` function returning plain dict/list
results, consumed both by the benchmark harness under ``benchmarks/`` and
by the runnable examples under ``examples/``.
"""

from repro.experiments.scenario import Scenario, ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload

__all__ = ["Scenario", "ScenarioConfig", "WorkloadConfig", "build_scenario",
           "run_workload"]
