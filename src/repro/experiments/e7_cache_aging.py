"""E7 — map-cache aging: "the mapping has aged out" (§1).

Sweeps the ITR cache TTL and the destination-popularity skew.  Reactive
control planes live and die by their caches: short TTLs or long-tailed
destinations mean recurring misses, and with the default drop policy every
miss costs fresh initial packets.  The PCE control plane pushes a mapping
per flow start (or refreshes from the PCE database on cached DNS answers),
so its loss stays zero across the whole sweep.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload


@dataclass
class E7Row:
    system: str
    cache_ttl: float
    zipf_s: float
    flows: int
    hit_ratio: float
    first_packet_drops: int
    packets_lost: int

    def as_tuple(self):
        return (self.system, self.cache_ttl, self.zipf_s, self.flows,
                round(self.hit_ratio, 3), self.first_packet_drops, self.packets_lost)


HEADERS = ("system", "cache_ttl", "zipf_s", "flows", "hit_ratio",
           "first_pkt_drops", "pkts_lost")


def run_e7(num_sites=8, num_flows=50, ttls=(1.0, 10.0, 120.0), zipf_values=(0.0, 1.2),
           seed=83, systems=("alt", "pce")):
    rows = []
    for system in systems:
        for ttl in ttls:
            for zipf_s in zipf_values:
                config = ScenarioConfig(control_plane=system, num_sites=num_sites,
                                        seed=seed, miss_policy="drop",
                                        cache_ttl_override=ttl, mapping_ttl=ttl)
                scenario = build_scenario(config)
                workload = WorkloadConfig(num_flows=num_flows, arrival_rate=5.0,
                                          zipf_s=zipf_s, packets_per_flow=3)
                records = run_workload(scenario, workload)
                rows.append(_measure(system, ttl, zipf_s, scenario, records))
    return rows


def _measure(system, ttl, zipf_s, scenario, records):
    hits = misses = 0
    for xtr_list in scenario.xtrs_by_site.values():
        for xtr in xtr_list:
            hits += xtr.map_cache.hits
            misses += xtr.map_cache.misses
    total = hits + misses
    drops = scenario.miss_policy.stats.dropped if scenario.miss_policy else 0
    return E7Row(system=system, cache_ttl=ttl, zipf_s=zipf_s, flows=len(records),
                 hit_ratio=hits / total if total else 1.0,
                 first_packet_drops=drops,
                 packets_lost=sum(r.packets_lost for r in records if not r.failed))


def check_shape(rows):
    failures = []
    for row in rows:
        if row.system != "pce":
            continue
        if row.cache_ttl >= 2.0 and row.packets_lost != 0:
            failures.append(
                f"pce lost {row.packets_lost} packets at ttl={row.cache_ttl}")
        elif row.packets_lost > max(1, row.flows // 20):
            # Sub-second mapping TTLs can expire *mid-burst*; the PCE design
            # has no reactive fallback, so a stray packet can be lost until
            # the next DNS-driven push.  Documented limitation (EXPERIMENTS.md);
            # anything beyond ~2% signals a real regression.
            failures.append(
                f"pce lost {row.packets_lost} packets at sub-second ttl "
                f"{row.cache_ttl} (beyond the mid-burst-expiry allowance)")
    alt = [row for row in rows if row.system == "alt"]
    by_key = {(row.zipf_s, row.cache_ttl): row for row in alt}
    zipfs = sorted({row.zipf_s for row in alt})
    ttls = sorted({row.cache_ttl for row in alt})
    if len(ttls) >= 2:
        for z in zipfs:
            short, long_ = by_key[(z, ttls[0])], by_key[(z, ttls[-1])]
            if not short.hit_ratio <= long_.hit_ratio:
                failures.append(
                    f"alt hit ratio did not improve with TTL at zipf={z}")
            if not short.packets_lost >= long_.packets_lost:
                failures.append(f"alt loss did not worsen with short TTL at zipf={z}")
    return failures
