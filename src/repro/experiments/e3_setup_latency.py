"""E3 — TCP connection-setup latency (the paper's §1 formulas).

Plain IP:   T_DNS + 2·OWD(S,D) + OWD(D,S)          (SYN + SYN/ACK + first use)
LISP pull:  T_DNS + T_map + 2·OWD(S,D) + OWD(D,S)  (SYN lost/queued on miss)
PCE CP:     ≈ plain IP (mapping ready before the SYN leaves the site)

With the drop miss policy, T_map manifests as a ~1 s SYN retransmission
timeout — far larger than the resolution itself, which is the practical
sting of weakness W1.  With the queue policy it equals the resolution
latency.  NERD matches plain IP (nothing to resolve) at the cost E5 shows.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.metrics.stats import summarize

DEFAULT_VARIANTS = (
    ("plain", dict(control_plane="plain")),
    ("pce", dict(control_plane="pce")),
    ("nerd", dict(control_plane="nerd")),
    ("alt+drop", dict(control_plane="alt", miss_policy="drop")),
    ("alt+queue", dict(control_plane="alt", miss_policy="queue")),
    ("cons+queue", dict(control_plane="cons", miss_policy="queue")),
)


@dataclass
class E3Row:
    system: str
    flows: int
    dns_mean: float
    setup_mean: float
    setup_p95: float
    syn_retx_rate: float
    total_mean: float   # dns + setup: what the user waits

    def as_tuple(self):
        return (self.system, self.flows, round(self.dns_mean, 5),
                round(self.setup_mean, 5), round(self.setup_p95, 5),
                round(self.syn_retx_rate, 3), round(self.total_mean, 5))


HEADERS = ("system", "flows", "t_dns", "t_setup", "t_setup_p95", "syn_retx",
           "t_total")


def run_e3(num_sites=6, num_flows=30, seed=37, variants=DEFAULT_VARIANTS,
           cold_caches=True):
    rows = []
    for label, overrides in variants:
        config = ScenarioConfig(num_sites=num_sites, seed=seed,
                                dns_use_cache=not cold_caches,
                                cache_ttl_override=0.5 if cold_caches else None,
                                **overrides)
        if overrides.get("control_plane") in ("plain", "pce", "nerd"):
            config = config.variant(cache_ttl_override=None)
        scenario = build_scenario(config)
        workload = WorkloadConfig(num_flows=num_flows, arrival_rate=2.0, mode="tcp",
                                  grace_period=15.0)
        records = run_workload(scenario, workload)
        ok = [r for r in records if not r.failed and r.setup_elapsed is not None]
        setup = summarize([r.setup_elapsed for r in ok])
        dns = summarize([r.dns_elapsed for r in ok])
        retx = sum(r.syn_retransmissions for r in ok)
        rows.append(E3Row(system=label, flows=len(ok), dns_mean=dns["mean"],
                          setup_mean=setup["mean"], setup_p95=setup["p95"],
                          syn_retx_rate=retx / len(ok) if ok else 0.0,
                          total_mean=dns["mean"] + setup["mean"]))
    return rows


def check_shape(rows):
    failures = []
    by_system = {row.system: row for row in rows}
    plain = by_system.get("plain")
    pce = by_system.get("pce")
    alt_drop = by_system.get("alt+drop")
    alt_queue = by_system.get("alt+queue")
    if plain and pce:
        # PCE within 20% of plain-IP setup (same handshake, same paths).
        if pce.setup_mean > plain.setup_mean * 1.2 + 0.002:
            failures.append(
                f"pce setup {pce.setup_mean:.4f} not ~ plain {plain.setup_mean:.4f}")
    if pce and alt_drop and not alt_drop.setup_mean > pce.setup_mean * 2:
        failures.append("alt+drop setup not substantially worse than pce")
    if alt_drop and alt_drop.syn_retx_rate <= 0:
        failures.append("alt+drop shows no SYN retransmissions")
    if alt_queue and pce and not alt_queue.setup_mean > pce.setup_mean:
        failures.append("alt+queue setup not worse than pce")
    nerd = by_system.get("nerd")
    if nerd and plain and nerd.setup_mean > plain.setup_mean * 1.2 + 0.002:
        failures.append("nerd setup unexpectedly worse than plain")
    return failures
