"""E6 — the cost of the PCEs on the DNS path, and the line-rate claim.

Two questions from Step 6's "PCE_D can encapsulate the answer roughly at
line rate":

1. Do the PCEs sitting in the DNS data path slow resolution down?
   Compare plain DNS (no interception logic consuming replies) against the
   PCE deployment with precomputed mappings — the difference should be the
   envelope's transit, i.e. negligible.
2. What if the mapping were computed on demand instead of by the background
   IRC engine?  The ablation adds the computation delay to every lookup.

Also reports the byte overhead of the port-P envelope versus the raw reply.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.metrics.stats import summarize


@dataclass
class E6Row:
    variant: str
    flows: int
    t_dns_mean: float
    t_dns_p95: float
    envelope_overhead_bytes: float

    def as_tuple(self):
        return (self.variant, self.flows, round(self.t_dns_mean, 6),
                round(self.t_dns_p95, 6), round(self.envelope_overhead_bytes, 1))


HEADERS = ("variant", "flows", "t_dns_mean", "t_dns_p95", "envelope_bytes")


def run_e6(num_sites=4, num_flows=25, seed=71, computation_delay=0.02):
    variants = (
        ("plain-dns", dict(control_plane="plain")),
        ("pce-precomputed", dict(control_plane="pce", precompute=True)),
        ("pce-on-demand", dict(control_plane="pce", precompute=False,
                               computation_delay=computation_delay)),
    )
    rows = []
    for label, overrides in variants:
        config = ScenarioConfig(num_sites=num_sites, seed=seed,
                                dns_use_cache=False, **overrides)
        scenario = build_scenario(config)
        workload = WorkloadConfig(num_flows=num_flows, arrival_rate=4.0,
                                  packets_per_flow=1)
        records = run_workload(scenario, workload)
        ok = [r.dns_elapsed for r in records if not r.failed]
        stats = summarize(ok)
        rows.append(E6Row(variant=label, flows=len(ok), t_dns_mean=stats["mean"],
                          t_dns_p95=stats["p95"],
                          envelope_overhead_bytes=_envelope_overhead(scenario)))
    return rows


def _envelope_overhead(scenario):
    if scenario.control_plane is None:
        return 0.0
    # Envelope = mapping record + 12B bookkeeping, on top of the raw reply.
    total = 0
    count = 0
    for pce in scenario.control_plane.pces.values():
        if pce.stats.replies_encapsulated:
            mapping = pce.registry.lookup_prefix(pce.site.eid_prefix)
            per_reply = (mapping.size_bytes if mapping else 0) + 12
            total += per_reply * pce.stats.replies_encapsulated
            count += pce.stats.replies_encapsulated
    return total / count if count else 0.0


def check_shape(rows, computation_delay=0.02):
    failures = []
    by_variant = {row.variant: row for row in rows}
    plain = by_variant.get("plain-dns")
    precomputed = by_variant.get("pce-precomputed")
    on_demand = by_variant.get("pce-on-demand")
    if plain and precomputed:
        if precomputed.t_dns_mean > plain.t_dns_mean * 1.10 + 0.001:
            failures.append(
                f"precomputed PCE inflates T_DNS: {precomputed.t_dns_mean:.5f} "
                f"vs plain {plain.t_dns_mean:.5f}")
    if precomputed and on_demand:
        gap = on_demand.t_dns_mean - precomputed.t_dns_mean
        if gap < computation_delay * 0.5:
            failures.append(
                f"on-demand variant does not pay the computation delay (gap={gap:.5f})")
    if precomputed and precomputed.envelope_overhead_bytes <= 0:
        failures.append("no envelope overhead measured")
    return failures
