"""World construction and reuse: build scenarios once, reset them cheaply.

Building a sweep cell's world is the expensive part of running it: node and
link construction, DNS install, control-plane deployment and the provider
route build all scale with the site count, while the workload itself is a
few hundred flows.  Cells that share a
:class:`~repro.experiments.scenario.ScenarioConfig` (same control plane,
site count, seed, ...) build *identical* worlds and differ only in the
workload they run — so the world can be built once and recycled.

The mechanism is checkpoint/restore rather than rebuild:

- :func:`build_world` builds a scenario (through the memoized
  :class:`~repro.net.routing.RoutingPlan` route build), settles any
  deployment-time events, and captures a checkpoint of every stateful
  component (``Scenario.stateful_components``).
- :func:`restore_world` puts all of them back — simulator clock, RNG
  stream states, FIB dynamic entries, map-caches, DNS caches, counters,
  link stats — so a restored world is byte-for-byte the world the build
  produced.  Determinism tests diff fresh-build vs reused-world summaries.

Periodic background processes (RLOC probing, a started IRC measurement
loop) are no obstacle to any of this: they run as engine-owned
:class:`~repro.sim.periodic.PeriodicTask` objects whose timers are plain
engine state, not pending generator frames.  Settling drains *foreground*
work only — an armed periodic tick is not pending work — and the
simulator's checkpoint captures each task's armed flag, next-fire time and
tick counter, **re-arming the timers on restore** so a restored probing
world starts ticking at exactly the instants the fresh build would have.
Every config is therefore cacheable; there is no bypass path.

:class:`WorldBuilder` is the per-process cache the sweep workers hold: a
small LRU keyed on the full scenario config, with hit/miss counters that
the sweep surfaces in its output (the historical ``bypasses`` counter is
retained in the reported dict as an assertion-only zero).

Shared snapshot store
---------------------

A built world is also *serializable*: once settled, the whole object graph
(engine, topology, control plane, checkpoint) is plain picklable data —
see :data:`repro.sim.engine.STATE_VERSION` for the engine's side of that
contract.  :func:`serialize_world` wraps the pickle in a versioned
envelope (magic + schema + engine state version + world key + CRC) and
:class:`SnapshotStore` keeps the resulting immutable blobs keyed by world
key — in memory, and content-addressed on disk under ``directory`` when
one is given.  The sweep pre-builds each distinct world exactly once into
the store; every worker then *restores* (deserializes) from the shared
blob instead of building: fork-inherited read-only memory on ``fork``
platforms, file-backed everywhere else — and with a persistent
``--snapshot-dir``, across invocations too.

Invalidation is rebuild-only, never stale-restore: a blob whose magic,
schema version, engine state version, world key or CRC does not match
expectations is discarded (and unlinked on disk) and the world is rebuilt
from the config.  :func:`deserialize_world` additionally funnels the
unpickled world through :func:`restore_world`, so a store-restored world
reaches the workload through the exact restore machinery a same-process
cache hit uses — fresh, cache-hit and blob-restored worlds are
byte-identical by construction.
"""

import gc
import hashlib
import os
import pickle
import tempfile
import zlib
from collections import OrderedDict
from dataclasses import astuple

from repro.experiments.scenario import build_scenario
from repro.sim.engine import STATE_VERSION


def world_key(config):
    """Hashable identity of the world *config* builds.

    Every :class:`ScenarioConfig` field participates: two configs differing
    in any knob (mapping TTL, miss policy, delay ranges, ...) build
    different worlds and must not share a cache slot.
    """
    return astuple(config)


def build_world(config):
    """Build the world for *config* and checkpoint it.

    The world is settled first (the foreground queue is drained of finite
    deployment-time events, e.g. NERD's initial database push — armed
    periodic tasks do not count as pending work) so the checkpoint captures
    a quiescent world; the workload then starts from the same instant on
    fresh builds and reuses alike.  The checkpoint is attached as
    ``scenario.world_checkpoint``.
    """
    scenario = build_scenario(config)
    scenario.sim.run()  # settle: drain finite deployment-time events
    scenario.world_checkpoint = capture_world(scenario)
    return scenario


def capture_world(scenario):
    """Checkpoint every stateful component of *scenario*."""
    return [(component, component.snapshot_state())
            for component in scenario.stateful_components()]


def restore_world(scenario):
    """Reset *scenario* to its post-build checkpoint, ready for a new run."""
    if scenario.world_checkpoint is None:
        raise ValueError("scenario has no world checkpoint")
    for component, state in scenario.world_checkpoint:
        component.restore_state(state)
    scenario.stubs.clear()


# --------------------------------------------------------------------- #
# Snapshot blobs: versioned, immutable, picklable world serializations
# --------------------------------------------------------------------- #

#: Leading bytes of every snapshot blob; anything else is not a snapshot.
SNAPSHOT_MAGIC = b"repro-world-snapshot\n"

#: Version of the snapshot envelope layout.  Bumping it (or the engine's
#: :data:`~repro.sim.engine.STATE_VERSION`) invalidates every existing
#: blob: mismatched snapshots are rebuilt, never restored.  v2: link
#: checkpoints carry per-flow byte accounting and utilization windows, and
#: :class:`~repro.experiments.scenario.ScenarioConfig` grew
#: ``access_rate_bps`` (world keys shifted).  v3:
#: :class:`~repro.lisp.probing.RlocProber` checkpoints grew the
#: ``on_down``/``on_up`` transition-listener lists.  v4: the fluid data
#: plane — :class:`~repro.net.link.LinkStats` checkpoints carry
#: ``fluid_bytes``, :class:`~repro.traffic.flows.UdpSink` carries fluid
#: byte counters, and worlds gained the per-world
#: :class:`~repro.traffic.flows.FlowIdAllocator` component.  v5:
#: :class:`~repro.experiments.scenario.ScenarioConfig` grew the
#: ``topology`` family field (world keys shifted) and tiered worlds carry
#: a :class:`~repro.net.routing.TierLayout` plus hierarchical routing
#: plans and IX routers in the pickled graph.
SNAPSHOT_SCHEMA = 5


def _without_gc(func, *args, **kwargs):
    """Run *func* with the cyclic GC paused.

    (De)serializing a world allocates hundreds of thousands of objects in
    one burst; every GC generation-0 sweep in the middle scans the whole
    growing graph for garbage that cannot exist yet.  Pausing collection
    for the duration is a ~3x wall-time win on blob restores and keeps the
    store's restore path comfortably cheaper than its build path.
    """
    enabled = gc.isenabled()
    if enabled:
        gc.disable()
    try:
        return func(*args, **kwargs)
    finally:
        if enabled:
            gc.enable()


class SnapshotError(ValueError):
    """A blob failed validation (corrupt, stale schema, or wrong world)."""

    def __init__(self, reason, detail=""):
        super().__init__(f"invalid world snapshot ({reason})"
                         + (f": {detail}" if detail else ""))
        self.reason = reason


def snapshot_fingerprint(config):
    """Content address of *config*'s snapshot: world key + schema versions.

    The schema and engine state versions participate, so a version bump
    changes every filename and old blobs simply stop being found — and a
    blob found under the right name still carries its full world key in
    the envelope, which :func:`validate_blob` checks against the config
    (defending against fingerprint collisions and renamed files).
    """
    identity = (SNAPSHOT_SCHEMA, STATE_VERSION, world_key(config))
    return hashlib.sha256(repr(identity).encode()).hexdigest()


def serialize_world(scenario):
    """Pickle a settled, checkpointed *scenario* into an immutable blob.

    The blob is a versioned envelope: magic, schema + engine state
    versions, the full world key, a CRC of the payload, and the payload
    pickle of the whole scenario graph (checkpoint included, so a
    deserialized world restores through the normal machinery).
    """
    if scenario.world_checkpoint is None:
        raise ValueError("scenario has no world checkpoint; serialize only "
                         "worlds produced by build_world")
    if not scenario.sim.serializable:
        raise ValueError("cannot serialize a world with pending foreground "
                         "events (settle it first)")
    payload = _without_gc(pickle.dumps, scenario,
                          protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "schema": SNAPSHOT_SCHEMA,
        "engine": STATE_VERSION,
        "key": world_key(scenario.config),
        "crc": zlib.crc32(payload),
        "payload": payload,
    }
    return SNAPSHOT_MAGIC + pickle.dumps(envelope,
                                         protocol=pickle.HIGHEST_PROTOCOL)


def validate_blob(blob, config):
    """Check *blob*'s envelope against *config*; return it or raise.

    Cheap relative to a full restore: the payload is CRC-checked but not
    unpickled, so the pre-build stage can trust-or-rebuild file-backed
    blobs without paying deserialization per world.  Raises
    :class:`SnapshotError` naming the first failed check.
    """
    if not blob.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError("bad magic")
    try:
        envelope = pickle.loads(blob[len(SNAPSHOT_MAGIC):])
        schema = envelope["schema"]
        engine = envelope["engine"]
        key = envelope["key"]
        crc = envelope["crc"]
        payload = envelope["payload"]
    except Exception as error:
        raise SnapshotError("corrupt envelope", repr(error)) from error
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError("schema mismatch",
                            f"blob v{schema}, expected v{SNAPSHOT_SCHEMA}")
    if engine != STATE_VERSION:
        raise SnapshotError("engine state-version mismatch",
                            f"blob v{engine}, expected v{STATE_VERSION}")
    if key != world_key(config):
        raise SnapshotError("world-key mismatch",
                            "blob was built from a different config")
    if zlib.crc32(payload) != crc:
        raise SnapshotError("payload CRC mismatch")
    return envelope


def deserialize_world(blob, config):
    """Rebuild a live scenario from *blob*, validated against *config*.

    The unpickled world is reset through :func:`restore_world`, so it
    reaches the caller through the same restore path a same-process cache
    hit takes.  Raises :class:`SnapshotError` on any validation or
    unpickling failure — callers rebuild, they never restore stale state.
    """
    envelope = validate_blob(blob, config)
    try:
        scenario = _without_gc(pickle.loads, envelope["payload"])
    except Exception as error:
        raise SnapshotError("corrupt payload", repr(error)) from error
    restore_world(scenario)
    return scenario


class SnapshotStoreStats:
    """Counters for one :class:`SnapshotStore`.

    ``builds`` counts worlds built *into* the store (the acceptance
    criterion: exactly one per distinct world key per cold sweep, zero on
    a warm ``--snapshot-dir`` rerun), ``restores`` counts blobs
    deserialized back into live worlds, ``hits`` counts valid blobs found
    already stored, and ``invalidated`` counts blobs rejected and
    discarded by validation.
    """

    __slots__ = ("builds", "restores", "hits", "invalidated")

    def __init__(self):
        self.builds = 0
        self.restores = 0
        self.hits = 0
        self.invalidated = 0

    def as_dict(self):
        return {"builds": self.builds, "restores": self.restores,
                "hits": self.hits, "invalidated": self.invalidated}


class SnapshotStore:
    """World snapshots keyed by world key, in two tiers.

    *Live worlds* (``ensure(config, live=True)``) are built scenario
    graphs held by the parent process; on ``fork`` platforms every worker
    inherits them as read-only memory and a restore is an in-place
    checkpoint reset (:func:`restore_world`, milliseconds) — no
    serialization on the hot path at all.  This is the fan-out tier: one
    build in the parent amortizes across all workers.  It composes with
    a *directory*: the same ``ensure`` call also persists a blob, and on
    warm runs hydrates the live world from the stored blob instead of
    rebuilding.

    *Blobs* (:meth:`ensure`) are the serialized tier: immutable pickled
    envelopes kept in memory and, when *directory* is given, as
    content-addressed files ``<fingerprint>.world`` that outlive the
    process — repeated sweeps pointed at the same ``--snapshot-dir`` skip
    building entirely, and spawn-platform workers (which cannot inherit
    parent memory) read them from disk.  Disk blobs are validated on
    first touch and cached in memory; invalid ones are unlinked and
    rebuilt.
    """

    def __init__(self, directory=None):
        self.directory = directory
        self.stats = SnapshotStoreStats()
        #: fingerprint -> *validated* envelope dict.  Envelopes are cached
        #: instead of raw blobs so a restore never re-validates or
        #: re-unpickles the envelope (and never holds two copies of the
        #: multi-MB payload bytes).
        self._envelopes = {}
        #: fingerprint -> live built scenario (the fork tier).
        self._live = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self):
        return len(self._envelopes.keys() | self._live.keys())

    def _path(self, fingerprint):
        return os.path.join(self.directory, f"{fingerprint}.world")

    def _envelope_for(self, config):
        """The validated envelope for *config*, or None.

        Validation (magic, schema, engine version, key, CRC) runs at most
        once per process per world: a cache hit returns the envelope
        as-is.  Invalid blobs are discarded (and unlinked on disk).
        """
        fingerprint = snapshot_fingerprint(config)
        envelope = self._envelopes.get(fingerprint)
        if envelope is not None:
            self.stats.hits += 1
            return envelope
        if self.directory is None:
            return None
        try:
            with open(self._path(fingerprint), "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        try:
            envelope = validate_blob(blob, config)
        except SnapshotError:
            self._discard(fingerprint)
            self.stats.invalidated += 1
            return None
        self._envelopes[fingerprint] = envelope
        self.stats.hits += 1
        return envelope

    def has_snapshot(self, config):
        """True when a valid stored snapshot exists for *config*."""
        return self._envelope_for(config) is not None

    def _store_blob(self, fingerprint, blob):
        """Cache *blob*'s envelope and persist it when a directory is set.

        The blob was serialized by this process, so parsing the envelope
        is a header unpickle, not a validation round.
        """
        self._envelopes[fingerprint] = pickle.loads(blob[len(SNAPSHOT_MAGIC):])
        if self.directory is not None:
            path = self._path(fingerprint)
            handle = tempfile.NamedTemporaryFile(
                dir=self.directory, prefix=".tmp-", delete=False)
            try:
                with handle:
                    handle.write(blob)
                os.replace(handle.name, path)  # atomic: readers never see partial blobs
            except BaseException:
                os.unlink(handle.name)
                raise

    def put_built(self, config, blob):
        """Store freshly built *blob* for *config*, counting one build."""
        self.stats.builds += 1
        self._store_blob(snapshot_fingerprint(config), blob)

    def ensure(self, config, live=False):
        """Guarantee this store can restore *config*'s world.

        The world is built at most once.  With ``live=True`` (the fork
        fan-out tier) a live in-store world is guaranteed too — hydrated
        from a valid stored blob when one exists, built otherwise (with
        the cyclic GC paused: a build is one allocation burst, like a
        restore) — *and* a blob is still written when the store has a
        ``directory``, so persistence and the live tier compose.  Returns
        ``"hit"`` or ``"build"``.
        """
        fingerprint = snapshot_fingerprint(config)
        scenario = self._live.get(fingerprint)
        envelope = self._envelope_for(config)
        if live and scenario is None and envelope is not None:
            scenario = self._deserialize(fingerprint, envelope, config)
            if scenario is not None:
                self._live[fingerprint] = scenario
            envelope = self._envelopes.get(fingerprint)  # None if corrupt
        if envelope is not None and (scenario is not None or not live):
            self._trim_envelope(fingerprint)
            return "hit"
        outcome = "hit"
        if scenario is None:
            scenario = _without_gc(build_world, config)
            self.stats.builds += 1
            outcome = "build"
            if live:
                self._live[fingerprint] = scenario
        if envelope is None and (self.directory is not None or not live):
            self._store_blob(fingerprint, serialize_world(scenario))
            self._trim_envelope(fingerprint)
        return outcome

    def _trim_envelope(self, fingerprint):
        """Drop a cached envelope that is redundant with a live world.

        With both a live world and an on-disk blob for *fingerprint*,
        restores use the live tier and warm processes re-read the disk —
        keeping the multi-MB payload bytes cached too would roughly
        double parent memory per world for nothing.
        """
        if fingerprint in self._live and self.directory is not None:
            self._envelopes.pop(fingerprint, None)

    def restore(self, config):
        """A pristine world for *config* from the store, or None.

        A live world is reset in place (cheap, and the object is shared
        with the store — callers in forked workers each hold their own
        copy-on-write image of it); otherwise the stored, pre-validated
        envelope payload is deserialized into an independent world.  A
        payload that fails unpickling is discarded like any other invalid
        blob — the caller falls back to a build.
        """
        fingerprint = snapshot_fingerprint(config)
        live = self._live.get(fingerprint)
        if live is not None:
            restore_world(live)
            self.stats.restores += 1
            return live
        envelope = self._envelope_for(config)
        if envelope is None:
            return None
        scenario = self._deserialize(fingerprint, envelope, config)
        if scenario is None:
            return None
        self.stats.restores += 1
        return scenario

    def _deserialize(self, fingerprint, envelope, config):
        """Unpickle a validated envelope's payload; None (and discard) on
        failure.  Skips re-validation: envelopes in the cache already
        passed every check."""
        try:
            scenario = _without_gc(pickle.loads, envelope["payload"])
        except Exception:
            self._discard(fingerprint)
            self.stats.invalidated += 1
            return None
        restore_world(scenario)
        return scenario

    def release_worlds(self):
        """Drop every held live world and cached envelope.

        Stats and on-disk blobs survive; memory does not.  The sweep
        calls this once its run phase ends — the store retains one world
        (or multi-MB envelope) per distinct world key with no eviction
        while restores may still arrive, so releasing promptly is the
        memory bound.
        """
        self._live.clear()
        self._envelopes.clear()

    def _discard(self, fingerprint):
        self._envelopes.pop(fingerprint, None)
        self._live.pop(fingerprint, None)
        if self.directory is not None:
            try:
                os.unlink(self._path(fingerprint))
            except OSError:
                pass


class WorldCacheStats:
    """Counters for one :class:`WorldBuilder` (surfaced by the sweep).

    ``misses`` counts cells the in-process LRU could not serve; each miss
    is resolved either by deserializing a shared snapshot (``restores``)
    or by a full build (``builds``) — so "one build, N restores" is
    directly observable.  ``bypasses`` is assertion-only: every world is
    checkpointable since periodic processes became engine-owned tasks, so
    nothing increments it — it stays in the reported dict so downstream
    consumers can assert it is zero.
    """

    __slots__ = ("builds", "hits", "misses", "restores", "bypasses")

    def __init__(self):
        self.builds = 0
        self.hits = 0
        self.misses = 0
        self.restores = 0
        self.bypasses = 0

    def as_dict(self):
        return {"builds": self.builds, "hits": self.hits,
                "misses": self.misses, "restores": self.restores,
                "bypasses": self.bypasses}

    def count(self, outcome):
        """Tally one ``scenario_for`` outcome ("hit" | "restore" | "miss")."""
        if outcome == "hit":
            self.hits += 1
        elif outcome == "restore":
            self.restores += 1
            self.misses += 1
        elif outcome == "miss":
            self.builds += 1
            self.misses += 1
        else:
            raise ValueError(f"unexpected world-cache outcome {outcome!r}")


class WorldBuilder:
    """A keyed LRU cache of built worlds with checkpoint-based reset.

    One lives in every persistent sweep worker; cells arriving with a
    config seen before get the cached world restored to pristine state
    instead of a rebuild.  ``max_worlds`` bounds resident memory (large
    worlds are the whole point of reuse, and also the reason not to keep
    too many of them alive).

    With a :class:`SnapshotStore`, an LRU miss first tries to restore
    from the shared store (outcome ``"restore"``) and only falls back to
    a full build (outcome ``"miss"``) when the store has no valid
    snapshot — so N workers sharing one store build each distinct world
    at most once between them instead of once each.  Note that
    ``max_worlds`` then bounds only worlds this builder built or
    blob-deserialized itself: a store-held *live* world is shared with
    (and retained by) the store, so evicting it here frees only this
    process's copy-on-write pages.
    """

    def __init__(self, max_worlds=4, store=None):
        if max_worlds < 1:
            raise ValueError("max_worlds must be >= 1")
        self.max_worlds = max_worlds
        self.store = store
        self.stats = WorldCacheStats()
        #: Cache outcome of the most recent scenario_for call
        #: ("hit" | "restore" | "miss"), for per-cell reporting.
        self.last_outcome = None
        self._cache = OrderedDict()

    def __len__(self):
        return len(self._cache)

    def scenario_for(self, config):
        """The world for *config*: cached-and-reset when possible."""
        key = world_key(config)
        scenario = self._cache.get(key)
        if scenario is not None:
            self._cache.move_to_end(key)
            restore_world(scenario)
            self._record("hit")
            return scenario
        outcome = "miss"
        if self.store is not None:
            scenario = self.store.restore(config)
            if scenario is not None:
                outcome = "restore"
        if scenario is None:
            scenario = build_world(config)
        self._record(outcome)
        self._cache[key] = scenario
        while len(self._cache) > self.max_worlds:
            self._cache.popitem(last=False)
        return scenario

    def _record(self, outcome):
        self.stats.count(outcome)
        self.last_outcome = outcome

    def clear(self):
        self._cache.clear()
