"""World construction and reuse: build scenarios once, reset them cheaply.

Building a sweep cell's world is the expensive part of running it: node and
link construction, DNS install, control-plane deployment and the provider
route build all scale with the site count, while the workload itself is a
few hundred flows.  Cells that share a
:class:`~repro.experiments.scenario.ScenarioConfig` (same control plane,
site count, seed, ...) build *identical* worlds and differ only in the
workload they run — so the world can be built once and recycled.

The mechanism is checkpoint/restore rather than rebuild:

- :func:`build_world` builds a scenario (through the memoized
  :class:`~repro.net.routing.RoutingPlan` route build), settles any
  deployment-time events, and captures a checkpoint of every stateful
  component (``Scenario.stateful_components``).
- :func:`restore_world` puts all of them back — simulator clock, RNG
  stream states, FIB dynamic entries, map-caches, DNS caches, counters,
  link stats — so a restored world is byte-for-byte the world the build
  produced.  Determinism tests diff fresh-build vs reused-world summaries.

Periodic background processes (RLOC probing, a started IRC measurement
loop) are no obstacle to any of this: they run as engine-owned
:class:`~repro.sim.periodic.PeriodicTask` objects whose timers are plain
engine state, not pending generator frames.  Settling drains *foreground*
work only — an armed periodic tick is not pending work — and the
simulator's checkpoint captures each task's armed flag, next-fire time and
tick counter, **re-arming the timers on restore** so a restored probing
world starts ticking at exactly the instants the fresh build would have.
Every config is therefore cacheable; there is no bypass path.

:class:`WorldBuilder` is the per-process cache the sweep workers hold: a
small LRU keyed on the full scenario config, with hit/miss counters that
the sweep surfaces in its output (the historical ``bypasses`` counter is
retained in the reported dict as an assertion-only zero).
"""

from collections import OrderedDict
from dataclasses import astuple

from repro.experiments.scenario import build_scenario


def world_key(config):
    """Hashable identity of the world *config* builds.

    Every :class:`ScenarioConfig` field participates: two configs differing
    in any knob (mapping TTL, miss policy, delay ranges, ...) build
    different worlds and must not share a cache slot.
    """
    return astuple(config)


def build_world(config):
    """Build the world for *config* and checkpoint it.

    The world is settled first (the foreground queue is drained of finite
    deployment-time events, e.g. NERD's initial database push — armed
    periodic tasks do not count as pending work) so the checkpoint captures
    a quiescent world; the workload then starts from the same instant on
    fresh builds and reuses alike.  The checkpoint is attached as
    ``scenario.world_checkpoint``.
    """
    scenario = build_scenario(config)
    scenario.sim.run()  # settle: drain finite deployment-time events
    scenario.world_checkpoint = capture_world(scenario)
    return scenario


def capture_world(scenario):
    """Checkpoint every stateful component of *scenario*."""
    return [(component, component.snapshot_state())
            for component in scenario.stateful_components()]


def restore_world(scenario):
    """Reset *scenario* to its post-build checkpoint, ready for a new run."""
    if scenario.world_checkpoint is None:
        raise ValueError("scenario has no world checkpoint")
    for component, state in scenario.world_checkpoint:
        component.restore_state(state)
    scenario.stubs.clear()


class WorldCacheStats:
    """Counters for one :class:`WorldBuilder` (surfaced by the sweep).

    ``bypasses`` is assertion-only: every world is checkpointable since
    periodic processes became engine-owned tasks, so nothing increments it
    — it stays in the reported dict so downstream consumers can assert it
    is zero.
    """

    __slots__ = ("builds", "hits", "misses", "bypasses")

    def __init__(self):
        self.builds = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    def as_dict(self):
        return {"builds": self.builds, "hits": self.hits,
                "misses": self.misses, "bypasses": self.bypasses}

    def count(self, outcome):
        """Tally one ``scenario_for`` outcome ("hit" | "miss")."""
        if outcome == "hit":
            self.hits += 1
        elif outcome == "miss":
            self.builds += 1
            self.misses += 1
        else:
            raise ValueError(f"unexpected world-cache outcome {outcome!r}")


class WorldBuilder:
    """A keyed LRU cache of built worlds with checkpoint-based reset.

    One lives in every persistent sweep worker; cells arriving with a
    config seen before get the cached world restored to pristine state
    instead of a rebuild.  ``max_worlds`` bounds resident memory (large
    worlds are the whole point of reuse, and also the reason not to keep
    too many of them alive).
    """

    def __init__(self, max_worlds=4):
        if max_worlds < 1:
            raise ValueError("max_worlds must be >= 1")
        self.max_worlds = max_worlds
        self.stats = WorldCacheStats()
        #: Cache outcome of the most recent scenario_for call
        #: ("hit" | "miss"), for per-cell reporting.
        self.last_outcome = None
        self._cache = OrderedDict()

    def __len__(self):
        return len(self._cache)

    def scenario_for(self, config):
        """The world for *config*: cached-and-reset when possible."""
        key = world_key(config)
        scenario = self._cache.get(key)
        if scenario is not None:
            self._cache.move_to_end(key)
            restore_world(scenario)
            self._record("hit")
            return scenario
        scenario = build_world(config)
        self._record("miss")
        self._cache[key] = scenario
        while len(self._cache) > self.max_worlds:
            self._cache.popitem(last=False)
        return scenario

    def _record(self, outcome):
        self.stats.count(outcome)
        self.last_outcome = outcome

    def clear(self):
        self._cache.clear()
