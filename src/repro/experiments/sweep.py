"""Parameter sweeps: declarative scenario grids fanned out over processes.

The experiment modules (E1-E9) each run a handful of hand-picked worlds.
This module is the scaling counterpart: a :class:`SweepGrid` declares axes
(control plane x topology family x site count x seed x workload skew x
flow-size distribution
x pacing mode x RLOC-failure fraction), :func:`expand_grid` turns it into concrete
:class:`SweepCell` objects — one
:class:`~repro.experiments.scenario.ScenarioConfig` /
:class:`~repro.experiments.workload.WorkloadConfig` pair per cell — and
:func:`run_sweep` fans the cells out across worker processes.

Worlds are built through :mod:`repro.experiments.worldbuild`.  Fan-out
runs pre-build every distinct world *exactly once* into a shared
:class:`~repro.experiments.worldbuild.SnapshotStore`, then dispatch
cells to workers individually — no world-key affinity grouping, any
worker serves any cell — because a worker whose in-process LRU misses
simply restores from the shared store instead of rebuilding: live
fork-inherited worlds reset in place on ``fork`` platforms, serialized
blobs (file-backed via ``snapshot_dir``) everywhere else.  On the fork
path the build stage runs serially in the parent with the cyclic GC
paused — measured cheaper per world than the build-pool + serialize +
deserialize round trip, though a grid with many distinct worlds pays it
unparallelized; the short-lived build pool is the spawn-platform path.
A persistent ``snapshot_dir`` carries blobs across invocations, so a
repeated sweep performs zero builds.  Cache and store counters surface
in the sweep outcome under ``world_cache`` (``bypasses`` is an
assertion-only zero: periodic background processes are checkpointable,
so every world is cacheable).

Cell results stream to a JSONL artifact as they complete (one JSON object
per line, in completion order, each tagged with its world-cache outcome)
instead of accumulating a single in-memory payload; aggregation is an
incremental, order-independent fold over the live stream
(:class:`AggregateFold`) and CSV writing streams row-by-row
(:class:`CsvStreamWriter`), so >10k-cell grids aggregate holding only
per-group scalars and per-seed samples — never the per-cell result
payloads — while aggregates and artifacts stay byte-identical for
``workers=1`` vs ``workers=N``.  ``include_cells=False`` (CLI
``--no-json``) skips materialising the per-cell list entirely.

Determinism: each cell's world is either freshly built or restored to the
post-build checkpoint, so a cell's metrics depend only on its configs —
never on which cells ran before it in the same worker.  Nothing
wall-clock-dependent or scheduling-dependent is written into the JSON/CSV
artifacts (the per-cell world-cache outcome lives only in the JSONL lines
and the non-digested ``world_cache`` summary).

Sweep cells run with tracing disabled (``ScenarioConfig.tracing=False``):
metrics come from counters and flow records, and skipping per-packet trace
allocation is what makes the >=100-site cells cheap.

Usage::

    from repro.experiments.sweep import PRESETS, run_sweep
    outcome = run_sweep(PRESETS["scale"], workers=4,
                        json_path="sweep.json", csv_path="sweep.csv",
                        jsonl_path="sweep.cells.jsonl")

or from the command line: ``python -m repro sweep --preset scale --workers 4``.
"""

import csv
import heapq
import json
import math
import multiprocessing
import os
import shutil
import tempfile
from dataclasses import dataclass, field, fields

from repro.experiments.e9_failover import schedule_access_failure
from repro.experiments.scenario import CONTROL_PLANES, ScenarioConfig
from repro.experiments.workload import (WorkloadConfig, classify_first_packet,
                                        peak_concurrent_flows, run_workload)
from repro.experiments.worldbuild import (SnapshotStore, WorldBuilder,
                                          WorldCacheStats, build_world,
                                          serialize_world, world_key)
from repro.metrics.stats import summarize
from repro.net.topogen import FAMILIES
from repro.traffic.popularity import PACING_MODES, SIZE_DISTRIBUTIONS

#: Schema tag written into every JSON artifact.  v6: the ``topology``
#: family axis (``fig1``/``flat``/``tiered``/``caida``, see
#: :mod:`repro.net.topogen`) joins the grid, the group key, the per-cell
#: rows and the CSV.  v5: the ``fluid`` pacing
#: mode joins the axis and per-cell metrics carry ``fluid_bytes`` (bytes
#: that crossed links as fluid chunks) and ``peak_concurrent_flows``.
#: v4: the ``pacing`` axis joined the group key, and per-cell metrics
#: carry link byte accounting
#: (``bytes_offered``/``bytes_delivered``/``bytes_dropped``/
#: ``bytes_in_flight``, the ``bytes_conserved`` verdict, flow byte budgets
#: and the peak access-link utilization).  v3 added ``sim_events``
#: periodic ticks, fsum means, and the optional ``cells`` key.
SCHEMA = "repro.sweep/v6"

#: Default per-worker world-cache capacity.
DEFAULT_MAX_WORLDS = 4


@dataclass(frozen=True)
class SweepGrid:
    """Declarative axes of a sweep plus shared scenario/workload knobs.

    The cross product ``control_planes x topologies x site_counts x
    zipf_values x size_dists x pacings x fail_fractions x seeds`` defines
    the cells, in that nesting order.  ``topologies`` names topology
    families (see :mod:`repro.net.topogen`); non-flat families derive
    their own provider population from the site count, so
    ``num_providers`` only shapes ``flat``/``fig1`` cells.  ``scenario_overrides`` and ``workload_overrides``
    apply to every cell (any :class:`ScenarioConfig` /
    :class:`WorkloadConfig` field).

    ``size_dists`` selects per-cell flow-size distributions (heavy-tailed
    bounded Pareto / lognormal around ``packets_per_flow``; see
    :class:`~repro.traffic.popularity.FlowSizeSampler`).  ``pacings``
    selects how those sizes hit the links per cell: ``constant`` keeps the
    historical fixed inter-packet spacing, ``shaped`` bursts mice
    back-to-back and paces elephants at the workload's target rate (see
    :class:`~repro.traffic.popularity.FlowShaper`).  ``fail_fractions``
    injects the E9 RLOC-failure machinery as an axis: a fraction of sites
    lose their primary access link at ``fail_at`` and regain it at
    ``repair_at`` (simulated seconds after the workload starts).
    """

    name: str = "sweep"
    control_planes: tuple = ("pce", "alt")
    topologies: tuple = ("flat",)
    site_counts: tuple = (4,)
    seeds: tuple = (1,)
    zipf_values: tuple = (1.0,)
    size_dists: tuple = ("constant",)
    pacings: tuple = ("constant",)
    fail_fractions: tuple = (0.0,)
    fail_at: float = 1.0
    repair_at: float = 3.0
    num_providers: int = 4
    hosts_per_site: int = 2
    num_flows: int = 40
    arrival_rate: float = 20.0
    mode: str = "udp"
    packets_per_flow: int = 3
    mapping_ttl: float = 60.0
    scenario_overrides: dict = field(default_factory=dict)
    workload_overrides: dict = field(default_factory=dict)

    def describe(self):
        """JSON-ready description of the grid (stable field order)."""
        description = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            description[spec.name] = list(value) if isinstance(value, tuple) else value
        return description


@dataclass(frozen=True)
class FailureConfig:
    """RLOC failure injected into a cell (reuses the E9 machinery)."""

    fraction: float
    fail_at: float = 1.0
    repair_at: float = 3.0


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: everything a worker needs to run it."""

    index: int
    cell_id: str
    scenario: ScenarioConfig
    workload: WorkloadConfig
    failure: FailureConfig = None


def expand_grid(grid):
    """The grid's cells, in deterministic axis-nesting order."""
    for control_plane in grid.control_planes:
        if control_plane not in CONTROL_PLANES:
            raise ValueError(f"unknown control plane {control_plane!r}")
    for topology in grid.topologies:
        if topology not in FAMILIES:
            raise ValueError(f"unknown topology family {topology!r}")
    for size_dist in grid.size_dists:
        if size_dist not in SIZE_DISTRIBUTIONS:
            raise ValueError(f"unknown size distribution {size_dist!r}")
    for pacing in grid.pacings:
        if pacing not in PACING_MODES:
            raise ValueError(f"unknown pacing mode {pacing!r}")
    for fraction in grid.fail_fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fail fraction {fraction!r} outside [0, 1]")
    cells = []
    for control_plane in grid.control_planes:
        for topology in grid.topologies:
            for num_sites in grid.site_counts:
                for zipf_s in grid.zipf_values:
                    for size_dist in grid.size_dists:
                        for pacing in grid.pacings:
                            for fraction in grid.fail_fractions:
                                for seed in grid.seeds:
                                    cells.append(_make_cell(
                                        grid, len(cells), control_plane,
                                        topology, num_sites, zipf_s,
                                        size_dist, pacing, fraction, seed))
    return cells


def _make_cell(grid, index, control_plane, topology, num_sites, zipf_s,
               size_dist, pacing, fraction, seed):
    # Overrides win over axis-derived values (so a grid can e.g. force
    # miss_policy or hosts_per_site per cell).
    scenario_kwargs = dict(
        control_plane=control_plane,
        topology=topology,
        num_sites=num_sites,
        num_providers=grid.num_providers,
        hosts_per_site=grid.hosts_per_site,
        seed=seed,
        mapping_ttl=grid.mapping_ttl,
        tracing=False)
    scenario_kwargs.update(grid.scenario_overrides)
    scenario = ScenarioConfig(**scenario_kwargs)
    workload_kwargs = dict(
        num_flows=grid.num_flows,
        arrival_rate=grid.arrival_rate,
        zipf_s=zipf_s,
        mode=grid.mode,
        size_dist=size_dist,
        pacing=pacing,
        packets_per_flow=grid.packets_per_flow)
    workload_kwargs.update(grid.workload_overrides)
    workload = WorkloadConfig(**workload_kwargs)
    failure = None
    if fraction > 0.0:
        failure = FailureConfig(fraction=fraction, fail_at=grid.fail_at,
                                repair_at=grid.repair_at)
    cell_id = f"{control_plane}-sites{num_sites}-zipf{zipf_s:g}"
    if topology != "flat":
        cell_id = f"{control_plane}-{topology}-sites{num_sites}-zipf{zipf_s:g}"
    if size_dist != "constant":
        cell_id += f"-size{size_dist}"
    if pacing != "constant":
        cell_id += f"-{pacing}"
    if fraction > 0.0:
        cell_id += f"-fail{fraction:g}"
    cell_id += f"-seed{seed}"
    return SweepCell(index=index, cell_id=cell_id, scenario=scenario,
                     workload=workload, failure=failure)


# --------------------------------------------------------------------- #
# Per-cell execution
# --------------------------------------------------------------------- #

def _apply_failures(scenario, failure):
    """Schedule the cell's RLOC failures (E9 machinery as a sweep axis).

    Site choice draws from the dedicated ``failover`` RNG stream, so it is
    a pure function of the scenario seed — independent of the workload
    stream and of world reuse (restores drop the stream, and it re-derives
    identically).
    """
    if failure is None or failure.fraction <= 0.0:
        return
    sim = scenario.sim
    sites = scenario.topology.sites
    count = min(len(sites), max(1, round(failure.fraction * len(sites))))
    rng = sim.rng.stream("failover")
    for index in sorted(rng.sample(range(len(sites)), count)):
        schedule_access_failure(sim, sites[index], 0,
                                sim.now + failure.fail_at,
                                sim.now + failure.repair_at)


def run_cell(cell, builder=None):
    """Build (or reuse) the cell's world, run its workload, and measure it.

    With a :class:`~repro.experiments.worldbuild.WorldBuilder`, the world
    is served from the builder's keyed cache; without one, it is built
    fresh through the same worldbuild path.  Returns a JSON-ready dict;
    everything in it is derived from the simulation alone (no wall-clock
    values, no cache outcomes), keeping sweep artifacts reproducible.
    """
    if builder is None:
        scenario = build_world(cell.scenario)
    else:
        scenario = builder.scenario_for(cell.scenario)
    _apply_failures(scenario, cell.failure)
    records = run_workload(scenario, cell.workload)

    cache_hits = cache_misses = cache_expirations = 0
    resolutions_started = resolutions_failed = 0
    no_rloc_drops = encapsulated = decapsulated = 0
    fib_nodes = fib_entries = 0
    for xtr_list in scenario.xtrs_by_site.values():
        for xtr in xtr_list:
            cache_hits += xtr.map_cache.hits
            cache_misses += xtr.map_cache.misses
            cache_expirations += xtr.map_cache.expirations
            resolutions_started += xtr.resolutions_started
            resolutions_failed += xtr.resolutions_failed
            no_rloc_drops += xtr.no_rloc_drops
            encapsulated += xtr.encapsulated
            decapsulated += xtr.decapsulated
            fib_nodes += xtr.map_cache.node_count()
            fib_entries += len(xtr.map_cache)
    lookups = cache_hits + cache_misses

    fates = {}
    for record in records:
        fate = classify_first_packet(record)
        fates[fate] = fates.get(fate, 0) + 1

    completed = [r for r in records if not r.failed]
    dns_latencies = [r.dns_elapsed for r in records if r.dns_elapsed is not None]
    setup_latencies = [r.setup_elapsed for r in completed
                       if r.setup_elapsed is not None]

    if scenario.mapping_system is not None:
        control_messages = scenario.mapping_system.stats.messages
        control_bytes = scenario.mapping_system.stats.bytes
    elif scenario.control_plane is not None:
        control_messages = scenario.control_plane.total_control_messages()
        control_bytes = scenario.control_plane.total_push_bytes()
    else:
        control_messages = control_bytes = 0

    # World-wide link byte accounting: conservation is checked per link and
    # per flow (in-flight bytes at the workload deadline are legal; a
    # negative residue anywhere is not), and access-link utilization is the
    # peak busy-window fraction over every site's access links.
    accounting = scenario.byte_accounting()
    access_util_peak = max(
        (utilization
         for site in scenario.topology.sites
         for direction in ("in", "out")
         for utilization in scenario.access_link_utilization(site, direction)),
        default=0.0)

    metrics = {
        "flows": len(records),
        "flows_failed": sum(1 for r in records if r.failed),
        "packets_sent": sum(r.packets_sent for r in records),
        "packets_delivered": sum(r.packets_delivered for r in records),
        "packets_lost": sum(r.packets_lost for r in completed),
        "first_packet_fates": dict(sorted(fates.items())),
        "first_packet_drops": scenario.total_first_packet_drops(),
        "cache_hit_ratio": round(cache_hits / lookups, 6) if lookups else None,
        "cache_expirations": cache_expirations,
        "resolutions_started": resolutions_started,
        "resolutions_failed": resolutions_failed,
        "no_rloc_drops": no_rloc_drops,
        "encapsulated": encapsulated,
        "decapsulated": decapsulated,
        "map_cache_trie_nodes": fib_nodes,
        "map_cache_entries": fib_entries,
        "dns_latency": _round_summary(summarize(dns_latencies))
        if dns_latencies else None,
        "setup_latency": _round_summary(summarize(setup_latencies))
        if setup_latencies else None,
        "control_messages": control_messages,
        "control_bytes": control_bytes,
        "bytes_offered": accounting["bytes_offered"],
        "bytes_delivered": accounting["bytes_delivered"],
        "bytes_dropped": accounting["bytes_dropped"],
        "bytes_in_flight": accounting["bytes_in_flight"],
        "bytes_conserved": accounting["conserved"],
        "flow_bytes_budget": sum(r.bytes_budget for r in records),
        "flow_bytes_sent": sum(r.bytes_sent for r in records),
        "fluid_bytes": sum(link.stats.fluid_bytes
                           for link in scenario.iter_links()),
        "peak_concurrent_flows": peak_concurrent_flows(records),
        "access_util_peak": round(access_util_peak, 6),
        "sim_events": scenario.sim.processed_events,
        "sim_end_time": round(scenario.sim.now, 9),
    }
    return {
        "index": cell.index,
        "cell_id": cell.cell_id,
        "control_plane": cell.scenario.control_plane,
        "topology": cell.scenario.topology_family,
        "num_sites": cell.scenario.num_sites,
        "seed": cell.scenario.seed,
        "zipf_s": cell.workload.zipf_s,
        "size_dist": cell.workload.size_dist,
        "pacing": cell.workload.pacing,
        "fail_fraction": cell.failure.fraction if cell.failure else 0.0,
        "mode": cell.workload.mode,
        "metrics": metrics,
    }


def _round_summary(summary):
    return {key: (round(value, 9) if isinstance(value, float) else value)
            for key, value in summary.items()}


# --------------------------------------------------------------------- #
# Fan-out: shared snapshot store + per-worker world caches
# --------------------------------------------------------------------- #

def distinct_world_configs(cells):
    """The distinct scenario configs among *cells*, first-appearance order."""
    seen = set()
    configs = []
    for cell in cells:
        key = world_key(cell.scenario)
        if key not in seen:
            seen.add(key)
            configs.append(cell.scenario)
    return configs


def order_cells_by_world(cells):
    """Cells reordered so same-world cells are adjacent (serial runs).

    The inline builder's LRU then reuses each world across all of its
    cells regardless of ``max_worlds``; worlds appear in first-appearance
    order, matching the historical grouped dispatch.
    """
    grouped = {}
    for cell in cells:
        grouped.setdefault(world_key(cell.scenario), []).append(cell)
    return [cell for group in grouped.values() for cell in group]


def _build_blob(config):
    """Build-stage worker entry point: one world built and serialized."""
    return serialize_world(build_world(config))


def prebuild_worlds(store, cells, workers=1, live=False):
    """Guarantee *store* holds a snapshot of every distinct world.

    This is the sweep's only build stage — each world is built exactly
    once, and run workers afterwards restore from the store instead of
    building.  With ``live=True`` (fork platforms and serial runs)
    worlds land in the store's live tier — workers inherit the built
    graphs and reset them in place — while a store ``directory`` still
    gets its persistent blobs (warm directories hydrate the live tier
    instead of rebuilding).  Without the live tier (spawn fan-out),
    missing worlds are built in parallel across a short-lived build pool
    when *workers* allows and serialized into blobs; worlds already
    stored are validated and trusted without a rebuild.
    """
    if live:
        for config in distinct_world_configs(cells):
            store.ensure(config, live=True)
        return
    missing = [config for config in distinct_world_configs(cells)
               if not store.has_snapshot(config)]
    if not missing:
        return
    if workers > 1 and len(missing) > 1:
        context = multiprocessing.get_context()
        processes = min(workers, len(missing))
        with context.Pool(processes=processes) as pool:
            # imap (not map): blobs stream back one at a time, so peak
            # parent memory is one in-flight blob, not the whole grid's.
            for config, blob in zip(missing,
                                    pool.imap(_build_blob, missing,
                                              chunksize=1), strict=True):
                store.put_built(config, blob)
    else:
        for config in missing:
            store.ensure(config)


#: Per-process world cache, created by the pool initializer.
_WORKER_BUILDER = None
#: Parent-side store, set around pool creation so ``fork`` workers inherit
#: its blobs as read-only memory (spawn workers re-import and see None).
_SHARED_STORE = None


def _init_worker(max_worlds, snapshot_dir):
    global _WORKER_BUILDER
    store = _SHARED_STORE
    if store is None and snapshot_dir is not None:
        store = SnapshotStore(snapshot_dir)
    _WORKER_BUILDER = WorldBuilder(max_worlds=max_worlds, store=store)


def _run_single_cell(cell):
    """Worker entry point: one cell, any world (no affinity grouping).

    Returns ``(result, world_cache_outcome)``.
    """
    builder = _WORKER_BUILDER
    if builder is None:  # direct invocation outside a pool
        builder = WorldBuilder(max_worlds=1)
    return run_cell(cell, builder=builder), builder.last_outcome


def _iter_completed(cells, workers, max_worlds, store=None, snapshot_dir=None):
    """Yield ``(result, outcome)`` per cell as cells complete.

    ``workers<=1`` runs everything inline with one builder (same-world
    cells adjacent); otherwise cells are dispatched individually to a
    persistent pool — the scheduler no longer groups by world key, since
    any worker can restore any world from the shared *store*.  Completion
    order is arbitrary under fan-out — consumers must not rely on it (the
    aggregation path reorders by cell index).
    """
    if workers <= 1 or len(cells) <= 1:
        builder = WorldBuilder(max_worlds=max_worlds, store=store)
        for cell in order_cells_by_world(cells):
            yield run_cell(cell, builder=builder), builder.last_outcome
        return
    global _SHARED_STORE
    context = multiprocessing.get_context()
    processes = min(workers, len(cells))
    _SHARED_STORE = store
    try:
        with context.Pool(processes=processes, initializer=_init_worker,
                          initargs=(max_worlds, snapshot_dir)) as pool:
            yield from pool.imap_unordered(_run_single_cell, cells,
                                           chunksize=1)
    finally:
        _SHARED_STORE = None


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #

#: Result fields that identify one aggregate group (everything but the seed).
_GROUP_FIELDS = ("control_plane", "topology", "num_sites", "zipf_s",
                 "size_dist", "pacing", "fail_fraction")

#: Integer counters summed straight off each cell's metrics dict.
_SUM_FIELDS = ("flows", "packets_lost", "first_packet_drops",
               "control_messages", "sim_events", "bytes_offered",
               "bytes_delivered", "bytes_dropped", "fluid_bytes")


class AggregateFold:
    """Incremental seed-averaging fold, one :meth:`add` per cell result.

    Per-group state is a handful of integer sums, the seed list, and the
    per-seed float samples the exact means need — so peak memory scales
    with the number of aggregate groups times the seeds axis, never with
    the per-cell result payloads (metrics dicts, fate maps, latency
    summaries), which are released as soon as :meth:`add` returns.

    Float means are computed with :func:`math.fsum` (exactly-rounded), so
    the output is independent of insertion order — folding a
    completion-order stream yields byte-identical aggregates to folding an
    index-sorted list, which is what keeps ``--workers 1`` vs ``N``
    digests equal.
    """

    def __init__(self):
        self._groups = {}

    def add(self, result):
        key = tuple(result[field] for field in _GROUP_FIELDS)
        state = self._groups.get(key)
        if state is None:
            state = self._groups[key] = {
                "cells": 0, "seeds": [], "hit_ratios": [], "setup_p95s": [],
                "dns_p95_max": None, "bytes_conserved": True,
                "access_util_peak": 0.0, "peak_concurrent_flows": 0,
                **{name: 0 for name in _SUM_FIELDS},
            }
        metrics = result["metrics"]
        state["cells"] += 1
        state["seeds"].append(result["seed"])
        for name in _SUM_FIELDS:
            state[name] += metrics[name]
        state["bytes_conserved"] = (state["bytes_conserved"]
                                    and metrics["bytes_conserved"])
        state["access_util_peak"] = max(state["access_util_peak"],
                                        metrics["access_util_peak"])
        state["peak_concurrent_flows"] = max(state["peak_concurrent_flows"],
                                             metrics["peak_concurrent_flows"])
        if metrics["cache_hit_ratio"] is not None:
            state["hit_ratios"].append(metrics["cache_hit_ratio"])
        if metrics["setup_latency"] is not None:
            state["setup_p95s"].append(metrics["setup_latency"]["p95"])
        if metrics["dns_latency"] is not None:
            p95 = metrics["dns_latency"]["p95"]
            if state["dns_p95_max"] is None or p95 > state["dns_p95_max"]:
                state["dns_p95_max"] = p95

    def finish(self):
        """The aggregates, sorted by group key."""
        aggregates = []
        for key in sorted(self._groups):
            state = self._groups[key]
            aggregate = dict(zip(_GROUP_FIELDS, key, strict=True))
            aggregate["cells"] = state["cells"]
            aggregate["seeds"] = sorted(state["seeds"])
            for name in _SUM_FIELDS:
                aggregate[name] = state[name]
            aggregate["bytes_conserved"] = state["bytes_conserved"]
            aggregate["access_util_peak"] = round(state["access_util_peak"], 6)
            aggregate["peak_concurrent_flows"] = state["peak_concurrent_flows"]
            aggregate["cache_hit_ratio_mean"] = _exact_mean(
                state["hit_ratios"], 6)
            aggregate["setup_p95_mean"] = _exact_mean(state["setup_p95s"], 9)
            aggregate["dns_p95_max"] = (None if state["dns_p95_max"] is None
                                        else round(state["dns_p95_max"], 9))
            aggregates.append(aggregate)
        return aggregates


def aggregate_cells(results):
    """Seed-averaged aggregates per (cp, sites, zipf, size_dist, fail).

    A convenience wrapper folding any iterable — including a one-shot
    generator over the JSONL artifact — through :class:`AggregateFold`;
    the full cell list is never materialised.
    """
    fold = AggregateFold()
    for result in results:
        fold.add(result)
    return fold.finish()


def _exact_mean(values, digits):
    """Order-independent mean: fsum is exact, so shuffling can't move it."""
    if not values:
        return None
    return round(math.fsum(values) / len(values), digits)


# --------------------------------------------------------------------- #
# Streaming artifact + sweep driver
# --------------------------------------------------------------------- #

def iter_jsonl(path):
    """Yield result dicts from a per-cell JSONL artifact, one at a time.

    The per-line ``world`` tag (cache outcome, scheduling-dependent) is
    stripped so the yielded results are exactly what the deterministic
    payload carries.  This is the memory-flat access path for re-reading
    an artifact after the fact: :func:`aggregate_cells` and
    :func:`write_csv_stream` fold over this generator without ever
    materialising the full cell list.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            entry.pop("world", None)
            yield entry


def read_jsonl(path):
    """Parse a per-cell JSONL artifact back into a list of result dicts."""
    return list(iter_jsonl(path))


def run_sweep(grid, workers=1, json_path=None, csv_path=None, jsonl_path=None,
              max_worlds=DEFAULT_MAX_WORLDS, include_cells=True,
              snapshot_dir=None):
    """Expand *grid*, run every cell, aggregate, and write artifacts.

    Fan-out runs (``workers>1``) pre-build every distinct world exactly
    once into a shared :class:`~repro.experiments.worldbuild.SnapshotStore`
    (serially in the parent on ``fork`` platforms, via a short-lived
    build pool elsewhere — see :func:`prebuild_worlds`), then dispatch
    cells individually — workers restore worlds from the shared store
    (fork-inherited in memory, or file-backed) instead of each building
    their own.  The store holds one world (or blob) per distinct world
    key for the duration of the run phase, so parent memory scales with
    the number of distinct worlds, not with cells; it is released before
    aggregation.  *snapshot_dir* persists the blobs: a second sweep
    pointed at the same directory performs zero builds.  On platforms
    whose multiprocessing start method is not ``fork``, a temporary
    directory stands in when *snapshot_dir* is not given (workers cannot
    inherit parent memory there).

    Cell results stream to *jsonl_path* as they complete (a temporary file
    is used — and removed — when no path is given) while aggregation and
    CSV writing fold over the same live stream in one pass:
    :class:`AggregateFold` is order-independent and
    :class:`CsvStreamWriter` reorders by index with a small heap, so
    neither depends on completion order or worker count — and neither
    holds the full cell list.

    With ``include_cells=True`` (the default) the returned payload also
    carries the index-sorted per-cell results (one JSONL read-back), which
    is what lands in ``json_path``.  ``include_cells=False`` (the CLI's
    ``--no-json``) keeps the whole run memory-flat for giant grids: the
    payload then carries only the grid, aggregates and the
    non-deterministic ``world_cache`` summary (excluded from
    :func:`payload_digest`).
    """
    if json_path is not None and not include_cells:
        raise ValueError("json_path requires include_cells=True "
                         "(the JSON payload embeds the per-cell results)")
    cells = expand_grid(grid)
    cache_stats = WorldCacheStats()
    store = None
    store_dir = snapshot_dir
    temp_store_dir = None
    stream_path = None
    fold = AggregateFold()
    csv_writer = None
    try:
        if workers > 1 or snapshot_dir is not None:
            fork = multiprocessing.get_start_method() == "fork"
            if store_dir is None and workers > 1 and not fork:
                temp_store_dir = tempfile.mkdtemp(prefix="repro-worlds-")
                store_dir = temp_store_dir
            store = SnapshotStore(store_dir)
            # Whenever this process's worlds are reachable by the run
            # workers (fork inheritance, or the workers ARE this process),
            # prebuild *live*: restores become in-place checkpoint resets
            # — the cheapest restore there is — while a snapshot_dir still
            # gets its persistent blobs.  Only spawn fan-out is blob-only
            # (workers cannot inherit parent memory and must deserialize
            # from disk).
            prebuild_worlds(store, cells, workers=workers,
                            live=(workers <= 1 or fork))
        if jsonl_path is None:
            handle = tempfile.NamedTemporaryFile(
                mode="w", suffix=".cells.jsonl", prefix="repro-sweep-",
                delete=False)
            stream_path = handle.name
        else:
            handle = open(jsonl_path, "w")
            stream_path = jsonl_path
        # Aggregation and CSV writing fold over the live results inside
        # the completion loop — the JSONL artifact is write-only here (the
        # fold is order-independent and the CSV writer reorders by index
        # itself), so the memory-flat path never re-parses what it just
        # serialised.
        with handle:
            if csv_path is not None:
                csv_writer = CsvStreamWriter(csv_path)
            streamed = 0
            for result, outcome in _iter_completed(cells, workers, max_worlds,
                                                   store=store,
                                                   snapshot_dir=store_dir):
                line = dict(result)
                line["world"] = outcome
                handle.write(json.dumps(line, sort_keys=True))
                handle.write("\n")
                handle.flush()
                cache_stats.count(outcome)
                streamed += 1
                fold.add(result)
                if csv_writer is not None:
                    csv_writer.add(result)
        # ``builds`` totals every world built anywhere: the store's
        # pre-build stage plus any worker-side fallback builds (an invalid
        # blob, or no store at all).  The nested ``store`` dict carries the
        # per-store totals, making "one build, N restores" observable.
        world_cache = cache_stats.as_dict()
        if store is not None:
            # Restores are tallied from per-cell outcomes (workers mutate
            # copy-on-write store copies, invisible here); the store dict
            # carries the parent-observable per-store totals.
            world_cache["builds"] += store.stats.builds
            world_cache["store"] = {
                "builds": store.stats.builds,
                "blob_hits": store.stats.hits,
                "invalidated": store.stats.invalidated,
                "worlds": len(store),
                "persistent": snapshot_dir is not None,
            }
            # The run phase is over: nothing restores from this store
            # again, so drop its worlds before aggregation materialises
            # the payload (parent memory then scales with aggregate
            # groups, not with distinct worlds).
            store.release_worlds()
        payload = {
            "schema": SCHEMA,
            "grid": grid.describe(),
            "num_cells": streamed,
            "aggregates": fold.finish(),
            "world_cache": world_cache,
        }
        if include_cells:
            # The payload embeds the per-cell results: the one read-back,
            # index-sorted (JSON round-trips numbers exactly, so this list
            # matches the live results byte-for-byte).
            payload["cells"] = sorted(iter_jsonl(stream_path),
                                      key=lambda r: r["index"])
    finally:
        if csv_writer is not None:
            csv_writer.close()
        if jsonl_path is None and stream_path is not None:
            os.unlink(stream_path)
        if temp_store_dir is not None:
            shutil.rmtree(temp_store_dir, ignore_errors=True)
    if json_path is not None:
        write_json(payload, json_path)
    return payload


#: Payload keys that may vary between runs (scheduling-dependent) and are
#: therefore excluded from determinism digests and JSON artifacts' digests.
NON_DETERMINISTIC_KEYS = ("world_cache",)


def payload_digest(payload):
    """Canonical JSON string of *payload* (determinism checks diff this).

    Scheduling-dependent bookkeeping (``world_cache``) is excluded: the
    digest covers exactly the simulation-derived content, which is
    byte-identical for any worker count.
    """
    digestable = {key: value for key, value in payload.items()
                  if key not in NON_DETERMINISTIC_KEYS}
    return json.dumps(digestable, sort_keys=True, separators=(",", ":"))


def write_json(payload, path):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Flat per-cell CSV columns (scalars only; nested summaries get p50/p95).
CSV_COLUMNS = ("index", "cell_id", "control_plane", "topology", "num_sites",
               "seed", "zipf_s", "size_dist", "pacing", "fail_fraction", "mode",
               "flows", "flows_failed", "packets_sent", "packets_delivered",
               "packets_lost", "first_packet_drops", "cache_hit_ratio",
               "cache_expirations", "resolutions_started",
               "resolutions_failed", "map_cache_trie_nodes",
               "map_cache_entries", "dns_p50", "dns_p95", "setup_p50",
               "setup_p95", "control_messages", "control_bytes",
               "bytes_offered", "bytes_delivered", "bytes_dropped",
               "bytes_in_flight", "bytes_conserved", "flow_bytes_budget",
               "flow_bytes_sent", "fluid_bytes", "peak_concurrent_flows",
               "access_util_peak", "sim_events")


def _csv_row(cell):
    """One cell result flattened to a CSV row (CSV_COLUMNS order)."""
    metrics = cell["metrics"]
    dns = metrics["dns_latency"] or {}
    setup = metrics["setup_latency"] or {}
    row = {
        **{key: cell[key] for key in
           ("index", "cell_id", "control_plane", "topology", "num_sites",
            "seed", "zipf_s", "size_dist", "pacing", "fail_fraction", "mode")},
        **{key: metrics[key] for key in
           ("flows", "flows_failed", "packets_sent",
            "packets_delivered", "packets_lost", "first_packet_drops",
            "cache_hit_ratio", "cache_expirations",
            "resolutions_started", "resolutions_failed",
            "map_cache_trie_nodes", "map_cache_entries",
            "control_messages", "control_bytes", "bytes_offered",
            "bytes_delivered", "bytes_dropped", "bytes_in_flight",
            "bytes_conserved", "flow_bytes_budget", "flow_bytes_sent",
            "fluid_bytes", "peak_concurrent_flows",
            "access_util_peak", "sim_events")},
        "dns_p50": dns.get("median", ""), "dns_p95": dns.get("p95", ""),
        "setup_p50": setup.get("median", ""),
        "setup_p95": setup.get("p95", ""),
    }
    return [row[column] for column in CSV_COLUMNS]


class CsvStreamWriter:
    """Per-cell CSV writer fed one result at a time, rows index-sorted.

    Rows are flattened and written as results arrive; out-of-order
    completions wait in a heap keyed on cell index and are flushed the
    moment the next expected index shows up, so the artifact is
    deterministic regardless of completion order.  An index-ordered feed
    (serial runs, the payload's sorted cells) writes with O(1) buffering;
    a fanned-out feed buffers the completion *skew* of flattened rows —
    typically a few world-groups' worth, though a worst-case schedule
    (the group holding index 0 finishing last) can buffer most rows.
    Either way only the ~30-column flattened rows are held, never the
    full per-cell result payloads.
    """

    def __init__(self, path):
        self._handle = open(path, "w", newline="")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(CSV_COLUMNS)
        self._pending = []
        self._next_index = 0

    def add(self, cell):
        heapq.heappush(self._pending, (cell["index"], _csv_row(cell)))
        while self._pending and self._pending[0][0] == self._next_index:
            self._writer.writerow(heapq.heappop(self._pending)[1])
            self._next_index += 1

    def close(self):
        # Index gaps (a partial stream) flush in sorted order at the end.
        while self._pending:
            self._writer.writerow(heapq.heappop(self._pending)[1])
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def write_csv_stream(results, path):
    """Write the per-cell CSV from *results* (any order), rows index-sorted."""
    with CsvStreamWriter(path) as writer:
        for cell in results:
            writer.add(cell)


def write_csv(payload, path):
    """Write the per-cell CSV from an assembled payload (compat wrapper)."""
    write_csv_stream(iter(payload["cells"]), path)


# --------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------- #

PRESETS = {
    # Tiny grid for smoke tests and CLI demos (seconds).
    "smoke": SweepGrid(
        name="smoke",
        control_planes=("pce", "alt"),
        site_counts=(3,),
        seeds=(1, 2),
        zipf_values=(1.0,),
        num_flows=12,
        arrival_rate=10.0,
    ),
    # Every control plane at moderate scale; cache-tail behaviour appears.
    "baselines": SweepGrid(
        name="baselines",
        control_planes=("pce", "alt", "cons", "nerd"),
        site_counts=(4, 8),
        seeds=(11, 12),
        zipf_values=(0.0, 1.2),
        num_flows=40,
        arrival_rate=20.0,
    ),
    # The ROADMAP's production-scale target: >=100 sites, Zipf-skewed
    # destinations, all four control planes, constant vs heavy-tailed flow
    # sizes (the pairs share worlds, exercising worker-side reuse).  TCP
    # mode with post-handshake data bursts, so the artifacts carry both
    # connection-setup latency percentiles and size-shaped data traffic.
    "scale": SweepGrid(
        name="scale",
        control_planes=("pce", "alt", "cons", "nerd"),
        site_counts=(8, 32, 120),
        seeds=(11, 12),
        zipf_values=(1.2,),
        size_dists=("constant", "pareto"),
        num_providers=8,
        num_flows=80,
        arrival_rate=40.0,
        mode="tcp",
        workload_overrides={"tcp_data_burst": True},
    ),
    # Size-aware traffic shaping: heavy-tailed flow sizes on rated access
    # links, constant vs shaped pacing sharing worlds cell-to-cell.  Shaped
    # cells burst mice back-to-back and pace elephants at 2 Mbit/s over
    # 10 Mbit/s access links, so queueing, per-flow byte conservation and
    # real link utilization all become visible in the artifacts.
    "shaped": SweepGrid(
        name="shaped",
        control_planes=("pce", "alt"),
        site_counts=(6,),
        seeds=(31, 32),
        zipf_values=(1.2,),
        size_dists=("pareto",),
        pacings=("constant", "shaped", "fluid"),
        num_flows=40,
        arrival_rate=20.0,
        packets_per_flow=6,
        scenario_overrides={"access_rate_bps": 10_000_000.0},
        workload_overrides={"pace_rate_bps": 2_000_000.0,
                            "payload_bytes": 1200},
    ),
    # The fluid tier's headline: one cell, a hundred thousand concurrent
    # bulk flows, interactive wall-clock.  Every flow goes fluid
    # (``fluid_threshold`` 1 with constant 2000-packet sizes), so the data
    # plane advances as one-second rate chunks: ~10 s of 2 Mbit/s per
    # flow, 12k arrivals/s for 10 s — peak concurrency well past 100k with
    # a dozen events per flow instead of thousands.  Access links stay
    # infinite-rate: this preset measures scale, not congestion (the
    # ``shaped`` preset covers rated-link contention).
    "megaflow": SweepGrid(
        name="megaflow",
        control_planes=("pce",),
        site_counts=(4,),
        seeds=(41,),
        zipf_values=(1.0,),
        size_dists=("constant",),
        pacings=("fluid",),
        num_flows=120_000,
        arrival_rate=12_000.0,
        packets_per_flow=2000,
        workload_overrides={"payload_bytes": 1200,
                            "pace_rate_bps": 2_000_000.0,
                            "fluid_threshold": 1.0,
                            "fluid_chunk_interval": 1.0,
                            "grace_period": 15.0},
    ),
    # Topology shape as an axis: the same mapping systems and workload on
    # the flat mesh vs tiered and CAIDA-skewed internets (hierarchical
    # routing, IXPs, multihomed stubs).  Sites and flows stay modest —
    # the point is cross-family comparison, not scale (the topology bench
    # gate covers 1k-4k-site builds).
    "tiered": SweepGrid(
        name="tiered",
        control_planes=("pce", "alt"),
        topologies=("flat", "tiered", "caida"),
        site_counts=(12,),
        seeds=(51, 52),
        zipf_values=(1.0,),
        num_flows=30,
        arrival_rate=15.0,
    ),
    # RLOC failure as a sweep axis: half the sites lose their primary
    # access link mid-workload; PCE runs with probing + backup locators so
    # failover happens, the reactive baseline blackholes (E9 at grid scale).
    "failover": SweepGrid(
        name="failover",
        control_planes=("pce", "alt"),
        site_counts=(6,),
        seeds=(21, 22),
        zipf_values=(1.0,),
        fail_fractions=(0.0, 0.5),
        fail_at=1.0,
        repair_at=3.0,
        num_flows=40,
        arrival_rate=15.0,
        packets_per_flow=6,
        scenario_overrides={"enable_probing": True, "probe_period": 0.3,
                            "probe_timeout": 0.15},
    ),
}
