"""Parameter sweeps: declarative scenario grids fanned out over processes.

The experiment modules (E1-E9) each run a handful of hand-picked worlds.
This module is the scaling counterpart: a :class:`SweepGrid` declares axes
(control plane x site count x seed x workload skew), :func:`expand_grid`
turns it into concrete :class:`SweepCell` objects — one
:class:`~repro.experiments.scenario.ScenarioConfig` /
:class:`~repro.experiments.workload.WorkloadConfig` pair per cell — and
:func:`run_sweep` fans the cells out across worker processes.

Determinism: each worker process builds its own
:class:`~repro.sim.Simulator` from the cell's seed, so a cell's metrics
depend only on its configs; results are ordered by cell index (not by
completion), so the aggregate artifact is byte-identical across runs and
across ``workers=1`` vs ``workers=N``.  Nothing wall-clock-dependent is
written into the JSON/CSV artifacts.

Sweep cells run with tracing disabled (``ScenarioConfig.tracing=False``):
metrics come from counters and flow records, and skipping per-packet trace
allocation is what makes the >=100-site cells cheap.

Usage::

    from repro.experiments.sweep import PRESETS, run_sweep
    outcome = run_sweep(PRESETS["scale"], workers=4,
                        json_path="sweep.json", csv_path="sweep.csv")

or from the command line: ``python -m repro sweep --preset scale --workers 4``.
"""

import csv
import json
import multiprocessing
from dataclasses import dataclass, field, fields

from repro.experiments.scenario import CONTROL_PLANES, ScenarioConfig, build_scenario
from repro.experiments.workload import (WorkloadConfig, classify_first_packet,
                                        run_workload)
from repro.metrics.stats import mean, percentile, summarize

#: Schema tag written into every JSON artifact.
SCHEMA = "repro.sweep/v1"


@dataclass(frozen=True)
class SweepGrid:
    """Declarative axes of a sweep plus shared scenario/workload knobs.

    The cross product ``control_planes x site_counts x zipf_values x seeds``
    defines the cells, in that nesting order.  ``scenario_overrides`` and
    ``workload_overrides`` apply to every cell (any
    :class:`ScenarioConfig` / :class:`WorkloadConfig` field).
    """

    name: str = "sweep"
    control_planes: tuple = ("pce", "alt")
    site_counts: tuple = (4,)
    seeds: tuple = (1,)
    zipf_values: tuple = (1.0,)
    num_providers: int = 4
    hosts_per_site: int = 2
    num_flows: int = 40
    arrival_rate: float = 20.0
    mode: str = "udp"
    packets_per_flow: int = 3
    mapping_ttl: float = 60.0
    scenario_overrides: dict = field(default_factory=dict)
    workload_overrides: dict = field(default_factory=dict)

    def describe(self):
        """JSON-ready description of the grid (stable field order)."""
        description = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            description[spec.name] = list(value) if isinstance(value, tuple) else value
        return description


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: everything a worker needs to run it."""

    index: int
    cell_id: str
    scenario: ScenarioConfig
    workload: WorkloadConfig


def expand_grid(grid):
    """The grid's cells, in deterministic axis-nesting order."""
    for control_plane in grid.control_planes:
        if control_plane not in CONTROL_PLANES:
            raise ValueError(f"unknown control plane {control_plane!r}")
    cells = []
    for control_plane in grid.control_planes:
        for num_sites in grid.site_counts:
            for zipf_s in grid.zipf_values:
                for seed in grid.seeds:
                    # Overrides win over axis-derived values (so a grid can
                    # e.g. force miss_policy or hosts_per_site per cell).
                    scenario_kwargs = dict(
                        control_plane=control_plane,
                        num_sites=num_sites,
                        num_providers=grid.num_providers,
                        hosts_per_site=grid.hosts_per_site,
                        seed=seed,
                        mapping_ttl=grid.mapping_ttl,
                        tracing=False)
                    scenario_kwargs.update(grid.scenario_overrides)
                    scenario = ScenarioConfig(**scenario_kwargs)
                    workload_kwargs = dict(
                        num_flows=grid.num_flows,
                        arrival_rate=grid.arrival_rate,
                        zipf_s=zipf_s,
                        mode=grid.mode,
                        packets_per_flow=grid.packets_per_flow)
                    workload_kwargs.update(grid.workload_overrides)
                    workload = WorkloadConfig(**workload_kwargs)
                    cell_id = (f"{control_plane}-sites{num_sites}"
                               f"-zipf{zipf_s:g}-seed{seed}")
                    cells.append(SweepCell(index=len(cells), cell_id=cell_id,
                                           scenario=scenario, workload=workload))
    return cells


# --------------------------------------------------------------------- #
# Per-cell execution
# --------------------------------------------------------------------- #

def run_cell(cell):
    """Build the cell's world, run its workload, and measure it.

    Returns a JSON-ready dict; everything in it is derived from the
    simulation alone (no wall-clock values), keeping sweep artifacts
    reproducible.
    """
    scenario = build_scenario(cell.scenario)
    records = run_workload(scenario, cell.workload)

    cache_hits = cache_misses = cache_expirations = 0
    resolutions_started = resolutions_failed = 0
    no_rloc_drops = encapsulated = decapsulated = 0
    fib_nodes = fib_entries = 0
    for xtr_list in scenario.xtrs_by_site.values():
        for xtr in xtr_list:
            cache_hits += xtr.map_cache.hits
            cache_misses += xtr.map_cache.misses
            cache_expirations += xtr.map_cache.expirations
            resolutions_started += xtr.resolutions_started
            resolutions_failed += xtr.resolutions_failed
            no_rloc_drops += xtr.no_rloc_drops
            encapsulated += xtr.encapsulated
            decapsulated += xtr.decapsulated
            fib_nodes += xtr.map_cache.node_count()
            fib_entries += len(xtr.map_cache)
    lookups = cache_hits + cache_misses

    fates = {}
    for record in records:
        fate = classify_first_packet(record)
        fates[fate] = fates.get(fate, 0) + 1

    completed = [r for r in records if not r.failed]
    dns_latencies = [r.dns_elapsed for r in records if r.dns_elapsed is not None]
    setup_latencies = [r.setup_elapsed for r in completed
                       if r.setup_elapsed is not None]

    if scenario.mapping_system is not None:
        control_messages = scenario.mapping_system.stats.messages
        control_bytes = scenario.mapping_system.stats.bytes
    elif scenario.control_plane is not None:
        control_messages = scenario.control_plane.total_control_messages()
        control_bytes = scenario.control_plane.total_push_bytes()
    else:
        control_messages = control_bytes = 0

    metrics = {
        "flows": len(records),
        "flows_failed": sum(1 for r in records if r.failed),
        "packets_sent": sum(r.packets_sent for r in records),
        "packets_delivered": sum(r.packets_delivered for r in records),
        "packets_lost": sum(r.packets_lost for r in completed),
        "first_packet_fates": dict(sorted(fates.items())),
        "first_packet_drops": scenario.total_first_packet_drops(),
        "cache_hit_ratio": round(cache_hits / lookups, 6) if lookups else None,
        "cache_expirations": cache_expirations,
        "resolutions_started": resolutions_started,
        "resolutions_failed": resolutions_failed,
        "no_rloc_drops": no_rloc_drops,
        "encapsulated": encapsulated,
        "decapsulated": decapsulated,
        "map_cache_trie_nodes": fib_nodes,
        "map_cache_entries": fib_entries,
        "dns_latency": _round_summary(summarize(dns_latencies))
        if dns_latencies else None,
        "setup_latency": _round_summary(summarize(setup_latencies))
        if setup_latencies else None,
        "control_messages": control_messages,
        "control_bytes": control_bytes,
        "sim_events": scenario.sim.processed_events,
        "sim_end_time": round(scenario.sim.now, 9),
    }
    return {
        "index": cell.index,
        "cell_id": cell.cell_id,
        "control_plane": cell.scenario.control_plane,
        "num_sites": cell.scenario.num_sites,
        "seed": cell.scenario.seed,
        "zipf_s": cell.workload.zipf_s,
        "mode": cell.workload.mode,
        "metrics": metrics,
    }


def _round_summary(summary):
    return {key: (round(value, 9) if isinstance(value, float) else value)
            for key, value in summary.items()}


# --------------------------------------------------------------------- #
# Fan-out and aggregation
# --------------------------------------------------------------------- #

def _map_cells(cells, workers):
    if workers <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    context = multiprocessing.get_context()
    processes = min(workers, len(cells))
    with context.Pool(processes=processes) as pool:
        # pool.map preserves submission order, so results are index-ordered
        # regardless of which worker finishes first.
        return pool.map(run_cell, cells, chunksize=1)


def aggregate_cells(results):
    """Seed-averaged aggregates per (control_plane, num_sites, zipf_s)."""
    groups = {}
    for result in results:
        key = (result["control_plane"], result["num_sites"], result["zipf_s"])
        groups.setdefault(key, []).append(result)
    aggregates = []
    for key in sorted(groups, key=lambda k: (k[0], k[1], k[2])):
        members = groups[key]
        control_plane, num_sites, zipf_s = key
        hit_ratios = [m["metrics"]["cache_hit_ratio"] for m in members
                      if m["metrics"]["cache_hit_ratio"] is not None]
        setup_p95s = [m["metrics"]["setup_latency"]["p95"] for m in members
                      if m["metrics"]["setup_latency"] is not None]
        aggregate = {
            "control_plane": control_plane,
            "num_sites": num_sites,
            "zipf_s": zipf_s,
            "cells": len(members),
            "seeds": sorted(m["seed"] for m in members),
            "flows": sum(m["metrics"]["flows"] for m in members),
            "packets_lost": sum(m["metrics"]["packets_lost"] for m in members),
            "first_packet_drops": sum(m["metrics"]["first_packet_drops"]
                                      for m in members),
            "cache_hit_ratio_mean": round(mean(hit_ratios), 6)
            if hit_ratios else None,
            "setup_p95_mean": round(mean(setup_p95s), 9) if setup_p95s else None,
            "dns_p95_max": _max_dns_p95(members),
            "control_messages": sum(m["metrics"]["control_messages"]
                                    for m in members),
            "sim_events": sum(m["metrics"]["sim_events"] for m in members),
        }
        aggregates.append(aggregate)
    return aggregates


def _max_dns_p95(members):
    values = [m["metrics"]["dns_latency"]["p95"] for m in members
              if m["metrics"]["dns_latency"] is not None]
    return round(max(values), 9) if values else None


def run_sweep(grid, workers=1, json_path=None, csv_path=None):
    """Expand *grid*, run every cell, aggregate, and write artifacts.

    Returns the full payload dict (also what lands in ``json_path``).
    """
    cells = expand_grid(grid)
    results = _map_cells(cells, workers)
    payload = {
        "schema": SCHEMA,
        "grid": grid.describe(),
        "num_cells": len(results),
        "cells": results,
        "aggregates": aggregate_cells(results),
    }
    if json_path is not None:
        write_json(payload, json_path)
    if csv_path is not None:
        write_csv(payload, csv_path)
    return payload


def payload_digest(payload):
    """Canonical JSON string of *payload* (determinism checks diff this)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_json(payload, path):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Flat per-cell CSV columns (scalars only; nested summaries get p50/p95).
CSV_COLUMNS = ("index", "cell_id", "control_plane", "num_sites", "seed",
               "zipf_s", "mode", "flows", "flows_failed", "packets_sent",
               "packets_delivered", "packets_lost", "first_packet_drops",
               "cache_hit_ratio", "cache_expirations", "resolutions_started",
               "resolutions_failed", "map_cache_trie_nodes",
               "map_cache_entries", "dns_p50", "dns_p95", "setup_p50",
               "setup_p95", "control_messages", "control_bytes", "sim_events")


def write_csv(payload, path):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for cell in payload["cells"]:
            metrics = cell["metrics"]
            dns = metrics["dns_latency"] or {}
            setup = metrics["setup_latency"] or {}
            row = {
                **{key: cell[key] for key in
                   ("index", "cell_id", "control_plane", "num_sites", "seed",
                    "zipf_s", "mode")},
                **{key: metrics[key] for key in
                   ("flows", "flows_failed", "packets_sent",
                    "packets_delivered", "packets_lost", "first_packet_drops",
                    "cache_hit_ratio", "cache_expirations",
                    "resolutions_started", "resolutions_failed",
                    "map_cache_trie_nodes", "map_cache_entries",
                    "control_messages", "control_bytes", "sim_events")},
                "dns_p50": dns.get("median", ""), "dns_p95": dns.get("p95", ""),
                "setup_p50": setup.get("median", ""),
                "setup_p95": setup.get("p95", ""),
            }
            writer.writerow([row[column] for column in CSV_COLUMNS])


# --------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------- #

PRESETS = {
    # Tiny grid for smoke tests and CLI demos (seconds).
    "smoke": SweepGrid(
        name="smoke",
        control_planes=("pce", "alt"),
        site_counts=(3,),
        seeds=(1, 2),
        zipf_values=(1.0,),
        num_flows=12,
        arrival_rate=10.0,
    ),
    # Every control plane at moderate scale; cache-tail behaviour appears.
    "baselines": SweepGrid(
        name="baselines",
        control_planes=("pce", "alt", "cons", "nerd"),
        site_counts=(4, 8),
        seeds=(11, 12),
        zipf_values=(0.0, 1.2),
        num_flows=40,
        arrival_rate=20.0,
    ),
    # The ROADMAP's production-scale target: >=100 sites, Zipf-skewed
    # destinations, all four control planes, 24 cells.  TCP mode so the
    # artifacts carry connection-setup latency percentiles.
    "scale": SweepGrid(
        name="scale",
        control_planes=("pce", "alt", "cons", "nerd"),
        site_counts=(8, 32, 120),
        seeds=(11, 12),
        zipf_values=(1.2,),
        num_providers=8,
        num_flows=80,
        arrival_rate=40.0,
        mode="tcp",
    ),
}
