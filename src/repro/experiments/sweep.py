"""Parameter sweeps: declarative scenario grids fanned out over processes.

The experiment modules (E1-E9) each run a handful of hand-picked worlds.
This module is the scaling counterpart: a :class:`SweepGrid` declares axes
(control plane x site count x seed x workload skew x flow-size distribution
x RLOC-failure fraction), :func:`expand_grid` turns it into concrete
:class:`SweepCell` objects — one
:class:`~repro.experiments.scenario.ScenarioConfig` /
:class:`~repro.experiments.workload.WorkloadConfig` pair per cell — and
:func:`run_sweep` fans the cells out across worker processes.

Worlds are built through :mod:`repro.experiments.worldbuild`: the worker
pool is *persistent* and every worker keeps a keyed
:class:`~repro.experiments.worldbuild.WorldBuilder` cache, so cells sharing
a scenario config (same control plane, site count, seed, ...) reuse one
built world — topology, routing plan, DNS, control-plane deployment — and
only the mutable state (caches, FIB dynamic entries, tracer, RNG streams)
is reset between cells.  Cells are dispatched to workers *grouped by world
key* so reuse actually happens.  Cache hit/miss counts surface in the
sweep outcome under ``world_cache`` (``bypasses`` is an assertion-only
zero: periodic background processes are checkpointable, so every world is
cacheable).

Cell results stream to a JSONL artifact as they complete (one JSON object
per line, in completion order, each tagged with its world-cache outcome)
instead of accumulating a single in-memory payload; aggregation is an
incremental, order-independent fold over the live stream
(:class:`AggregateFold`) and CSV writing streams row-by-row
(:class:`CsvStreamWriter`), so >10k-cell grids aggregate holding only
per-group scalars and per-seed samples — never the per-cell result
payloads — while aggregates and artifacts stay byte-identical for
``workers=1`` vs ``workers=N``.  ``include_cells=False`` (CLI
``--no-json``) skips materialising the per-cell list entirely.

Determinism: each cell's world is either freshly built or restored to the
post-build checkpoint, so a cell's metrics depend only on its configs —
never on which cells ran before it in the same worker.  Nothing
wall-clock-dependent or scheduling-dependent is written into the JSON/CSV
artifacts (the per-cell world-cache outcome lives only in the JSONL lines
and the non-digested ``world_cache`` summary).

Sweep cells run with tracing disabled (``ScenarioConfig.tracing=False``):
metrics come from counters and flow records, and skipping per-packet trace
allocation is what makes the >=100-site cells cheap.

Usage::

    from repro.experiments.sweep import PRESETS, run_sweep
    outcome = run_sweep(PRESETS["scale"], workers=4,
                        json_path="sweep.json", csv_path="sweep.csv",
                        jsonl_path="sweep.cells.jsonl")

or from the command line: ``python -m repro sweep --preset scale --workers 4``.
"""

import csv
import heapq
import json
import math
import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field, fields

from repro.experiments.e9_failover import schedule_access_failure
from repro.experiments.scenario import CONTROL_PLANES, ScenarioConfig
from repro.experiments.workload import (WorkloadConfig, classify_first_packet,
                                        run_workload)
from repro.experiments.worldbuild import (WorldBuilder, WorldCacheStats,
                                          build_world, world_key)
from repro.metrics.stats import summarize
from repro.traffic.popularity import SIZE_DISTRIBUTIONS

#: Schema tag written into every JSON artifact.  v3: ``sim_events`` counts
#: periodic background ticks, aggregate means are exactly-rounded (fsum),
#: and memory-flat payloads (``--no-json``) omit the ``cells`` key.
SCHEMA = "repro.sweep/v3"

#: Default per-worker world-cache capacity.
DEFAULT_MAX_WORLDS = 4


@dataclass(frozen=True)
class SweepGrid:
    """Declarative axes of a sweep plus shared scenario/workload knobs.

    The cross product ``control_planes x site_counts x zipf_values x
    size_dists x fail_fractions x seeds`` defines the cells, in that
    nesting order.  ``scenario_overrides`` and ``workload_overrides`` apply
    to every cell (any :class:`ScenarioConfig` / :class:`WorkloadConfig`
    field).

    ``size_dists`` selects per-cell flow-size distributions (heavy-tailed
    bounded Pareto / lognormal around ``packets_per_flow``; see
    :class:`~repro.traffic.popularity.FlowSizeSampler`).  ``fail_fractions``
    injects the E9 RLOC-failure machinery as an axis: a fraction of sites
    lose their primary access link at ``fail_at`` and regain it at
    ``repair_at`` (simulated seconds after the workload starts).
    """

    name: str = "sweep"
    control_planes: tuple = ("pce", "alt")
    site_counts: tuple = (4,)
    seeds: tuple = (1,)
    zipf_values: tuple = (1.0,)
    size_dists: tuple = ("constant",)
    fail_fractions: tuple = (0.0,)
    fail_at: float = 1.0
    repair_at: float = 3.0
    num_providers: int = 4
    hosts_per_site: int = 2
    num_flows: int = 40
    arrival_rate: float = 20.0
    mode: str = "udp"
    packets_per_flow: int = 3
    mapping_ttl: float = 60.0
    scenario_overrides: dict = field(default_factory=dict)
    workload_overrides: dict = field(default_factory=dict)

    def describe(self):
        """JSON-ready description of the grid (stable field order)."""
        description = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            description[spec.name] = list(value) if isinstance(value, tuple) else value
        return description


@dataclass(frozen=True)
class FailureConfig:
    """RLOC failure injected into a cell (reuses the E9 machinery)."""

    fraction: float
    fail_at: float = 1.0
    repair_at: float = 3.0


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: everything a worker needs to run it."""

    index: int
    cell_id: str
    scenario: ScenarioConfig
    workload: WorkloadConfig
    failure: FailureConfig = None


def expand_grid(grid):
    """The grid's cells, in deterministic axis-nesting order."""
    for control_plane in grid.control_planes:
        if control_plane not in CONTROL_PLANES:
            raise ValueError(f"unknown control plane {control_plane!r}")
    for size_dist in grid.size_dists:
        if size_dist not in SIZE_DISTRIBUTIONS:
            raise ValueError(f"unknown size distribution {size_dist!r}")
    for fraction in grid.fail_fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fail fraction {fraction!r} outside [0, 1]")
    cells = []
    for control_plane in grid.control_planes:
        for num_sites in grid.site_counts:
            for zipf_s in grid.zipf_values:
                for size_dist in grid.size_dists:
                    for fraction in grid.fail_fractions:
                        for seed in grid.seeds:
                            cells.append(_make_cell(
                                grid, len(cells), control_plane, num_sites,
                                zipf_s, size_dist, fraction, seed))
    return cells


def _make_cell(grid, index, control_plane, num_sites, zipf_s, size_dist,
               fraction, seed):
    # Overrides win over axis-derived values (so a grid can e.g. force
    # miss_policy or hosts_per_site per cell).
    scenario_kwargs = dict(
        control_plane=control_plane,
        num_sites=num_sites,
        num_providers=grid.num_providers,
        hosts_per_site=grid.hosts_per_site,
        seed=seed,
        mapping_ttl=grid.mapping_ttl,
        tracing=False)
    scenario_kwargs.update(grid.scenario_overrides)
    scenario = ScenarioConfig(**scenario_kwargs)
    workload_kwargs = dict(
        num_flows=grid.num_flows,
        arrival_rate=grid.arrival_rate,
        zipf_s=zipf_s,
        mode=grid.mode,
        size_dist=size_dist,
        packets_per_flow=grid.packets_per_flow)
    workload_kwargs.update(grid.workload_overrides)
    workload = WorkloadConfig(**workload_kwargs)
    failure = None
    if fraction > 0.0:
        failure = FailureConfig(fraction=fraction, fail_at=grid.fail_at,
                                repair_at=grid.repair_at)
    cell_id = f"{control_plane}-sites{num_sites}-zipf{zipf_s:g}"
    if size_dist != "constant":
        cell_id += f"-size{size_dist}"
    if fraction > 0.0:
        cell_id += f"-fail{fraction:g}"
    cell_id += f"-seed{seed}"
    return SweepCell(index=index, cell_id=cell_id, scenario=scenario,
                     workload=workload, failure=failure)


# --------------------------------------------------------------------- #
# Per-cell execution
# --------------------------------------------------------------------- #

def _apply_failures(scenario, failure):
    """Schedule the cell's RLOC failures (E9 machinery as a sweep axis).

    Site choice draws from the dedicated ``failover`` RNG stream, so it is
    a pure function of the scenario seed — independent of the workload
    stream and of world reuse (restores drop the stream, and it re-derives
    identically).
    """
    if failure is None or failure.fraction <= 0.0:
        return
    sim = scenario.sim
    sites = scenario.topology.sites
    count = min(len(sites), max(1, round(failure.fraction * len(sites))))
    rng = sim.rng.stream("failover")
    for index in sorted(rng.sample(range(len(sites)), count)):
        schedule_access_failure(sim, sites[index], 0,
                                sim.now + failure.fail_at,
                                sim.now + failure.repair_at)


def run_cell(cell, builder=None):
    """Build (or reuse) the cell's world, run its workload, and measure it.

    With a :class:`~repro.experiments.worldbuild.WorldBuilder`, the world
    is served from the builder's keyed cache; without one, it is built
    fresh through the same worldbuild path.  Returns a JSON-ready dict;
    everything in it is derived from the simulation alone (no wall-clock
    values, no cache outcomes), keeping sweep artifacts reproducible.
    """
    if builder is None:
        scenario = build_world(cell.scenario)
    else:
        scenario = builder.scenario_for(cell.scenario)
    _apply_failures(scenario, cell.failure)
    records = run_workload(scenario, cell.workload)

    cache_hits = cache_misses = cache_expirations = 0
    resolutions_started = resolutions_failed = 0
    no_rloc_drops = encapsulated = decapsulated = 0
    fib_nodes = fib_entries = 0
    for xtr_list in scenario.xtrs_by_site.values():
        for xtr in xtr_list:
            cache_hits += xtr.map_cache.hits
            cache_misses += xtr.map_cache.misses
            cache_expirations += xtr.map_cache.expirations
            resolutions_started += xtr.resolutions_started
            resolutions_failed += xtr.resolutions_failed
            no_rloc_drops += xtr.no_rloc_drops
            encapsulated += xtr.encapsulated
            decapsulated += xtr.decapsulated
            fib_nodes += xtr.map_cache.node_count()
            fib_entries += len(xtr.map_cache)
    lookups = cache_hits + cache_misses

    fates = {}
    for record in records:
        fate = classify_first_packet(record)
        fates[fate] = fates.get(fate, 0) + 1

    completed = [r for r in records if not r.failed]
    dns_latencies = [r.dns_elapsed for r in records if r.dns_elapsed is not None]
    setup_latencies = [r.setup_elapsed for r in completed
                       if r.setup_elapsed is not None]

    if scenario.mapping_system is not None:
        control_messages = scenario.mapping_system.stats.messages
        control_bytes = scenario.mapping_system.stats.bytes
    elif scenario.control_plane is not None:
        control_messages = scenario.control_plane.total_control_messages()
        control_bytes = scenario.control_plane.total_push_bytes()
    else:
        control_messages = control_bytes = 0

    metrics = {
        "flows": len(records),
        "flows_failed": sum(1 for r in records if r.failed),
        "packets_sent": sum(r.packets_sent for r in records),
        "packets_delivered": sum(r.packets_delivered for r in records),
        "packets_lost": sum(r.packets_lost for r in completed),
        "first_packet_fates": dict(sorted(fates.items())),
        "first_packet_drops": scenario.total_first_packet_drops(),
        "cache_hit_ratio": round(cache_hits / lookups, 6) if lookups else None,
        "cache_expirations": cache_expirations,
        "resolutions_started": resolutions_started,
        "resolutions_failed": resolutions_failed,
        "no_rloc_drops": no_rloc_drops,
        "encapsulated": encapsulated,
        "decapsulated": decapsulated,
        "map_cache_trie_nodes": fib_nodes,
        "map_cache_entries": fib_entries,
        "dns_latency": _round_summary(summarize(dns_latencies))
        if dns_latencies else None,
        "setup_latency": _round_summary(summarize(setup_latencies))
        if setup_latencies else None,
        "control_messages": control_messages,
        "control_bytes": control_bytes,
        "sim_events": scenario.sim.processed_events,
        "sim_end_time": round(scenario.sim.now, 9),
    }
    return {
        "index": cell.index,
        "cell_id": cell.cell_id,
        "control_plane": cell.scenario.control_plane,
        "num_sites": cell.scenario.num_sites,
        "seed": cell.scenario.seed,
        "zipf_s": cell.workload.zipf_s,
        "size_dist": cell.workload.size_dist,
        "fail_fraction": cell.failure.fraction if cell.failure else 0.0,
        "mode": cell.workload.mode,
        "metrics": metrics,
    }


def _round_summary(summary):
    return {key: (round(value, 9) if isinstance(value, float) else value)
            for key, value in summary.items()}


# --------------------------------------------------------------------- #
# Fan-out: persistent workers with per-worker world caches
# --------------------------------------------------------------------- #

def group_cells_by_world(cells, workers=1):
    """Cells grouped by world key, groups in first-appearance order.

    A group's cells share one built world; dispatching whole groups to
    workers is what lets the per-worker
    :class:`~repro.experiments.worldbuild.WorldBuilder` reuse it.  When
    fewer groups than *workers* exist, the largest groups are split so the
    pool stays busy — each split costs one extra world build on whichever
    worker receives it, a good trade once workload time dominates.
    """
    grouped = {}
    for cell in cells:
        grouped.setdefault(world_key(cell.scenario), []).append(cell)
    groups = list(grouped.values())
    while len(groups) < workers:
        largest = max(groups, key=len)
        if len(largest) < 2:
            break
        half = len(largest) // 2
        groups[groups.index(largest)] = largest[:half]
        groups.append(largest[half:])
    return groups


#: Per-process world cache, created by the pool initializer.
_WORKER_BUILDER = None


def _init_worker(max_worlds):
    global _WORKER_BUILDER
    _WORKER_BUILDER = WorldBuilder(max_worlds=max_worlds)


def _run_cell_group(cells):
    """Worker entry point: run one world-sharing group of cells in order.

    Returns ``[(result, world_cache_outcome), ...]``.
    """
    builder = _WORKER_BUILDER
    if builder is None:  # direct invocation outside a pool
        builder = WorldBuilder(max_worlds=1)
    return [(run_cell(cell, builder=builder), builder.last_outcome)
            for cell in cells]


def _iter_completed(cells, workers, max_worlds):
    """Yield ``(result, outcome)`` per cell as cells complete.

    ``workers<=1`` runs everything inline with one builder; otherwise a
    persistent process pool is used, each worker holding its own world
    cache for the lifetime of the sweep.  Completion order is arbitrary
    under fan-out — consumers must not rely on it (the aggregation path
    reorders by cell index).
    """
    groups = group_cells_by_world(cells, workers=workers)
    if workers <= 1 or len(cells) <= 1:
        builder = WorldBuilder(max_worlds=max_worlds)
        for group in groups:
            for cell in group:
                yield run_cell(cell, builder=builder), builder.last_outcome
        return
    context = multiprocessing.get_context()
    processes = min(workers, len(groups))
    with context.Pool(processes=processes, initializer=_init_worker,
                      initargs=(max_worlds,)) as pool:
        for group_results in pool.imap_unordered(_run_cell_group, groups,
                                                 chunksize=1):
            for result, outcome in group_results:
                yield result, outcome


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #

#: Result fields that identify one aggregate group (everything but the seed).
_GROUP_FIELDS = ("control_plane", "num_sites", "zipf_s", "size_dist",
                 "fail_fraction")

#: Integer counters summed straight off each cell's metrics dict.
_SUM_FIELDS = ("flows", "packets_lost", "first_packet_drops",
               "control_messages", "sim_events")


class AggregateFold:
    """Incremental seed-averaging fold, one :meth:`add` per cell result.

    Per-group state is a handful of integer sums, the seed list, and the
    per-seed float samples the exact means need — so peak memory scales
    with the number of aggregate groups times the seeds axis, never with
    the per-cell result payloads (metrics dicts, fate maps, latency
    summaries), which are released as soon as :meth:`add` returns.

    Float means are computed with :func:`math.fsum` (exactly-rounded), so
    the output is independent of insertion order — folding a
    completion-order stream yields byte-identical aggregates to folding an
    index-sorted list, which is what keeps ``--workers 1`` vs ``N``
    digests equal.
    """

    def __init__(self):
        self._groups = {}

    def add(self, result):
        key = tuple(result[field] for field in _GROUP_FIELDS)
        state = self._groups.get(key)
        if state is None:
            state = self._groups[key] = {
                "cells": 0, "seeds": [], "hit_ratios": [], "setup_p95s": [],
                "dns_p95_max": None,
                **{name: 0 for name in _SUM_FIELDS},
            }
        metrics = result["metrics"]
        state["cells"] += 1
        state["seeds"].append(result["seed"])
        for name in _SUM_FIELDS:
            state[name] += metrics[name]
        if metrics["cache_hit_ratio"] is not None:
            state["hit_ratios"].append(metrics["cache_hit_ratio"])
        if metrics["setup_latency"] is not None:
            state["setup_p95s"].append(metrics["setup_latency"]["p95"])
        if metrics["dns_latency"] is not None:
            p95 = metrics["dns_latency"]["p95"]
            if state["dns_p95_max"] is None or p95 > state["dns_p95_max"]:
                state["dns_p95_max"] = p95

    def finish(self):
        """The aggregates, sorted by group key."""
        aggregates = []
        for key in sorted(self._groups):
            state = self._groups[key]
            aggregate = dict(zip(_GROUP_FIELDS, key))
            aggregate["cells"] = state["cells"]
            aggregate["seeds"] = sorted(state["seeds"])
            for name in _SUM_FIELDS:
                aggregate[name] = state[name]
            aggregate["cache_hit_ratio_mean"] = _exact_mean(
                state["hit_ratios"], 6)
            aggregate["setup_p95_mean"] = _exact_mean(state["setup_p95s"], 9)
            aggregate["dns_p95_max"] = (None if state["dns_p95_max"] is None
                                        else round(state["dns_p95_max"], 9))
            aggregates.append(aggregate)
        return aggregates


def aggregate_cells(results):
    """Seed-averaged aggregates per (cp, sites, zipf, size_dist, fail).

    A convenience wrapper folding any iterable — including a one-shot
    generator over the JSONL artifact — through :class:`AggregateFold`;
    the full cell list is never materialised.
    """
    fold = AggregateFold()
    for result in results:
        fold.add(result)
    return fold.finish()


def _exact_mean(values, digits):
    """Order-independent mean: fsum is exact, so shuffling can't move it."""
    if not values:
        return None
    return round(math.fsum(values) / len(values), digits)


# --------------------------------------------------------------------- #
# Streaming artifact + sweep driver
# --------------------------------------------------------------------- #

def iter_jsonl(path):
    """Yield result dicts from a per-cell JSONL artifact, one at a time.

    The per-line ``world`` tag (cache outcome, scheduling-dependent) is
    stripped so the yielded results are exactly what the deterministic
    payload carries.  This is the memory-flat access path for re-reading
    an artifact after the fact: :func:`aggregate_cells` and
    :func:`write_csv_stream` fold over this generator without ever
    materialising the full cell list.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            entry.pop("world", None)
            yield entry


def read_jsonl(path):
    """Parse a per-cell JSONL artifact back into a list of result dicts."""
    return list(iter_jsonl(path))


def run_sweep(grid, workers=1, json_path=None, csv_path=None, jsonl_path=None,
              max_worlds=DEFAULT_MAX_WORLDS, include_cells=True):
    """Expand *grid*, run every cell, aggregate, and write artifacts.

    Cell results stream to *jsonl_path* as they complete (a temporary file
    is used — and removed — when no path is given) while aggregation and
    CSV writing fold over the same live stream in one pass:
    :class:`AggregateFold` is order-independent and
    :class:`CsvStreamWriter` reorders by index with a small heap, so
    neither depends on completion order or worker count — and neither
    holds the full cell list.

    With ``include_cells=True`` (the default) the returned payload also
    carries the index-sorted per-cell results (one JSONL read-back), which
    is what lands in ``json_path``.  ``include_cells=False`` (the CLI's
    ``--no-json``) keeps the whole run memory-flat for giant grids: the
    payload then carries only the grid, aggregates and the
    non-deterministic ``world_cache`` summary (excluded from
    :func:`payload_digest`).
    """
    if json_path is not None and not include_cells:
        raise ValueError("json_path requires include_cells=True "
                         "(the JSON payload embeds the per-cell results)")
    cells = expand_grid(grid)
    cache_stats = WorldCacheStats()
    stream_path = jsonl_path
    if stream_path is None:
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".cells.jsonl", prefix="repro-sweep-",
            delete=False)
        stream_path = handle.name
    else:
        handle = open(stream_path, "w")
    # Aggregation and CSV writing fold over the live results inside the
    # completion loop — the JSONL artifact is write-only here (the fold is
    # order-independent and the CSV writer reorders by index itself), so
    # the memory-flat path never re-parses what it just serialised.
    fold = AggregateFold()
    csv_writer = None
    try:
        with handle:
            if csv_path is not None:
                csv_writer = CsvStreamWriter(csv_path)
            streamed = 0
            for result, outcome in _iter_completed(cells, workers, max_worlds):
                line = dict(result)
                line["world"] = outcome
                handle.write(json.dumps(line, sort_keys=True))
                handle.write("\n")
                handle.flush()
                cache_stats.count(outcome)
                streamed += 1
                fold.add(result)
                if csv_writer is not None:
                    csv_writer.add(result)
        payload = {
            "schema": SCHEMA,
            "grid": grid.describe(),
            "num_cells": streamed,
            "aggregates": fold.finish(),
            "world_cache": cache_stats.as_dict(),
        }
        if include_cells:
            # The payload embeds the per-cell results: the one read-back,
            # index-sorted (JSON round-trips numbers exactly, so this list
            # matches the live results byte-for-byte).
            payload["cells"] = sorted(iter_jsonl(stream_path),
                                      key=lambda r: r["index"])
    finally:
        if csv_writer is not None:
            csv_writer.close()
        if jsonl_path is None:
            os.unlink(stream_path)
    if json_path is not None:
        write_json(payload, json_path)
    return payload


#: Payload keys that may vary between runs (scheduling-dependent) and are
#: therefore excluded from determinism digests and JSON artifacts' digests.
NON_DETERMINISTIC_KEYS = ("world_cache",)


def payload_digest(payload):
    """Canonical JSON string of *payload* (determinism checks diff this).

    Scheduling-dependent bookkeeping (``world_cache``) is excluded: the
    digest covers exactly the simulation-derived content, which is
    byte-identical for any worker count.
    """
    digestable = {key: value for key, value in payload.items()
                  if key not in NON_DETERMINISTIC_KEYS}
    return json.dumps(digestable, sort_keys=True, separators=(",", ":"))


def write_json(payload, path):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Flat per-cell CSV columns (scalars only; nested summaries get p50/p95).
CSV_COLUMNS = ("index", "cell_id", "control_plane", "num_sites", "seed",
               "zipf_s", "size_dist", "fail_fraction", "mode", "flows",
               "flows_failed", "packets_sent", "packets_delivered",
               "packets_lost", "first_packet_drops", "cache_hit_ratio",
               "cache_expirations", "resolutions_started",
               "resolutions_failed", "map_cache_trie_nodes",
               "map_cache_entries", "dns_p50", "dns_p95", "setup_p50",
               "setup_p95", "control_messages", "control_bytes", "sim_events")


def _csv_row(cell):
    """One cell result flattened to a CSV row (CSV_COLUMNS order)."""
    metrics = cell["metrics"]
    dns = metrics["dns_latency"] or {}
    setup = metrics["setup_latency"] or {}
    row = {
        **{key: cell[key] for key in
           ("index", "cell_id", "control_plane", "num_sites", "seed",
            "zipf_s", "size_dist", "fail_fraction", "mode")},
        **{key: metrics[key] for key in
           ("flows", "flows_failed", "packets_sent",
            "packets_delivered", "packets_lost", "first_packet_drops",
            "cache_hit_ratio", "cache_expirations",
            "resolutions_started", "resolutions_failed",
            "map_cache_trie_nodes", "map_cache_entries",
            "control_messages", "control_bytes", "sim_events")},
        "dns_p50": dns.get("median", ""), "dns_p95": dns.get("p95", ""),
        "setup_p50": setup.get("median", ""),
        "setup_p95": setup.get("p95", ""),
    }
    return [row[column] for column in CSV_COLUMNS]


class CsvStreamWriter:
    """Per-cell CSV writer fed one result at a time, rows index-sorted.

    Rows are flattened and written as results arrive; out-of-order
    completions wait in a heap keyed on cell index and are flushed the
    moment the next expected index shows up, so the artifact is
    deterministic regardless of completion order.  An index-ordered feed
    (serial runs, the payload's sorted cells) writes with O(1) buffering;
    a fanned-out feed buffers the completion *skew* of flattened rows —
    typically a few world-groups' worth, though a worst-case schedule
    (the group holding index 0 finishing last) can buffer most rows.
    Either way only the ~30-column flattened rows are held, never the
    full per-cell result payloads.
    """

    def __init__(self, path):
        self._handle = open(path, "w", newline="")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(CSV_COLUMNS)
        self._pending = []
        self._next_index = 0

    def add(self, cell):
        heapq.heappush(self._pending, (cell["index"], _csv_row(cell)))
        while self._pending and self._pending[0][0] == self._next_index:
            self._writer.writerow(heapq.heappop(self._pending)[1])
            self._next_index += 1

    def close(self):
        # Index gaps (a partial stream) flush in sorted order at the end.
        while self._pending:
            self._writer.writerow(heapq.heappop(self._pending)[1])
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def write_csv_stream(results, path):
    """Write the per-cell CSV from *results* (any order), rows index-sorted."""
    with CsvStreamWriter(path) as writer:
        for cell in results:
            writer.add(cell)


def write_csv(payload, path):
    """Write the per-cell CSV from an assembled payload (compat wrapper)."""
    write_csv_stream(iter(payload["cells"]), path)


# --------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------- #

PRESETS = {
    # Tiny grid for smoke tests and CLI demos (seconds).
    "smoke": SweepGrid(
        name="smoke",
        control_planes=("pce", "alt"),
        site_counts=(3,),
        seeds=(1, 2),
        zipf_values=(1.0,),
        num_flows=12,
        arrival_rate=10.0,
    ),
    # Every control plane at moderate scale; cache-tail behaviour appears.
    "baselines": SweepGrid(
        name="baselines",
        control_planes=("pce", "alt", "cons", "nerd"),
        site_counts=(4, 8),
        seeds=(11, 12),
        zipf_values=(0.0, 1.2),
        num_flows=40,
        arrival_rate=20.0,
    ),
    # The ROADMAP's production-scale target: >=100 sites, Zipf-skewed
    # destinations, all four control planes, constant vs heavy-tailed flow
    # sizes (the pairs share worlds, exercising worker-side reuse).  TCP
    # mode with post-handshake data bursts, so the artifacts carry both
    # connection-setup latency percentiles and size-shaped data traffic.
    "scale": SweepGrid(
        name="scale",
        control_planes=("pce", "alt", "cons", "nerd"),
        site_counts=(8, 32, 120),
        seeds=(11, 12),
        zipf_values=(1.2,),
        size_dists=("constant", "pareto"),
        num_providers=8,
        num_flows=80,
        arrival_rate=40.0,
        mode="tcp",
        workload_overrides={"tcp_data_burst": True},
    ),
    # RLOC failure as a sweep axis: half the sites lose their primary
    # access link mid-workload; PCE runs with probing + backup locators so
    # failover happens, the reactive baseline blackholes (E9 at grid scale).
    "failover": SweepGrid(
        name="failover",
        control_planes=("pce", "alt"),
        site_counts=(6,),
        seeds=(21, 22),
        zipf_values=(1.0,),
        fail_fractions=(0.0, 0.5),
        fail_at=1.0,
        repair_at=3.0,
        num_flows=40,
        arrival_rate=15.0,
        packets_per_flow=6,
        scenario_overrides={"enable_probing": True, "probe_period": 0.3,
                            "probe_timeout": 0.15},
    ),
}
