"""E5 — control-plane cost: messages, bytes and per-router state vs scale.

Expected shape (DESIGN.md §4): NERD's state grows with the total number of
EID prefixes on *every* router and its push bytes dominate; ALT/CONS hold
modest overlay state but pay per-resolution message chains; the PCE control
plane's messages scale with flow arrivals (one port-P message plus one push
per ITR) and its state with *active* mappings only.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload


@dataclass
class E5Row:
    system: str
    num_sites: int
    flows: int
    control_messages: int
    control_bytes: int
    bytes_per_flow: float
    max_state: int
    total_state: int

    def as_tuple(self):
        return (self.system, self.num_sites, self.flows, self.control_messages,
                self.control_bytes, round(self.bytes_per_flow, 1),
                self.max_state, self.total_state)


HEADERS = ("system", "sites", "flows", "ctl_msgs", "ctl_bytes", "bytes/flow",
           "max_state", "total_state")

DEFAULT_SYSTEMS = ("pce", "alt", "cons", "nerd")


def run_e5(site_counts=(4, 8, 16), flows_per_site=4, seed=61,
           systems=DEFAULT_SYSTEMS):
    rows = []
    for system in systems:
        for num_sites in site_counts:
            config = ScenarioConfig(control_plane=system, num_sites=num_sites,
                                    seed=seed, miss_policy="queue")
            scenario = build_scenario(config)
            num_flows = flows_per_site * num_sites
            workload = WorkloadConfig(num_flows=num_flows, arrival_rate=20.0,
                                      packets_per_flow=3)
            records = run_workload(scenario, workload)
            rows.append(_measure(system, num_sites, scenario, records))
    return rows


def _state_snapshot(scenario):
    """Durable control-plane state entries per node.

    Counts what a router must *hold to operate the control plane* — overlay
    RIBs (ALT), tree pointers (CONS), the pushed database (NERD), the PCE's
    mapping database — deliberately excluding transient demand-driven
    map-cache entries, which every system accrues at the same per-flow rate.
    """
    entries = {}
    if scenario.mapping_system is not None:
        for name, count in scenario.mapping_system.state_entries_per_router().items():
            entries[name] = entries.get(name, 0) + count
    if scenario.control_plane is not None:
        for pce in scenario.control_plane.pces.values():
            entries[pce.node.name] = len(pce.mapping_db)
    return entries


def _measure(system, num_sites, scenario, records):
    if scenario.control_plane is not None:
        cp = scenario.control_plane
        messages = cp.total_control_messages()
        control_bytes = cp.total_push_bytes()
        for pce in cp.pces.values():
            control_bytes += pce.stats.replies_encapsulated * 64  # envelope overhead
    else:
        stats = scenario.mapping_system.stats
        messages = stats.messages
        control_bytes = stats.bytes
    state = _state_snapshot(scenario)
    counts = list(state.values()) or [0]
    flows = len(records)
    return E5Row(system=system, num_sites=num_sites, flows=flows,
                 control_messages=messages, control_bytes=control_bytes,
                 bytes_per_flow=control_bytes / flows if flows else 0.0,
                 max_state=max(counts), total_state=sum(counts))


def check_shape(rows):
    failures = []
    by_system = {}
    for row in rows:
        by_system.setdefault(row.system, {})[row.num_sites] = row
    nerd = by_system.get("nerd", {})
    sizes = sorted(nerd)
    if len(sizes) >= 2:
        small, large = nerd[sizes[0]], nerd[sizes[-1]]
        if not large.max_state > small.max_state:
            failures.append("nerd state does not grow with sites")
        if not large.control_bytes > small.control_bytes * 2:
            failures.append("nerd push bytes do not grow superlinearly-ish")
    largest = sizes[-1] if sizes else None
    if largest is not None:
        nerd_row = nerd[largest]
        # NERD replicates the database on every xTR: its aggregate state
        # dominates every other system at scale.
        for other in ("alt", "cons", "pce"):
            other_row = by_system.get(other, {}).get(largest)
            if other_row and not nerd_row.total_state > other_row.total_state:
                failures.append(f"nerd total state not above {other} at {largest} sites")
        cons_row = by_system.get("cons", {}).get(largest)
        if cons_row and not cons_row.max_state < nerd_row.max_state:
            failures.append("cons per-router state not below nerd")
        pce_row = by_system.get("pce", {}).get(largest)
        if pce_row and nerd_row.flows and \
                not pce_row.bytes_per_flow < nerd_row.control_bytes:
            failures.append("pce per-flow bytes not below nerd's total push")
    pce = by_system.get("pce", {})
    pce_sizes = sorted(pce)
    if len(pce_sizes) >= 2:
        small, large = pce[pce_sizes[0]], pce[pce_sizes[-1]]
        # PCE overhead scales with flows, not sites: per-flow bytes ~flat.
        if large.bytes_per_flow > small.bytes_per_flow * 1.5:
            failures.append("pce bytes/flow grew with site count")
    return failures
