"""E9 — locator failure: the blackhole window with and without probing.

An ongoing flow tunnels into the destination site's preferred locator.  At
a known instant the access link behind that locator fails.  A static LISP
deployment keeps encapsulating into the dead locator (the mapping says
nothing about its health) — every packet is lost until the link returns.
With RLOC probing plus backup locators in the pushed mapping (the dynamic
mapping management the paper's TE discussion anticipates), the ITR detects
the failure in a couple of probe periods and fails over to the surviving
locator; when the link heals, traffic moves back.

Reported per variant: packets lost during the failure, the blackhole
duration (last loss minus failure instant), and whether the flow recovered.
"""

from dataclasses import dataclass

from repro.experiments.scenario import FLOW_UDP_PORT, ScenarioConfig, build_scenario
from repro.net.packet import udp_packet


@dataclass
class E9Row:
    variant: str
    packets_sent: int
    packets_lost: int
    blackhole_seconds: float
    recovered_before_repair: bool

    def as_tuple(self):
        return (self.variant, self.packets_sent, self.packets_lost,
                round(self.blackhole_seconds, 3), self.recovered_before_repair)


HEADERS = ("variant", "pkts_sent", "pkts_lost", "blackhole_s", "failover")

FAIL_AT = 3.0
REPAIR_AT = 9.0
FLOW_END = 12.0
PACKET_INTERVAL = 0.05


def schedule_access_failure(sim, site, locator_index, fail_at, repair_at):
    """Fail, then repair, both directions of one of *site*'s access links.

    The reusable core of this experiment's failure injection: the sweep
    engine schedules the same fail/repair pair when a cell carries a
    ``fail_fraction`` (RLOC failure as a sweep axis).
    """
    links = site.access_links[locator_index]

    def set_link(up):
        links["uplink"].up = up
        links["downlink"].up = up

    sim.call_at(fail_at, set_link, False)
    sim.call_at(repair_at, set_link, True)


def run_e9(seed=29, probe_period=0.4):
    variants = (
        ("pce+probing", dict(enable_probing=True, probe_period=probe_period)),
        ("pce-static", dict(enable_probing=False)),
    )
    return [_run_variant(label, overrides, seed) for label, overrides in variants]


def _run_variant(label, overrides, seed):
    config = ScenarioConfig(control_plane="pce", fig1=True, seed=seed,
                            irc_policy="primary", **overrides)
    scenario = build_scenario(config)
    sim = scenario.sim
    topology = scenario.topology
    site_s, site_d = topology.sites
    source = site_s.hosts[0]
    sink = scenario.sink_for(site_d.index, 0)
    stub = scenario.stub_for(source, site_s)
    state = {"sent": 0}

    def sender():
        address, _elapsed = yield stub.lookup(scenario.host_name(site_d, 0))
        while sim.now < FLOW_END:
            source.send(udp_packet(source.address, address, 5000, FLOW_UDP_PORT,
                                   payload_bytes=800,
                                   meta={"sent_at": sim.now}))
            state["sent"] += 1
            yield sim.timeout(PACKET_INTERVAL)

    # Fail and repair the destination's primary access link (both directions).
    sim.process(sender())
    schedule_access_failure(sim, site_d, 0, FAIL_AT, REPAIR_AT)
    sim.run(until=FLOW_END + 2.0)

    arrivals = sink.arrival_times
    lost = state["sent"] - len(arrivals)
    # Blackhole: the longest gap in arrivals that contains the failure time.
    blackhole = 0.0
    previous = None
    for when in arrivals:
        if previous is not None and previous <= FAIL_AT <= when:
            blackhole = when - previous
            break
        previous = when
    else:
        if previous is not None and previous < FAIL_AT:
            blackhole = REPAIR_AT - FAIL_AT  # never recovered until repair
    recovered = blackhole < (REPAIR_AT - FAIL_AT) * 0.9
    return E9Row(variant=label, packets_sent=state["sent"], packets_lost=lost,
                 blackhole_seconds=blackhole, recovered_before_repair=recovered)


def check_shape(rows):
    failures = []
    by_variant = {row.variant: row for row in rows}
    probing = by_variant.get("pce+probing")
    static = by_variant.get("pce-static")
    if probing is None or static is None:
        return ["missing variants"]
    if not probing.recovered_before_repair:
        failures.append("probing variant did not fail over before the repair")
    if static.recovered_before_repair:
        failures.append("static variant recovered without probing (unexpected)")
    if not probing.packets_lost < static.packets_lost:
        failures.append("probing did not reduce packet loss")
    if not probing.blackhole_seconds < static.blackhole_seconds / 2:
        failures.append("probing blackhole not substantially shorter")
    return failures
