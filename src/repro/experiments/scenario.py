"""Scenario construction: one call builds a full world under a chosen CP.

``control_plane`` selects among:

- ``"pce"``   — the paper's PCE-based control plane;
- ``"alt"``   — LISP+ALT overlay, reactive resolution at ITRs;
- ``"cons"``  — CONS hierarchy, reactive;
- ``"nerd"``  — NERD pushed database;
- ``"plain"`` — no LISP at all: EIDs globally routable (today's Internet),
  the baseline of the paper's first latency formula.
"""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.control_plane import deploy_pce_control_plane
from repro.dns.hierarchy import install_dns
from repro.dns.resolver import StubResolver
from repro.lisp.control import AltMappingSystem, ConsMappingSystem, NerdMappingSystem
from repro.lisp.deploy import deploy_lisp
from repro.lisp.policies import CpDataPolicy, DropPolicy, QueuePolicy
from repro.net.topogen import FAMILIES, TopologySpec, build as build_from_spec
from repro.sim import Simulator
from repro.traffic.flows import FlowIdAllocator, TcpStack, UdpSink

#: Port every host's TCP responder listens on.
FLOW_TCP_PORT = 80
#: Port every host's UDP sink listens on.
FLOW_UDP_PORT = 9000

CONTROL_PLANES = ("pce", "alt", "cons", "nerd", "plain")
MISS_POLICIES = ("drop", "queue", "cp-data")


@dataclass
class ScenarioConfig:
    """Everything that defines a reproducible world."""

    control_plane: str = "pce"
    num_sites: int = 2
    num_providers: int = 4
    providers_per_site: int = 2
    hosts_per_site: int = 2
    seed: int = 1
    fig1: bool = False
    #: Disable for large sweeps: the tracer records nothing (big memory and
    #: time win on the per-packet hot path; experiments that read the trace
    #: must keep it on).
    tracing: bool = True
    # Reactive-baseline knobs
    miss_policy: str = "drop"
    queue_depth: int = 8
    gleaning: bool = True
    cache_ttl_override: float = None
    # Mapping / DNS lifetimes
    mapping_ttl: float = 60.0
    dns_host_ttl: float = 60.0
    dns_use_cache: bool = True
    dns_extra_levels: int = 0
    # PCE knobs
    irc_policy: str = "balance"
    push_mode: str = "all"
    precompute: bool = True
    computation_delay: float = 0.0005
    start_irc: bool = False
    refresh_on_cached_answers: bool = True
    enable_probing: bool = False
    probe_period: float = 0.5
    #: Must stay below probe_period: overlapping probe rounds would keep
    #: foreground work alive across ticks and a full drain would never end.
    #: None derives ``min(0.3, 0.6 * probe_period)``, which preserves the
    #: historical 0.3s timeout at the default 0.5s period and scales down
    #: safely for faster probing.
    probe_timeout: float = None
    # Topology delay ranges (seconds)
    wan_delay_range: tuple = (0.010, 0.040)
    access_delay_range: tuple = (0.001, 0.005)
    #: Transmission rate of the site access links in bits/second; ``None``
    #: keeps them infinite (zero serialisation delay) as the paper's
    #: latency formulas assume.  Shaped-traffic scenarios set a finite rate
    #: so link busy time — and therefore utilization — is real.
    access_rate_bps: Optional[float] = None
    #: Topology family name (``"fig1"``/``"flat"``/``"tiered"``/``"caida"``)
    #: or a full :class:`~repro.net.topogen.TopologySpec`.  A family name
    #: keeps the loose sizing fields above authoritative; a spec is itself
    #: authoritative and the loose fields are mirrored from it (``variant``
    #: calls changing sizes on a spec-carrying config should replace the
    #: spec, not the mirrors).
    topology: object = "flat"

    def __post_init__(self):
        if isinstance(self.topology, TopologySpec):
            spec = self.topology
            self.num_sites = spec.num_sites
            self.num_providers = spec.num_providers
            self.providers_per_site = spec.providers_per_site
            self.hosts_per_site = spec.hosts_per_site
            self.wan_delay_range = spec.wan_delay_range
            self.access_delay_range = spec.access_delay_range
            self.access_rate_bps = spec.access_rate_bps
            self.fig1 = spec.family == "fig1"
        elif self.topology not in FAMILIES:
            raise ValueError(f"unknown topology family {self.topology!r}")
        elif self.topology == "fig1":
            self.fig1 = True
        elif self.fig1 and self.topology == "flat":
            # Old-style callers set the fig1 flag with the default family;
            # fold both spellings onto one canonical config/world key.
            self.topology = "fig1"

    @property
    def topology_family(self):
        return (self.topology.family if isinstance(self.topology, TopologySpec)
                else self.topology)

    def topology_spec(self, eids_globally_routable=False):
        """The :class:`~repro.net.topogen.TopologySpec` this config builds.

        Family-name configs map their loose sizing fields onto the spec
        (the historical ``build_topology`` kwargs); spec-carrying configs
        pass the spec through.  ``num_sites``/``num_providers`` are left to
        the ``fig1`` family's fixed Fig. 1 cast, as before.
        """
        base = (self.topology if isinstance(self.topology, TopologySpec)
                else TopologySpec(family=self.topology))
        overrides = dict(
            num_providers=self.num_providers,
            providers_per_site=self.providers_per_site,
            hosts_per_site=self.hosts_per_site,
            wan_delay_range=self.wan_delay_range,
            access_delay_range=self.access_delay_range,
            access_rate_bps=self.access_rate_bps,
            eids_globally_routable=eids_globally_routable)
        if base.family != "fig1":
            overrides["num_sites"] = self.num_sites
        return replace(base, **overrides)

    def variant(self, **overrides):
        """A copy with fields overridden (for sweeps)."""
        return replace(self, **overrides)


@dataclass
class Scenario:
    """A built world plus convenience accessors."""

    config: ScenarioConfig
    sim: Simulator
    topology: object
    dns: object
    control_plane: object = None      # PceControlPlane when config is "pce"
    mapping_system: object = None     # baseline mapping system otherwise
    miss_policy: object = None
    xtrs_by_site: dict = field(default_factory=dict)
    tcp_stacks: dict = field(default_factory=dict)
    udp_sinks: dict = field(default_factory=dict)
    stubs: dict = field(default_factory=dict)
    #: Per-world flow-id sequence; checkpointed so fresh and restored
    #: worlds label flows identically.
    flow_ids: FlowIdAllocator = field(default_factory=FlowIdAllocator)
    #: Post-build component checkpoint (set by repro.experiments.worldbuild;
    #: None when the world cannot be reused).
    world_checkpoint: object = None

    @property
    def name(self):
        return self.config.control_plane

    def stub_for(self, host, site):
        key = host.name
        if key not in self.stubs:
            self.stubs[key] = StubResolver(self.sim, host, site.dns_address)
        return self.stubs[key]

    def host_name(self, site, host_index):
        return self.dns.host_name(site, host_index)

    def sink_for(self, site_index, host_index):
        return self.udp_sinks[(site_index, host_index)]

    def total_first_packet_drops(self):
        if self.miss_policy is None:
            return 0
        return self.miss_policy.stats.dropped

    def access_byte_shares(self, site, direction="in"):
        """Per-provider byte share of *site*'s access links (E4).

        Counts every transmitted byte — data plane *and* control plane
        (mapping pushes, probes, DNS transit).  For the data-plane-only
        view the TE experiments report, see :meth:`access_flow_byte_shares`.
        """
        key = "downlink" if direction == "in" else "uplink"
        counts = [links[key].stats.tx_bytes for links in site.access_links]
        total = sum(counts)
        if total == 0:
            return [0.0] * len(counts)
        return [count / total for count in counts]

    def access_flow_byte_shares(self, site, direction="in"):
        """Per-provider share of flow-accounted *delivered* bytes (E4).

        Reads the per-flow byte accounting on *site*'s access links, so
        only data-plane traffic (packets carrying a flow id, however
        deeply encapsulated) participates — control-plane chatter no
        longer skews the TE balance figures the way raw ``tx_bytes`` does.
        """
        key = "downlink" if direction == "in" else "uplink"
        counts = [sum(account.delivered
                      for account in links[key].stats.flows.values())
                  for links in site.access_links]
        total = sum(counts)
        if total == 0:
            return [0.0] * len(counts)
        return [count / total for count in counts]

    def access_link_utilization(self, site, direction="in"):
        """Per-provider peak window utilization of *site*'s access links.

        Busy-time based, so it is 0.0 unless the scenario gives its access
        links a finite rate (``ScenarioConfig.access_rate_bps``).
        """
        key = "downlink" if direction == "in" else "uplink"
        return [links[key].stats.peak_utilization()
                for links in site.access_links]

    def iter_links(self):
        """Every link in the world, each exactly once."""
        seen = set()
        for node in self.topology.all_nodes():
            for iface in node.interfaces.values():
                link = iface.link
                if link is not None and id(link) not in seen:
                    seen.add(id(link))
                    yield link

    def byte_accounting(self, drained=False):
        """World-wide link byte totals plus the conservation verdict.

        Sums offered/delivered/dropped/in-flight bytes over every link and
        collects per-link conservation violations (see
        :meth:`~repro.net.link.LinkStats.conservation_violations`); with
        ``drained=True`` bytes still in flight count as violations too.
        """
        offered = delivered = dropped = in_flight = 0
        violations = []
        for link in self.iter_links():
            stats = link.stats
            offered += stats.bytes_offered
            delivered += stats.bytes_delivered
            dropped += stats.bytes_dropped
            in_flight += stats.bytes_in_flight
            for violation in stats.conservation_violations(drained=drained):
                violations.append((link.name, *violation))
        return {
            "bytes_offered": offered,
            "bytes_delivered": delivered,
            "bytes_dropped": dropped,
            "bytes_in_flight": in_flight,
            "conserved": not violations,
            "violations": violations,
        }

    def stateful_components(self):
        """Every object holding run-mutable state, for world checkpointing.

        The worldbuild layer snapshots each yielded component right after
        the build and restores them before a reuse; anything a workload run
        can mutate must be reachable from here (see
        :mod:`repro.experiments.worldbuild`).  Per-host stub resolvers are
        not components: they are created lazily per run and dropped on
        restore (:attr:`stubs` is cleared).
        """
        sim = self.sim
        yield sim
        yield sim.rng
        yield sim.trace
        yield self.flow_ids
        seen_links = set()
        for node in self.topology.all_nodes():
            yield node
            for iface in node.interfaces.values():
                link = iface.link
                if link is not None and id(link) not in seen_links:
                    seen_links.add(id(link))
                    yield link
        for stack in self.tcp_stacks.values():
            yield stack
        for sink in self.udp_sinks.values():
            yield sink
        for xtr_list in self.xtrs_by_site.values():
            for xtr in xtr_list:
                yield xtr
        dns = self.dns
        yield dns.root_server
        yield dns.tld_server
        for server in dns.level_servers:
            yield server
        for resolver in dns.resolvers.values():
            yield resolver
        if self.control_plane is not None:
            # Covers its PCEs, IRC engines, RLOC probers, registry and miss
            # policy.  The IRC measurement and probe *timers* are periodic
            # tasks living in engine state, checkpointed with the simulator.
            yield self.control_plane
        if self.mapping_system is not None:
            yield self.mapping_system
            yield self.miss_policy


def _make_miss_policy(sim, config):
    if config.miss_policy == "drop":
        return DropPolicy(sim)
    if config.miss_policy == "queue":
        return QueuePolicy(sim, max_queue=config.queue_depth)
    if config.miss_policy == "cp-data":
        return CpDataPolicy(sim)
    raise ValueError(f"unknown miss policy {config.miss_policy!r}")


def build_scenario(config):
    """Build the world described by *config* and return a :class:`Scenario`."""
    if config.control_plane not in CONTROL_PLANES:
        raise ValueError(f"unknown control plane {config.control_plane!r}")
    sim = Simulator(seed=config.seed, tracing=config.tracing)
    spec = config.topology_spec(
        eids_globally_routable=(config.control_plane == "plain"))
    topology = build_from_spec(sim, spec)
    dns = install_dns(topology, host_ttl=config.dns_host_ttl,
                      extra_levels=config.dns_extra_levels,
                      use_cache=config.dns_use_cache)
    scenario = Scenario(config=config, sim=sim, topology=topology, dns=dns)

    if config.control_plane == "pce":
        scenario.control_plane = deploy_pce_control_plane(
            sim, topology, dns, irc_policy=config.irc_policy,
            precompute=config.precompute, computation_delay=config.computation_delay,
            mapping_ttl=config.mapping_ttl, push_mode=config.push_mode,
            refresh_on_cached_answers=config.refresh_on_cached_answers,
            start_irc=config.start_irc, enable_probing=config.enable_probing,
            probe_period=config.probe_period,
            probe_timeout=config.probe_timeout)
        scenario.miss_policy = scenario.control_plane.miss_policy
        scenario.xtrs_by_site = scenario.control_plane.xtrs_by_site
    elif config.control_plane != "plain":
        if config.control_plane == "alt":
            system = AltMappingSystem(sim)
        elif config.control_plane == "cons":
            system = ConsMappingSystem(sim, topology)
        else:
            system = NerdMappingSystem(sim, topology)
        policy = _make_miss_policy(sim, config)
        scenario.mapping_system = system
        scenario.miss_policy = policy
        scenario.xtrs_by_site = deploy_lisp(
            sim, topology, system, policy, gleaning=config.gleaning,
            cache_ttl_override=config.cache_ttl_override,
            mapping_ttl=config.mapping_ttl)
        sim.run()  # let deployment-time pushes (NERD) settle

    for site in topology.sites:
        for host_index, host in enumerate(site.hosts):
            stack = TcpStack(sim, host)
            stack.listen(FLOW_TCP_PORT)
            scenario.tcp_stacks[host.name] = stack
            scenario.udp_sinks[(site.index, host_index)] = UdpSink(
                sim, host, FLOW_UDP_PORT)
    return scenario
