"""Workload driver: Poisson flow arrivals over a scenario.

Every flow mimics a connecting application: resolve the destination name,
then either open a TCP connection (``mode="tcp"``) or emit a sized UDP
data phase (``mode="udp"``).  With ``tcp_data_burst`` a successful
handshake is followed by the sized data phase too, so flow-size
distributions shape TCP workloads as well (the sweep engine's ``scale``
preset relies on this).

The data phase is driven by a :class:`~repro.traffic.popularity.FlowShaper`:
each flow draws a byte budget from its size distribution and a pacing plan.
``pacing="constant"`` reproduces the historical constant-spacing sender
byte-for-byte; ``pacing="shaped"`` makes the heavy tail temporal — mice
burst back-to-back, elephants pace their packets at ``pace_rate_bps`` — so
the size axis changes *when* bytes hit the links, not just how many.

Per-flow :class:`~repro.traffic.flows.FlowRecord` objects collect DNS
time, setup time, retransmissions, byte budgets and packet fates — the raw
material for experiments E1/E3/E4/E7.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.experiments.scenario import FLOW_TCP_PORT, FLOW_UDP_PORT
from repro.traffic.flows import FlowRecord, send_flow
from repro.traffic.popularity import FlowShaper, FlowSizeSampler, ZipfSampler


@dataclass
class WorkloadConfig:
    num_flows: int = 40
    arrival_rate: float = 20.0      # flows per second (Poisson)
    zipf_s: float = 1.0             # destination-site popularity skew
    mode: str = "udp"               # "udp" | "tcp"
    packets_per_flow: int = 5
    payload_bytes: int = 1000
    packet_spacing: float = 0.001
    #: In TCP mode, follow a successful handshake with the sized data
    #: burst (False keeps the handshake-only behaviour of E3).
    tcp_data_burst: bool = False
    #: Flow-size distribution for data phases ("constant"|"pareto"|"lognormal"):
    #: heavy tails around a mean of ``packets_per_flow`` packets.  The
    #: default draws nothing from the RNG, so constant-size workloads are
    #: byte-identical to the pre-size-distribution behaviour.
    size_dist: str = "constant"
    size_alpha: float = 1.4         # bounded-Pareto tail exponent
    size_sigma: float = 1.0         # lognormal shape
    size_max_factor: float = 50.0   # cap relative to the distribution scale
    #: Pacing mode ("constant"|"shaped"|"fluid").  ``constant`` sends every
    #: flow's packets ``packet_spacing`` apart (the historical sender,
    #: event-level identical); ``shaped`` bursts mice back-to-back and paces
    #: elephants at ``pace_rate_bps``; ``fluid`` additionally advances bulk
    #: flows as byte chunks with no per-packet events.
    pacing: str = "constant"
    pace_rate_bps: float = 2_000_000.0
    #: Flows above this many packets are elephants (None: 2x the size mean).
    elephant_threshold: Optional[float] = None
    burst_spacing: float = 0.0      # mouse inter-packet gap (0 = one burst)
    #: Fluid pacing only: flows above this many packets go fluid (None:
    #: the elephant threshold — every elephant advances as chunks).
    fluid_threshold: Optional[float] = None
    #: Seconds of pace-rate bytes per fluid chunk.
    fluid_chunk_interval: float = 0.25
    source_site: Optional[int] = None   # None = uniformly random
    dest_site: Optional[int] = None     # None = Zipf over the other sites
    grace_period: float = 8.0       # settle time after the last arrival
    rng_name: str = "workload"


def build_shaper(workload, rng=None):
    """The :class:`FlowShaper` a workload's data phases draw plans from."""
    sizes = FlowSizeSampler(dist=workload.size_dist,
                            mean=workload.packets_per_flow,
                            alpha=workload.size_alpha,
                            sigma=workload.size_sigma,
                            max_factor=workload.size_max_factor, rng=rng)
    return FlowShaper(sizes, workload.payload_bytes, pacing=workload.pacing,
                      spacing=workload.packet_spacing,
                      pace_rate_bps=workload.pace_rate_bps,
                      elephant_threshold=workload.elephant_threshold,
                      burst_spacing=workload.burst_spacing,
                      fluid_threshold=workload.fluid_threshold,
                      chunk_interval=workload.fluid_chunk_interval)


def run_workload(scenario, workload):
    """Run *workload* to completion; returns the list of FlowRecords."""
    sim = scenario.sim
    topology = scenario.topology
    rng = sim.rng.stream(workload.rng_name)
    num_sites = len(topology.sites)
    if num_sites < 2:
        raise ValueError("workload needs at least two sites")
    zipf = ZipfSampler(num_sites - 1, s=workload.zipf_s, rng=rng)
    shaper = build_shaper(workload, rng=rng)
    records = []

    def pick_sites():
        if workload.dest_site is not None:
            dst = workload.dest_site
            src = rng.randrange(num_sites - 1)
            if src >= dst:
                src += 1
            return src, dst
        if workload.source_site is not None:
            src = workload.source_site
        else:
            src = rng.randrange(num_sites)
        offset = zipf.sample() + 1
        dst = (src + offset) % num_sites
        if dst == src:  # only possible via modular wrap corner cases
            dst = (src + 1) % num_sites
        return src, dst

    def flow(start_delay):
        yield sim.timeout(start_delay)
        src_index, dst_index = pick_sites()
        src_site = topology.sites[src_index]
        dst_site = topology.sites[dst_index]
        src_host = src_site.hosts[rng.randrange(len(src_site.hosts))]
        dst_host_index = rng.randrange(len(dst_site.hosts))
        record = FlowRecord(flow_id=scenario.flow_ids.allocate(),
                            source=src_host.address,
                            qname=scenario.host_name(dst_site, dst_host_index),
                            started_at=sim.now)
        records.append(record)
        stub = scenario.stub_for(src_host, src_site)
        address, elapsed = yield stub.lookup(record.qname)
        record.dns_done_at = sim.now
        record.dns_elapsed = elapsed
        record.destination = address
        if address is None:
            record.failed = True
            return
        if workload.mode == "tcp":
            outcome = yield scenario.tcp_stacks[src_host.name].connect(
                address, FLOW_TCP_PORT)
            if outcome is None:
                record.failed = True
                return
            setup, retries = outcome
            record.established_at = sim.now
            record.setup_elapsed = setup
            record.syn_retransmissions = retries
            if workload.tcp_data_burst:
                yield send_flow(sim, src_host, address, FLOW_UDP_PORT,
                                record, shaper.plan())
        else:
            yield send_flow(sim, src_host, address, FLOW_UDP_PORT, record,
                            shaper.plan())

    arrival_time = 0.0
    last_arrival = 0.0
    for _ in range(workload.num_flows):
        arrival_time += rng.expovariate(workload.arrival_rate)
        last_arrival = arrival_time
        sim.process(flow(arrival_time), name=f"flow@{arrival_time:.3f}")

    sim.run(until=sim.now + last_arrival + workload.grace_period)

    # Attribute deliveries back to flows via the sinks.
    delivered_by_flow = defaultdict(int)
    for sink in scenario.udp_sinks.values():
        for flow_id, count in sink.by_flow.items():
            delivered_by_flow[flow_id] += count
    for record in records:
        record.packets_delivered = delivered_by_flow.get(record.flow_id, 0)
        # A flow cut off at the deadline before its DNS resolution finished
        # never got an answer: mark it failed so downstream consumers (which
        # treat destination/dns_done_at as Optional) can rely on the flag
        # instead of re-deriving "incomplete" from a None timestamp.
        if record.dns_done_at is None:
            record.failed = True
    return records


def peak_concurrent_flows(records):
    """Most flows simultaneously in their send phase (megaflow's headline).

    A flow is active from ``started_at`` until ``finished_at``; flows cut
    off at the workload deadline (``finished_at`` None) count as active to
    the end.  Ties break ends-before-starts so back-to-back flows don't
    double count.
    """
    marks = []
    for record in records:
        marks.append((record.started_at, 1))
        if record.finished_at is not None:
            marks.append((record.finished_at, -1))
    marks.sort()
    peak = current = 0
    for _when, delta in marks:
        current += delta
        if current > peak:
            peak = current
    return peak


def classify_first_packet(record):
    """E1 classification of a flow's first data packet."""
    fates = record.first_packet_fates
    if not fates:
        if record.failed:
            return "not-sent"
        # No LISP on the path (plain mode): judge by delivery.
        if record.packets_sent > 0 and record.packets_delivered >= record.packets_sent:
            return "sent-immediately"
        return "unknown"
    if "dropped-at-itr" in fates or "dropped-queue-overflow" in fates \
            or "dropped-no-rloc" in fates:
        return "dropped"
    if "flushed-after-queue" in fates:
        return "queued-then-sent"
    if "carried-over-cp" in fates:
        return "carried-over-cp"
    if "encapsulated" in fates or "decapsulated" in fates:
        return "sent-immediately"
    if "queued-at-itr" in fates:
        return "stuck-in-queue"
    return "unknown"
