"""E4 — traffic-engineering flexibility (claim C3, weakness W3).

All flows target one multihomed site.  In plain LISP the inbound locator is
whatever static priority the site published (everything lands on one
provider) and the reverse direction is pinned to the forward ITR.  The PCE
control plane chooses the inbound locator per flow with its IRC engine, so
inbound bytes spread across providers — and, independently, the *source*
site spreads its outbound bytes, demonstrating the two one-way tunnels.

Metrics come from the links' per-flow byte accounting rather than raw
transmit counters: per-provider shares of *data-plane delivered bytes* on
the destination site's access links (inbound) and a max/mean imbalance
figure, plus the same for one source site's uplinks (outbound) — so
control-plane chatter (mapping pushes, probes, DNS transit) no longer
leaks into the balance numbers.  The access links carry a finite rate and
the workload runs with shaped pacing (mice burst, elephants pace), so each
row also reports real per-link utilization — the peak busy-window fraction
across the site's providers.  An ablation re-runs PCE with the ``primary``
IRC policy, which degenerates to the static baseline.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload

DEFAULT_VARIANTS = (
    ("pce+balance", dict(control_plane="pce", irc_policy="balance")),
    ("pce+primary", dict(control_plane="pce", irc_policy="primary")),
    ("alt-static", dict(control_plane="alt", miss_policy="queue")),
    ("nerd-static", dict(control_plane="nerd")),
)

#: Access-link rate used so utilization is observable (10 Mbit/s: a 1200-byte
#: packet serialises in ~1 ms, comparable to the access propagation delays).
DEFAULT_ACCESS_RATE_BPS = 10_000_000.0


@dataclass
class E4Row:
    system: str
    flows: int
    inbound_shares: tuple
    inbound_imbalance: float
    inbound_peak_util: float
    outbound_shares: tuple
    outbound_imbalance: float
    outbound_peak_util: float

    def as_tuple(self):
        inbound = "/".join(f"{share:.2f}" for share in self.inbound_shares)
        outbound = "/".join(f"{share:.2f}" for share in self.outbound_shares)
        return (self.system, self.flows, inbound, round(self.inbound_imbalance, 3),
                round(self.inbound_peak_util, 3), outbound,
                round(self.outbound_imbalance, 3),
                round(self.outbound_peak_util, 3))


HEADERS = ("system", "flows", "in_shares", "in_imbalance", "in_util",
           "out_shares", "out_imbalance", "out_util")


def _imbalance(shares):
    positive = [s for s in shares]
    if not positive or sum(positive) == 0:
        return 1.0
    mean = sum(positive) / len(positive)
    return max(positive) / mean


def run_e4(num_sites=5, providers_per_site=2, num_flows=40, seed=53,
           variants=DEFAULT_VARIANTS, dest_site=0, source_site=1,
           pacing="shaped", access_rate_bps=DEFAULT_ACCESS_RATE_BPS):
    rows = []
    for label, overrides in variants:
        config = ScenarioConfig(num_sites=num_sites, seed=seed,
                                providers_per_site=providers_per_site,
                                access_rate_bps=access_rate_bps,
                                **overrides)
        scenario = build_scenario(config)
        workload = WorkloadConfig(num_flows=num_flows, arrival_rate=10.0,
                                  dest_site=dest_site, packets_per_flow=8,
                                  payload_bytes=1200, pacing=pacing,
                                  elephant_threshold=5)
        records = run_workload(scenario, workload)
        destination = scenario.topology.sites[dest_site]
        source = scenario.topology.sites[source_site]
        inbound = scenario.access_flow_byte_shares(destination, direction="in")
        outbound = scenario.access_flow_byte_shares(source, direction="out")
        in_util = scenario.access_link_utilization(destination, direction="in")
        out_util = scenario.access_link_utilization(source, direction="out")
        rows.append(E4Row(system=label, flows=len(records),
                          inbound_shares=tuple(inbound),
                          inbound_imbalance=_imbalance(inbound),
                          inbound_peak_util=max(in_util, default=0.0),
                          outbound_shares=tuple(outbound),
                          outbound_imbalance=_imbalance(outbound),
                          outbound_peak_util=max(out_util, default=0.0)))
    return rows


def check_shape(rows):
    failures = []
    by_system = {row.system: row for row in rows}
    balanced = by_system.get("pce+balance")
    primary = by_system.get("pce+primary")
    static = by_system.get("alt-static") or by_system.get("nerd-static")
    if balanced and balanced.inbound_imbalance > 1.5:
        failures.append(
            f"pce+balance inbound imbalance {balanced.inbound_imbalance:.2f} too high")
    if balanced and primary and \
            not primary.inbound_imbalance > balanced.inbound_imbalance:
        failures.append("primary policy not more imbalanced than balance policy")
    if balanced and static and \
            not static.inbound_imbalance > balanced.inbound_imbalance:
        failures.append("static baseline not more imbalanced than pce+balance")
    if balanced and balanced.inbound_peak_util <= 0.0:
        failures.append("rated access links saw no measurable utilization")
    return failures
