"""E2 — hiding the mapping resolution inside the DNS resolution (claim C2).

The paper's target: ``(T_DNS + T_map) ≈ T_DNS``.  For every flow we measure

- ``t_dns``   — what the host saw (stub query to answer);
- ``t_extra`` — how long *after* the DNS answer the forward mapping became
  usable at the source site's ITRs (0 when the mapping won the race).

For the PCE control plane the mapping rides the DNS reply, so ``t_extra``
must be ~0 at every DNS-hierarchy depth; for the pull baselines the whole
resolution happens after the first packet misses, so ``t_extra`` equals the
mapping system's resolution latency and grows with overlay size.
"""

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.metrics.stats import summarize


@dataclass
class E2Row:
    system: str
    dns_depth: int
    flows: int
    t_dns_mean: float
    t_extra_mean: float
    t_extra_p95: float
    overlap_achieved: float  # fraction of flows whose mapping beat the answer

    def as_tuple(self):
        return (self.system, self.dns_depth, self.flows,
                round(self.t_dns_mean, 5), round(self.t_extra_mean, 5),
                round(self.t_extra_p95, 5), round(self.overlap_achieved, 3))


HEADERS = ("system", "dns_depth", "flows", "t_dns_mean", "t_extra_mean",
           "t_extra_p95", "overlap")


def run_e2(num_sites=6, num_flows=25, depths=(0, 2), seed=23,
           systems=("pce", "alt", "cons")):
    rows = []
    for system in systems:
        for depth in depths:
            config = ScenarioConfig(control_plane=system, num_sites=num_sites,
                                    seed=seed, dns_extra_levels=depth,
                                    dns_use_cache=False, miss_policy="queue")
            scenario = build_scenario(config)
            workload = WorkloadConfig(num_flows=num_flows, arrival_rate=4.0,
                                      packets_per_flow=2)
            records = run_workload(scenario, workload)
            rows.append(_measure(system, depth, scenario, records))
    return rows


def _mapping_ready_time(scenario, record):
    """When the forward mapping became usable at the source after this flow."""
    if record.destination is None:
        return None
    if scenario.config.control_plane == "pce":
        site = scenario.topology.site_of_eid(record.source)
        pce = scenario.control_plane.pces[site.index]
        candidates = [when for when, _src, prefix in pce.stats.push_timeline
                      if prefix.contains(record.destination)
                      and record.started_at <= when]
        return min(candidates) if candidates else None
    # Reactive systems: the itr.mapping-resolved trace after the first miss.
    for trace in scenario.sim.trace.of_kind("itr.mapping-resolved"):
        if trace.time >= record.dns_done_at and \
                trace.detail.get("eid") == str(record.destination):
            return trace.time
    return None


def _measure(system, depth, scenario, records):
    t_dns = []
    t_extra = []
    overlapped = 0
    measured = 0
    for record in records:
        if record.failed or record.dns_elapsed is None:
            continue
        ready = _mapping_ready_time(scenario, record)
        if ready is None:
            continue  # cache hit from an earlier flow: no resolution to time
        measured += 1
        t_dns.append(record.dns_elapsed)
        extra = max(0.0, ready - record.dns_done_at)
        t_extra.append(extra)
        if extra <= 1e-6:
            overlapped += 1
    dns_summary = summarize(t_dns)
    extra_summary = summarize(t_extra)
    return E2Row(system=system, dns_depth=depth, flows=measured,
                 t_dns_mean=dns_summary["mean"],
                 t_extra_mean=extra_summary["mean"],
                 t_extra_p95=extra_summary["p95"],
                 overlap_achieved=overlapped / measured if measured else 0.0)


def check_shape(rows):
    failures = []
    for row in rows:
        if row.system == "pce":
            if row.overlap_achieved < 0.99:
                failures.append(
                    f"pce overlap {row.overlap_achieved} < 1 at depth {row.dns_depth}")
            if row.t_extra_mean > 0.001:
                failures.append(f"pce t_extra {row.t_extra_mean} not ~0")
        else:
            if row.flows and row.t_extra_mean <= 0.001:
                failures.append(f"{row.system} hid its resolution unexpectedly")
    pce_rows = sorted((r for r in rows if r.system == "pce"), key=lambda r: r.dns_depth)
    if len(pce_rows) >= 2 and pce_rows[0].t_dns_mean >= pce_rows[-1].t_dns_mean:
        failures.append("deeper DNS hierarchy did not increase T_DNS")
    return failures
