"""Small, dependency-free statistics helpers."""

import math


def percentile(values, q):
    """The *q*-th percentile (0-100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    # a + f*(b-a) rather than (1-f)*a + f*b: exact when a == b, and never
    # escapes [a, b] to floating-point rounding.
    return ordered[low] + fraction * (ordered[high] - ordered[low])


def mean(values):
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values):
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / (len(values) - 1))


def confidence_interval(values, z=1.96):
    """(low, high) normal-approximation CI of the mean."""
    if not values:
        raise ValueError("confidence interval of empty sequence")
    centre = mean(values)
    if len(values) < 2:
        return (centre, centre)
    margin = z * stdev(values) / math.sqrt(len(values))
    return (centre - margin, centre + margin)


def summarize(values):
    """Dict with count/mean/median/p95/min/max/stdev for reporting."""
    if not values:
        return {"count": 0, "mean": float("nan"), "median": float("nan"),
                "p95": float("nan"), "min": float("nan"), "max": float("nan"),
                "stdev": float("nan")}
    return {
        "count": len(values),
        "mean": mean(values),
        "median": percentile(values, 50),
        "p95": percentile(values, 95),
        "min": min(values),
        "max": max(values),
        "stdev": stdev(values),
    }
