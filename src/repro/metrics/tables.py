"""Plain-text table rendering for benchmark and example output."""


def _format_cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.6f}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render an aligned monospace table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[index])
                            for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name, pairs, x_label="x", y_label="y"):
    """Render an (x, y) series as a two-column table."""
    return format_table([x_label, y_label], pairs, title=name)
