"""Statistics and reporting helpers used by tests, benchmarks and examples."""

from repro.metrics.stats import confidence_interval, percentile, summarize
from repro.metrics.tables import format_series, format_table

__all__ = ["confidence_interval", "format_series", "format_table", "percentile",
           "summarize"]
