"""Named, reproducible random-number streams.

Every stochastic component of the simulator draws from its own named stream
so adding a new component never perturbs the draws seen by existing ones.
Streams are derived deterministically from (master seed, stream name).
"""

import hashlib
import random


class RandomStreams:
    """Factory of independent :class:`random.Random` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("topology")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the stream for *name*, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name):
        """Return a new :class:`RandomStreams` whose master seed derives from *name*.

        Useful for giving each replication of an experiment its own universe
        of streams.
        """
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def names(self):
        """Names of the streams created so far (for diagnostics)."""
        return sorted(self._streams)

    #: The master seed is immutable identity, not run state.
    _SNAPSHOT_EXEMPT = ("seed",)

    def snapshot_state(self):
        """Per-stream generator states (for world-reuse checkpointing)."""
        return {name: stream.getstate() for name, stream in self._streams.items()}

    def restore_state(self, state):
        """Restore every checkpointed stream; drop streams created since.

        Dropped streams are re-derived deterministically from
        ``(seed, name)`` on next use, so a restored world draws exactly the
        same values a freshly built one would.
        """
        for name in list(self._streams):
            if name in state:
                self._streams[name].setstate(state[name])
            else:
                del self._streams[name]
