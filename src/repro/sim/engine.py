"""The simulation engine: a deterministic time-ordered event queue."""

import heapq

from repro.sim.errors import EmptySchedule
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.periodic import PeriodicFire, PeriodicTask
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

#: Priority used for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for bookkeeping that must run before normal events at a time.
PRIORITY_URGENT = 0

#: Version of the engine's blob-serializable state contract.  A settled
#: simulator (no pending foreground events) is plain picklable data: clock,
#: sequence counters, RNG stream states, tracer, and armed periodic-task
#: timers riding the queue as :class:`PeriodicFire` entries.  World-snapshot
#: blobs embed this version; bump it whenever that serialized shape changes
#: (queue layout, checkpoint tuple format, periodic-task state) so stale
#: blobs written by an older engine are rebuilt instead of restored.
#:
#: v2: the (time, priority, sequence, entry) tuple heap became a heap of
#: distinct timestamps plus per-timestamp :class:`_Bucket` entry lists.
STATE_VERSION = 2


class _Bucket:
    """Every entry scheduled for one timestamp, in (priority, insertion) order.

    Scheduling appends; consumption advances a read index instead of
    popping, so a bucket is one allocation per *distinct* timestamp no
    matter how many events share it.  Urgent entries are rare, so their
    list is created lazily.
    """

    __slots__ = ("urgent", "normal", "ui", "ni")

    def __init__(self):
        self.urgent = None
        self.normal = []
        self.ui = 0
        self.ni = 0

    def add_urgent(self, entry):
        if self.urgent is None:
            self.urgent = []
        self.urgent.append(entry)

    def next_live(self):
        """The next unconsumed live entry, or None when exhausted.

        Stale :class:`PeriodicFire` entries (invalidated by a re-arm or
        stop) are consumed silently along the way, mirroring how the old
        tuple heap discarded them at pop time.
        """
        urgent = self.urgent
        if urgent is not None:
            while self.ui < len(urgent):
                entry = urgent[self.ui]
                if type(entry) is PeriodicFire and not entry.live:
                    self.ui += 1
                    continue
                return entry
        normal = self.normal
        while self.ni < len(normal):
            entry = normal[self.ni]
            if type(entry) is PeriodicFire and not entry.live:
                self.ni += 1
                continue
            return entry
        return None

    def consume(self):
        """Consume the entry :meth:`next_live` just returned."""
        if self.urgent is not None and self.ui < len(self.urgent):
            self.ui += 1
        else:
            self.ni += 1


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same time are processed in (priority, insertion
    order), so behaviour is fully reproducible for a given seed.

    The queue is two-level: a heap of distinct timestamps over per-timestamp
    buckets of entries in insertion order.  Same-time scheduling — the
    dominant case once processes chain zero-delay events — is a dict lookup
    and a list append instead of a heap sift, and draining a burst of
    same-time events advances a read index instead of re-heapifying.

    The queue holds two kinds of entries: *foreground* events (ordinary
    events, timeouts, process resumptions — finite work the simulation must
    complete) and *background* ticks of registered
    :class:`~repro.sim.periodic.PeriodicTask` objects.  Both share one queue
    so their interleaving is deterministic, but only foreground entries
    count as pending work: ``run()`` with no ``until`` drains foreground
    events (firing any background ticks that fall before them in time) and
    stops when no foreground work remains, even while periodic tasks stay
    armed.  That is what makes worlds with perpetual periodic processes
    settle-able and therefore checkpointable.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RandomStreams`.
    tracing:
        When False the tracer starts disabled (sweep runs skip per-event
        record allocation entirely); it can be re-enabled via
        ``sim.trace.enable()``.
    """

    def __init__(self, seed=0, tracing=True):
        self.now = 0.0
        self.rng = RandomStreams(seed)
        self.trace = Tracer(enabled=tracing)
        self._times = []
        self._buckets = {}
        self._sequence = 0
        self._processed_events = 0
        self._foreground = 0
        self._periodic = []

    # ------------------------------------------------------------------ #
    # Event construction helpers
    # ------------------------------------------------------------------ #

    def event(self, name=None):
        """A fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None, name=None):
        """An event firing *delay* time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator, name=None):
        """Start *generator* as a :class:`Process` (begins at the current time)."""
        return Process(self, generator, name=name)

    def periodic(self, callback, period, name=None):
        """Register a :class:`PeriodicTask` running *callback* every *period*.

        The task is created disarmed; call ``.start()`` on the result to
        schedule its first tick (one full period from then).
        """
        return PeriodicTask(self, callback, period, name=name)

    def any_of(self, events):
        """Event firing when any of *events* fires."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event firing when all of *events* have fired."""
        return AllOf(self, events)

    def call_in(self, delay, callback, *args):
        """Run ``callback(*args)`` after *delay* time units."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _event: callback(*args))
        return event

    def call_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time *when* (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at({when}) is in the past (now={self.now})")
        return self.call_in(when - self.now, callback, *args)

    # ------------------------------------------------------------------ #
    # Scheduling and the main loop
    # ------------------------------------------------------------------ #

    def _schedule(self, event, delay=0.0, priority=PRIORITY_NORMAL):
        self._sequence += 1
        self._foreground += 1
        when = self.now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = self._buckets[when] = _Bucket()
            heapq.heappush(self._times, when)
        if priority == PRIORITY_NORMAL:
            bucket.normal.append(event)
        else:
            bucket.add_urgent(event)

    def _register_periodic(self, task):
        self._periodic.append(task)

    def _schedule_periodic(self, task, when):
        """Push a background tick entry for *task*; returns its sequence."""
        sequence = self._sequence = self._sequence + 1
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = self._buckets[when] = _Bucket()
            heapq.heappush(self._times, when)
        bucket.normal.append(PeriodicFire(task, task._epoch))
        return sequence

    @property
    def periodic_tasks(self):
        """Registered periodic tasks, in registration order."""
        return tuple(self._periodic)

    @property
    def pending_foreground(self):
        """Number of scheduled foreground events (diagnostic)."""
        return self._foreground

    def _next(self, consume):
        """The (time, entry) of the next live entry, or ``(None, None)``.

        Exhausted buckets are retired and stale background entries
        discarded as a side effect, whether or not the entry is consumed.
        """
        times, buckets = self._times, self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            entry = bucket.next_live()
            if entry is None:
                heapq.heappop(times)
                del buckets[when]
                continue
            if consume:
                bucket.consume()
            return when, entry
        return None, None

    def peek(self):
        """Time of the next scheduled event, or ``float('inf')`` if none.

        Stale background entries (ticks invalidated by a re-arm or stop)
        are discarded from the head of the queue as a side effect.
        """
        when, entry = self._next(False)
        return float("inf") if entry is None else when

    def step(self):
        """Process exactly one event or periodic tick, whichever is next.

        Stale background entries are skipped without advancing the clock;
        raises :class:`EmptySchedule` when nothing (live) is scheduled.
        """
        when, entry = self._next(True)
        if entry is None:
            raise EmptySchedule("no events scheduled")
        self.now = when
        self._processed_events += 1
        if type(entry) is PeriodicFire:
            entry.task._fire()
        else:
            self._foreground -= 1
            entry._run_callbacks()

    def run(self, until=None):
        """Run until foreground work drains, or simulated time exceeds *until*.

        With no *until*, events are processed in time order — including
        ticks of armed periodic tasks that fall before pending events —
        until no foreground event remains; armed periodic tasks alone do
        not keep the run alive.  When *until* is given, everything
        (foreground and periodic) up to and including *until* is processed
        and the clock is left exactly at *until*.
        """
        if until is None:
            while self._foreground:
                self.step()
            return self.now
        if until < self.now:
            raise ValueError(f"run(until={until}) is in the past (now={self.now})")
        while True:
            when, entry = self._next(False)
            if entry is None or when > until:
                break
            self._buckets[when].consume()
            self.now = when
            self._processed_events += 1
            if type(entry) is PeriodicFire:
                entry.task._fire()
            else:
                self._foreground -= 1
                entry._run_callbacks()
        self.now = until
        return self.now

    @property
    def processed_events(self):
        """Number of events and periodic ticks processed so far (diagnostic)."""
        return self._processed_events

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: The RNG streams and the tracer are independently checkpointed
    #: components (worldbuild captures them alongside the engine).
    _SNAPSHOT_EXEMPT = ("rng", "trace")

    @property
    def serializable(self):
        """True when the engine meets the blob-serialization contract.

        Pending foreground events hold live callbacks and generator frames
        — objects outside the :data:`STATE_VERSION` contract — so only a
        settled simulator (foreground drained; armed periodic tasks are
        fine, their timers are plain data) may be serialized into a
        world-snapshot blob.
        """
        return self._foreground == 0

    def snapshot_state(self):
        """Checkpoint the clock, counters and periodic-task timers.

        Pending foreground events hold live generators and cannot be
        replayed, so the foreground queue must be drained first (the
        worldbuild layer settles the simulation before capturing).  Armed
        periodic tasks are fine: their timer state is plain data, captured
        here and re-armed on restore.
        """
        if self._foreground:
            raise RuntimeError(
                f"cannot checkpoint with {self._foreground} pending foreground events")
        return (self.now, self._sequence, self._processed_events,
                tuple(task.snapshot_state() for task in self._periodic))

    def restore_state(self, state):
        """Restore counters and re-arm every checkpointed periodic task.

        The queue is rebuilt to hold exactly the background tick entries
        the checkpoint captured — same fire times, inserted in checkpointed
        sequence order, so same-time ties keep breaking identically to the
        fresh build.
        """
        self.now, self._sequence, self._processed_events, periodic = state
        self._times.clear()
        self._buckets.clear()
        self._foreground = 0
        if len(periodic) != len(self._periodic):
            raise RuntimeError(
                f"checkpoint has {len(periodic)} periodic tasks, "
                f"world has {len(self._periodic)}")
        for task, task_state in zip(self._periodic, periodic, strict=True):
            task.restore_state(task_state)
        armed = sorted((task for task in self._periodic if task.armed),
                       key=lambda task: task._entry_sequence)
        for task in armed:
            bucket = self._buckets.get(task.next_fire)
            if bucket is None:
                bucket = self._buckets[task.next_fire] = _Bucket()
                heapq.heappush(self._times, task.next_fire)
            bucket.normal.append(PeriodicFire(task, task._epoch))
