"""The simulation engine: a deterministic time-ordered event queue."""

import heapq

from repro.sim.errors import EmptySchedule
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.periodic import PeriodicFire, PeriodicTask
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

#: Priority used for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for bookkeeping that must run before normal events at a time.
PRIORITY_URGENT = 0

#: Version of the engine's blob-serializable state contract.  A settled
#: simulator (no pending foreground events) is plain picklable data: clock,
#: sequence counters, RNG stream states, tracer, and armed periodic-task
#: timers riding the heap as :class:`PeriodicFire` entries.  World-snapshot
#: blobs embed this version; bump it whenever that serialized shape changes
#: (heap entry layout, checkpoint tuple format, periodic-task state) so
#: stale blobs written by an older engine are rebuilt instead of restored.
STATE_VERSION = 1


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same time are processed in (priority, insertion
    order), so behaviour is fully reproducible for a given seed.

    The queue holds two kinds of entries: *foreground* events (ordinary
    events, timeouts, process resumptions — finite work the simulation must
    complete) and *background* ticks of registered
    :class:`~repro.sim.periodic.PeriodicTask` objects.  Both share one heap
    so their interleaving is deterministic, but only foreground entries
    count as pending work: ``run()`` with no ``until`` drains foreground
    events (firing any background ticks that fall before them in time) and
    stops when no foreground work remains, even while periodic tasks stay
    armed.  That is what makes worlds with perpetual periodic processes
    settle-able and therefore checkpointable.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RandomStreams`.
    tracing:
        When False the tracer starts disabled (sweep runs skip per-event
        record allocation entirely); it can be re-enabled via
        ``sim.trace.enable()``.
    """

    def __init__(self, seed=0, tracing=True):
        self.now = 0.0
        self.rng = RandomStreams(seed)
        self.trace = Tracer(enabled=tracing)
        self._queue = []
        self._sequence = 0
        self._processed_events = 0
        self._foreground = 0
        self._periodic = []

    # ------------------------------------------------------------------ #
    # Event construction helpers
    # ------------------------------------------------------------------ #

    def event(self, name=None):
        """A fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None, name=None):
        """An event firing *delay* time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator, name=None):
        """Start *generator* as a :class:`Process` (begins at the current time)."""
        return Process(self, generator, name=name)

    def periodic(self, callback, period, name=None):
        """Register a :class:`PeriodicTask` running *callback* every *period*.

        The task is created disarmed; call ``.start()`` on the result to
        schedule its first tick (one full period from then).
        """
        return PeriodicTask(self, callback, period, name=name)

    def any_of(self, events):
        """Event firing when any of *events* fires."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event firing when all of *events* have fired."""
        return AllOf(self, events)

    def call_in(self, delay, callback, *args):
        """Run ``callback(*args)`` after *delay* time units."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _event: callback(*args))
        return event

    def call_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time *when* (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at({when}) is in the past (now={self.now})")
        return self.call_in(when - self.now, callback, *args)

    # ------------------------------------------------------------------ #
    # Scheduling and the main loop
    # ------------------------------------------------------------------ #

    def _schedule(self, event, delay=0.0, priority=PRIORITY_NORMAL):
        sequence = self._sequence
        self._sequence += 1
        self._foreground += 1
        heapq.heappush(self._queue, (self.now + delay, priority, sequence, event))

    def _register_periodic(self, task):
        self._periodic.append(task)

    def _schedule_periodic(self, task, when):
        """Push a background tick entry for *task*; returns its sequence."""
        sequence = self._sequence
        self._sequence += 1
        heapq.heappush(self._queue,
                       (when, PRIORITY_NORMAL, sequence, PeriodicFire(task, task._epoch)))
        return sequence

    @property
    def periodic_tasks(self):
        """Registered periodic tasks, in registration order."""
        return tuple(self._periodic)

    @property
    def pending_foreground(self):
        """Number of scheduled foreground events (diagnostic)."""
        return self._foreground

    def peek(self):
        """Time of the next scheduled event, or ``float('inf')`` if none.

        Stale background entries (ticks invalidated by a re-arm or stop)
        are discarded from the head of the queue as a side effect.
        """
        queue = self._queue
        while queue:
            entry = queue[0][3]
            if isinstance(entry, PeriodicFire) and not entry.live:
                heapq.heappop(queue)
                continue
            return queue[0][0]
        return float("inf")

    def step(self):
        """Process exactly one event or periodic tick, whichever is next.

        Stale background entries are skipped without advancing the clock;
        raises :class:`EmptySchedule` when nothing (live) is scheduled.
        """
        while self._queue:
            when, _priority, _sequence, entry = heapq.heappop(self._queue)
            if isinstance(entry, PeriodicFire):
                if not entry.live:
                    continue
                self.now = when
                self._processed_events += 1
                entry.task._fire()
                return
            self.now = when
            self._foreground -= 1
            self._processed_events += 1
            entry._run_callbacks()
            return
        raise EmptySchedule("no events scheduled")

    def run(self, until=None):
        """Run until foreground work drains, or simulated time exceeds *until*.

        With no *until*, events are processed in time order — including
        ticks of armed periodic tasks that fall before pending events —
        until no foreground event remains; armed periodic tasks alone do
        not keep the run alive.  When *until* is given, everything
        (foreground and periodic) up to and including *until* is processed
        and the clock is left exactly at *until*.
        """
        if until is None:
            while self._foreground:
                self.step()
            return self.now
        if until < self.now:
            raise ValueError(f"run(until={until}) is in the past (now={self.now})")
        while self.peek() <= until:
            self.step()
        self.now = until
        return self.now

    @property
    def processed_events(self):
        """Number of events and periodic ticks processed so far (diagnostic)."""
        return self._processed_events

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: The RNG streams and the tracer are independently checkpointed
    #: components (worldbuild captures them alongside the engine).
    _SNAPSHOT_EXEMPT = ("rng", "trace")

    @property
    def serializable(self):
        """True when the engine meets the blob-serialization contract.

        Pending foreground events hold live callbacks and generator frames
        — objects outside the :data:`STATE_VERSION` contract — so only a
        settled simulator (foreground drained; armed periodic tasks are
        fine, their timers are plain data) may be serialized into a
        world-snapshot blob.
        """
        return self._foreground == 0

    def snapshot_state(self):
        """Checkpoint the clock, counters and periodic-task timers.

        Pending foreground events hold live generators and cannot be
        replayed, so the foreground queue must be drained first (the
        worldbuild layer settles the simulation before capturing).  Armed
        periodic tasks are fine: their timer state is plain data, captured
        here and re-armed on restore.
        """
        if self._foreground:
            raise RuntimeError(
                f"cannot checkpoint with {self._foreground} pending foreground events")
        return (self.now, self._sequence, self._processed_events,
                tuple(task.snapshot_state() for task in self._periodic))

    def restore_state(self, state):
        """Restore counters and re-arm every checkpointed periodic task.

        The queue is rebuilt to hold exactly the background tick entries
        the checkpoint captured — same fire times *and* same sequence
        numbers, so same-time ties keep breaking identically to the fresh
        build.
        """
        self.now, self._sequence, self._processed_events, periodic = state
        self._queue.clear()
        self._foreground = 0
        if len(periodic) != len(self._periodic):
            raise RuntimeError(
                f"checkpoint has {len(periodic)} periodic tasks, "
                f"world has {len(self._periodic)}")
        for task, task_state in zip(self._periodic, periodic, strict=True):
            task.restore_state(task_state)
            if task.armed:
                heapq.heappush(self._queue,
                               (task.next_fire, PRIORITY_NORMAL,
                                task._entry_sequence,
                                PeriodicFire(task, task._epoch)))
