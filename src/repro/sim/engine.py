"""The simulation engine: a deterministic time-ordered event queue."""

import heapq

from repro.sim.errors import EmptySchedule
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

#: Priority used for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for bookkeeping that must run before normal events at a time.
PRIORITY_URGENT = 0


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same time are processed in (priority, insertion
    order), so behaviour is fully reproducible for a given seed.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RandomStreams`.
    tracing:
        When False the tracer starts disabled (sweep runs skip per-event
        record allocation entirely); it can be re-enabled via
        ``sim.trace.enable()``.
    """

    def __init__(self, seed=0, tracing=True):
        self.now = 0.0
        self.rng = RandomStreams(seed)
        self.trace = Tracer(enabled=tracing)
        self._queue = []
        self._sequence = 0
        self._processed_events = 0

    # ------------------------------------------------------------------ #
    # Event construction helpers
    # ------------------------------------------------------------------ #

    def event(self, name=None):
        """A fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None, name=None):
        """An event firing *delay* time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator, name=None):
        """Start *generator* as a :class:`Process` (begins at the current time)."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        """Event firing when any of *events* fires."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event firing when all of *events* have fired."""
        return AllOf(self, events)

    def call_in(self, delay, callback, *args):
        """Run ``callback(*args)`` after *delay* time units."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _event: callback(*args))
        return event

    def call_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time *when* (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at({when}) is in the past (now={self.now})")
        return self.call_in(when - self.now, callback, *args)

    # ------------------------------------------------------------------ #
    # Scheduling and the main loop
    # ------------------------------------------------------------------ #

    def _schedule(self, event, delay=0.0, priority=PRIORITY_NORMAL):
        sequence = self._sequence
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, priority, sequence, event))

    def peek(self):
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process exactly one event; raises :class:`EmptySchedule` if none."""
        if not self._queue:
            raise EmptySchedule("no events scheduled")
        when, _priority, _sequence, event = heapq.heappop(self._queue)
        self.now = when
        self._processed_events += 1
        event._run_callbacks()

    def run(self, until=None):
        """Run until the queue drains, or simulated time exceeds *until*.

        When *until* is given, the clock is left exactly at *until* even if
        the next event lies beyond it.
        """
        if until is None:
            while self._queue:
                self.step()
            return self.now
        if until < self.now:
            raise ValueError(f"run(until={until}) is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self.now = until
        return self.now

    @property
    def processed_events(self):
        """Number of events processed so far (diagnostic)."""
        return self._processed_events

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    def snapshot_state(self):
        """Checkpoint the clock and counters (requires a drained queue).

        Pending events hold live generators and cannot be replayed, so a
        world is only checkpointable when nothing is scheduled — the
        worldbuild layer settles the simulation first and refuses to cache
        worlds with perpetual background processes.
        """
        if self._queue:
            raise RuntimeError(
                f"cannot checkpoint with {len(self._queue)} pending events")
        return (self.now, self._sequence, self._processed_events)

    def restore_state(self, state):
        self.now, self._sequence, self._processed_events = state
        self._queue.clear()
