"""Discrete-event simulation kernel.

This package provides the simulation substrate used by every other layer of
the reproduction: a deterministic event queue (:class:`~repro.sim.engine.Simulator`),
generator-based processes (:class:`~repro.sim.process.Process`), engine-owned
checkpointable periodic tasks (:class:`~repro.sim.periodic.PeriodicTask`),
named and reproducible random streams (:class:`~repro.sim.rng.RandomStreams`),
and a structured event tracer (:class:`~repro.sim.trace.Tracer`).

The kernel is intentionally small and fully synchronous: a single priority
queue orders events by (time, priority, sequence), so two runs with the same
seed produce byte-identical traces.
"""

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError, StopProcess
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.periodic import PeriodicTask
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "PeriodicTask",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "StopProcess",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
