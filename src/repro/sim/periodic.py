"""Engine-owned periodic tasks: checkpointable recurring callbacks.

A :class:`PeriodicTask` is the declarative replacement for the
``while True: work(); yield sim.timeout(period)`` generator idiom.  The
generator form has two structural problems for world reuse:

- a perpetual loop keeps the event queue non-empty forever, so a world
  running one can never be "settled" and checkpointed;
- the loop's position lives in an opaque generator frame, which cannot be
  snapshotted or restored.

A periodic task instead keeps all of its timing state in plain attributes
(``armed``, ``next_fire``, ``ticks``) and registers itself with the owning
:class:`~repro.sim.engine.Simulator`.  Its fires travel through the same
time/priority/sequence-ordered heap as ordinary events — so interleaving
with normal work is deterministic — but they are tagged *background*: the
engine's drain loop (``run()`` with no ``until``) does not treat an armed
task as pending work, and its checkpoint captures and re-arms task timers
instead of refusing to snapshot.

Tasks are created through :meth:`Simulator.periodic` and arm with
:meth:`PeriodicTask.start`, which schedules the first tick one full period
after the current time (a tick observes the world as it is *when the tick
fires*, so there is nothing useful for it to do at arm time).  The callback
runs with the clock at the fire time; the task re-arms itself one period
later before invoking the callback, so a callback may call :meth:`stop`
to cancel the rearm.
"""


class PeriodicFire:
    """Heap entry for one scheduled tick of a :class:`PeriodicTask`.

    Entries are invalidated (not removed) when their task re-arms or
    stops: each arm bumps the task's epoch, and a popped entry whose epoch
    no longer matches is silently discarded by the engine.
    """

    __slots__ = ("task", "epoch")

    def __init__(self, task, epoch):
        self.task = task
        self.epoch = epoch

    @property
    def live(self):
        """True when this entry is the task's current scheduled tick."""
        return self.task.armed and self.epoch == self.task._epoch

    def __repr__(self):
        state = "live" if self.live else "stale"
        return f"<PeriodicFire {self.task.name} {state}>"


class PeriodicTask:
    """A recurring callback whose timer state lives in the engine.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`; the task registers
        itself on construction so engine checkpoints enumerate it.
    callback:
        Zero-argument callable invoked at every tick.
    period:
        Simulated seconds between ticks (must be positive).
    name:
        Label for diagnostics and ``repr``.
    """

    __slots__ = ("sim", "callback", "period", "name", "ticks", "armed",
                 "next_fire", "_epoch", "_entry_sequence")

    def __init__(self, sim, callback, period, name=None):
        if period <= 0:
            raise ValueError(f"periodic task period must be positive, got {period}")
        self.sim = sim
        self.callback = callback
        self.period = period
        self.name = name or getattr(callback, "__name__", "periodic")
        self.ticks = 0
        self.armed = False
        self.next_fire = None
        self._epoch = 0
        self._entry_sequence = None
        sim._register_periodic(self)

    def __repr__(self):
        state = f"armed@{self.next_fire:.6f}" if self.armed else "stopped"
        return f"<PeriodicTask {self.name} {state} period={self.period}>"

    def start(self, first_fire=None):
        """Arm the task; idempotent while armed.

        The first tick fires at ``now + period`` unless *first_fire* gives
        an explicit absolute time (>= now).  Returns the task.
        """
        if self.armed:
            return self
        when = self.sim.now + self.period if first_fire is None else first_fire
        if when < self.sim.now:
            raise ValueError(
                f"first fire {when} is in the past (now={self.sim.now})")
        self._arm(when)
        return self

    def stop(self):
        """Disarm the task; the pending tick (if any) is invalidated."""
        self.armed = False
        self.next_fire = None
        self._epoch += 1

    def _arm(self, when):
        self.armed = True
        self.next_fire = when
        self._epoch += 1
        self._entry_sequence = self.sim._schedule_periodic(self, when)

    def _fire(self):
        """One tick: re-arm first (so the callback may stop()), then run."""
        self.ticks += 1
        self.armed = False
        self._arm(self.next_fire + self.period)
        self.callback()

    # ------------------------------------------------------------------ #
    # Checkpointing (driven by the engine's snapshot/restore)
    # ------------------------------------------------------------------ #

    #: Construction-time wiring: owning sim, the callback and its cadence.
    _SNAPSHOT_EXEMPT = ("sim", "callback", "period", "name")

    def snapshot_state(self):
        """Timer state: (armed, next_fire, ticks, heap-entry sequence).

        The sequence number of the pending heap entry is captured so a
        restore can rebuild an entry that sorts *identically* to the one a
        fresh build produced — same-time ties then break the same way in
        fresh and restored worlds.
        """
        return (self.armed, self.next_fire, self.ticks, self._entry_sequence)

    def restore_state(self, state):
        """Restore timer fields; the engine re-pushes the heap entry."""
        self.armed, self.next_fire, self.ticks, self._entry_sequence = state
        self._epoch += 1
