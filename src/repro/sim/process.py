"""Generator-based simulated processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Each yield suspends the process until the event fires; the event's
value is sent back into the generator (or its exception thrown).  A process
is itself an event that fires with the generator's return value, so processes
can wait on each other::

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    def supervisor(sim):
        result = yield sim.process(worker(sim))
        assert result == "done"
"""

from repro.sim.errors import SimulationError, StopProcess
from repro.sim.events import Event


class Interrupt(SimulationError):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """An event representing the lifetime of a running generator."""

    __slots__ = ("generator", "_target", "_label")

    def __init__(self, sim, generator, name=None):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target = None
        self._label = self.name
        # Bootstrap: resume once at the current time.
        bootstrap = Event(sim, name=f"{self._label}:start")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self._label}")
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
            self._target = None
        poke = Event(self.sim, name=f"{self._label}:interrupt")
        poke.callbacks.append(lambda _event: self._step(throw=Interrupt(cause)))
        poke.succeed()

    def _resume(self, event):
        self._target = None
        if not event.ok:
            self._step(throw=event.exception)
        else:
            self._step(value=event.value)

    def _step(self, value=None, throw=None):
        if self._triggered:
            return
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # Uncaught interrupt terminates the process with its cause.
            self.generator.close()
            self.succeed(interrupt.cause)
            return
        except Exception as exc:
            # Any other uncaught exception fails the process; waiters get the
            # exception thrown into them, mirroring how awaiting a failed
            # coroutine behaves.
            self.sim.trace.record(self.sim.now, self._label, "process.failed",
                                  error=repr(exc))
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.generator.close()
            self.fail(SimulationError(f"process {self._label} yielded non-event {target!r}"))
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError(f"process {self._label} yielded foreign event {target!r}"))
            return
        self._target = target
        if target.processed:
            # Already fired: resume immediately via a zero-delay event to
            # preserve run-to-completion semantics.
            poke = Event(self.sim, name=f"{self._label}:poke")
            poke.callbacks.append(lambda _event: self._resume(target))
            poke.succeed()
        else:
            target.callbacks.append(self._resume)
