"""Exceptions raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class StopProcess(Exception):
    """Raised inside a process generator to terminate it early.

    The value passed becomes the process' result, mirroring a plain
    ``return`` from the generator.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed twice."""


class EmptySchedule(SimulationError):
    """``run(until=...)`` was asked to advance but no events remain."""
