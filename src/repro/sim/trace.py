"""Structured event tracing.

The tracer records ``(time, source, kind, detail)`` tuples.  Experiments use
it both to verify protocol behaviour (e.g. the Fig. 1 step ordering) and to
derive metrics that are awkward to maintain as counters.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceRecord:
    """A single traced occurrence."""

    time: float
    source: str
    kind: str
    detail: dict = field(default_factory=dict)

    def __str__(self):
        details = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] {self.source:<24} {self.kind:<28} {details}"


class Tracer:
    """Collects :class:`TraceRecord` objects, with optional category filters.

    By default everything is recorded.  Call :meth:`enable_only` to restrict
    recording to a set of ``kind`` prefixes (cheap substring-free check), or
    :meth:`disable` to drop everything — a disabled tracer's :meth:`record`
    is a single attribute check, which is what lets large parameter sweeps
    run the data path without paying for per-packet record allocation.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.records = []
        self._enabled_prefixes = None
        self._subscribers = []

    def enable_only(self, *prefixes):
        """Record only kinds starting with one of *prefixes* (None = all)."""
        self._enabled_prefixes = tuple(prefixes) if prefixes else None

    def disable(self):
        """Drop all subsequent records (cheapest possible ``record``)."""
        self.enabled = False

    def enable(self):
        self.enabled = True

    def subscribe(self, callback):
        """Invoke *callback(record)* for every record as it is emitted."""
        self._subscribers.append(callback)

    def record(self, time, source, kind, **detail):
        """Record an occurrence; returns the record (or None if filtered)."""
        if not self.enabled:
            return None
        if self._enabled_prefixes is not None and not kind.startswith(self._enabled_prefixes):
            return None
        entry = TraceRecord(time=time, source=str(source), kind=kind, detail=detail)
        self.records.append(entry)
        for callback in self._subscribers:
            callback(entry)
        return entry

    def of_kind(self, *kinds):
        """All records whose kind matches any of *kinds* exactly."""
        wanted = set(kinds)
        return [record for record in self.records if record.kind in wanted]

    def with_prefix(self, prefix):
        """All records whose kind starts with *prefix*."""
        return [record for record in self.records if record.kind.startswith(prefix)]

    def between(self, start, end):
        """All records with start <= time <= end."""
        return [record for record in self.records if start <= record.time <= end]

    def clear(self):
        self.records.clear()

    def snapshot_state(self):
        return (len(self.records), self.enabled, self._enabled_prefixes,
                list(self._subscribers))

    def restore_state(self, state):
        length, self.enabled, self._enabled_prefixes, subscribers = state
        del self.records[length:]
        self._subscribers = list(subscribers)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def dump(self, limit=None):
        """Human-readable multi-line rendering (for examples and debugging)."""
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(str(record) for record in rows)
