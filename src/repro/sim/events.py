"""Events: the unit of coordination between simulated processes.

An :class:`Event` is a one-shot synchronisation point.  It starts *pending*,
is *triggered* exactly once (either :meth:`Event.succeed` or
:meth:`Event.fail`), and is then *processed* by the simulator, which runs all
registered callbacks at the event's scheduled time.

Processes (see :mod:`repro.sim.process`) yield events; the kernel resumes the
process when the event fires, sending the event's value into the generator
(or throwing the failure exception).
"""

from repro.sim.errors import EventAlreadyTriggered


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = None
        self._exception = None
        self._triggered = False
        self._processed = False

    def __repr__(self):
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.6f}>"

    @property
    def triggered(self):
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self):
        """True once the simulator has run this event's callbacks."""
        return self._processed

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self):
        """The success value, or the failure exception if the event failed."""
        if self._exception is not None:
            return self._exception
        return self._value

    @property
    def exception(self):
        """The failure exception, or ``None`` if the event succeeded."""
        return self._exception

    def succeed(self, value=None, delay=0.0):
        """Trigger the event successfully, scheduling callbacks after *delay*."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception, delay=0.0):
        """Trigger the event as failed with *exception*."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self, delay)
        return self

    def _run_callbacks(self):
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed delay, carrying an optional value."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None, name=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or f"Timeout({delay})")
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class _Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim, events, name=None):
        super().__init__(sim, name=name)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._child_fired(event)
            else:
                event.callbacks.append(self._child_fired)

    def _collect(self):
        return {event: event.value for event in self.events if event.processed and event.ok}

    def _child_fired(self, event):
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any child event fires.

    The value is a dict mapping the already-processed successful children to
    their values.  A failing child fails the condition.
    """

    __slots__ = ()

    def _child_fired(self, event):
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once every child event has fired.

    The value is a dict mapping each child to its value.  The first failing
    child fails the condition immediately.
    """

    __slots__ = ()

    def _child_fired(self, event):
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())
