"""Snapshot/restore helpers for world reuse.

The worldbuild layer (:mod:`repro.experiments.worldbuild`) captures a
pristine checkpoint of every stateful component right after a scenario is
built, and restores it before each reuse so a recycled world is
byte-for-byte indistinguishable from a freshly built one.  Components
participate by implementing two methods::

    def snapshot_state(self):  # -> opaque state object
    def restore_state(self, state):  # put the object back exactly

Most implementations are a dict of attribute names built with
:func:`snapshot_attrs` / :func:`restore_attrs`.  Container values are
structure-copied on *both* capture and restore so neither the live object
nor a later run can mutate the checkpoint through shared references.
"""

from collections import defaultdict, deque


def state_copy(value):
    """Structure-copy *value*: fresh containers, shared (immutable) leaves."""
    if isinstance(value, defaultdict):
        copied = defaultdict(value.default_factory)
        for key, item in value.items():
            copied[key] = state_copy(item)
        return copied
    if isinstance(value, dict):
        return {key: state_copy(item) for key, item in value.items()}
    if isinstance(value, list):
        return [state_copy(item) for item in value]
    if isinstance(value, set):
        return set(value)
    if isinstance(value, deque):
        return deque(value)
    return value


def snapshot_attrs(obj, names):
    """A checkpoint dict of *names* attributes (structure-copied)."""
    return {name: state_copy(getattr(obj, name)) for name in names}


def restore_attrs(obj, state):
    """Restore attributes captured by :func:`snapshot_attrs`."""
    for name, value in state.items():
        setattr(obj, name, state_copy(value))
