"""Resource records and DNS constants."""

from dataclasses import dataclass

from repro.net.addresses import IPv4Address

TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_SOA = 6

RCODE_NOERROR = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3

_TYPE_NAMES = {TYPE_A: "A", TYPE_NS: "NS", TYPE_CNAME: "CNAME", TYPE_SOA: "SOA"}


def type_name(rtype):
    return _TYPE_NAMES.get(rtype, str(rtype))


def normalise_name(name):
    """Lower-case and ensure a trailing dot (fully-qualified form)."""
    name = name.lower()
    if not name.endswith("."):
        name += "."
    return name


def name_labels(name):
    """Split a normalised name into labels, dropping the root label."""
    return [label for label in normalise_name(name).split(".") if label]


def is_subdomain(name, zone_origin):
    """True if *name* is at or below *zone_origin*."""
    name = normalise_name(name)
    origin = normalise_name(zone_origin)
    if origin == ".":
        return True
    return name == origin or name.endswith("." + origin)


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record.

    ``data`` is an :class:`~repro.net.addresses.IPv4Address` for A records
    and a domain-name string for NS/CNAME records.
    """

    name: str
    rtype: int
    ttl: float
    data: object

    def __post_init__(self):
        object.__setattr__(self, "name", normalise_name(self.name))
        if self.rtype == TYPE_A:
            object.__setattr__(self, "data", IPv4Address(self.data))
        elif self.rtype in (TYPE_NS, TYPE_CNAME):
            object.__setattr__(self, "data", normalise_name(str(self.data)))

    def __str__(self):
        return f"{self.name} {int(self.ttl)} {type_name(self.rtype)} {self.data}"
