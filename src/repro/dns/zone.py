"""Authoritative zone data and lookup logic."""

from repro.dns.records import (
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    TYPE_A,
    TYPE_CNAME,
    TYPE_NS,
    ResourceRecord,
    is_subdomain,
    normalise_name,
)


class ZoneAnswer:
    """The outcome of an authoritative lookup."""

    __slots__ = ("rcode", "answers", "authorities", "additionals", "is_referral")

    def __init__(self, rcode=RCODE_NOERROR, answers=(), authorities=(), additionals=(),
                 is_referral=False):
        self.rcode = rcode
        self.answers = list(answers)
        self.authorities = list(authorities)
        self.additionals = list(additionals)
        self.is_referral = is_referral


class Zone:
    """One zone: an origin, its records, and its delegations.

    A delegation is expressed as NS records for a child name plus glue A
    records for the nameserver names.
    """

    def __init__(self, origin):
        self.origin = normalise_name(origin)
        self._records = {}
        self._delegations = {}

    def add_record(self, record):
        self._records.setdefault((record.name, record.rtype), []).append(record)
        return record

    def add_a(self, name, address, ttl=60.0):
        return self.add_record(ResourceRecord(name, TYPE_A, ttl, address))

    def add_cname(self, alias, target, ttl=60.0):
        """Register *alias* as a CNAME for *target*."""
        return self.add_record(ResourceRecord(alias, TYPE_CNAME, ttl, target))

    def delegate(self, child_origin, ns_name, glue_address, ttl=3600.0):
        """Delegate *child_origin* to a nameserver with a glue address."""
        child = normalise_name(child_origin)
        self._delegations.setdefault(child, []).append(
            (ResourceRecord(child, TYPE_NS, ttl, ns_name),
             ResourceRecord(ns_name, TYPE_A, ttl, glue_address))
        )

    def covers(self, name):
        return is_subdomain(name, self.origin)

    def _find_delegation(self, name):
        """The most specific delegation at or above *name* (below origin)."""
        name = normalise_name(name)
        best = None
        for child in self._delegations:
            if is_subdomain(name, child):
                if best is None or len(child) > len(best):
                    best = child
        return best

    def lookup(self, qname, qtype=TYPE_A):
        """Authoritative resolution of (*qname*, *qtype*) within this zone."""
        qname = normalise_name(qname)
        if not self.covers(qname):
            # Out-of-bailiwick question: refuse via NXDOMAIN (simplified).
            return ZoneAnswer(rcode=RCODE_NXDOMAIN)
        exact = self._records.get((qname, qtype))
        if exact:
            return ZoneAnswer(answers=list(exact))
        if qtype == TYPE_A:
            # CNAME chase: answer with the alias chain plus, when the target
            # lives in this zone, its address records (RFC 1034 §3.6.2).
            chain = []
            name = qname
            for _ in range(8):
                cname = self._records.get((name, TYPE_CNAME))
                if not cname:
                    break
                chain.extend(cname)
                name = cname[0].data
                target_a = self._records.get((name, TYPE_A))
                if target_a:
                    return ZoneAnswer(answers=chain + list(target_a))
            if chain:
                return ZoneAnswer(answers=chain)
        delegation = self._find_delegation(qname)
        if delegation is not None and delegation != self.origin:
            authorities = [ns for ns, _glue in self._delegations[delegation]]
            additionals = [glue for _ns, glue in self._delegations[delegation]]
            return ZoneAnswer(authorities=authorities, additionals=additionals,
                              is_referral=True)
        return ZoneAnswer(rcode=RCODE_NXDOMAIN)

    def names(self):
        """All owner names with records (diagnostics)."""
        return sorted({name for name, _rtype in self._records})

    def __str__(self):
        return f"Zone({self.origin} records={len(self._records)} delegations={len(self._delegations)})"
