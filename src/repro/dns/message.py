"""DNS message objects and their binary wire format.

The format mirrors RFC 1035's layout (12-byte header, question, then
answer/authority/additional RR sections, length-prefixed labels) but omits
name compression — the PCE's parser and the size accounting don't need it,
and leaving it out keeps encode/decode obviously correct.
"""

import struct
from dataclasses import dataclass, field

from repro.dns.records import TYPE_A, TYPE_CNAME, TYPE_NS, ResourceRecord, normalise_name
from repro.net.addresses import IPv4Address

FLAG_QR = 0x8000  # reply (vs query)
FLAG_AA = 0x0400  # authoritative answer
FLAG_TC = 0x0200  # truncated
FLAG_RD = 0x0100  # recursion desired
FLAG_RA = 0x0080  # recursion available

_HEADER = struct.Struct("!HHHHHH")
_RR_FIXED = struct.Struct("!HHIH")

CLASS_IN = 1


class DnsWireError(ValueError):
    """Malformed DNS wire data."""


def encode_name(name):
    encoded = bytearray()
    for label in normalise_name(name).split("."):
        if not label:
            continue
        raw = label.encode("ascii")
        if len(raw) > 63:
            raise DnsWireError(f"label too long: {label!r}")
        encoded.append(len(raw))
        encoded.extend(raw)
    encoded.append(0)
    return bytes(encoded)


def decode_name(data, offset):
    labels = []
    while True:
        if offset >= len(data):
            raise DnsWireError("truncated name")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        if length > 63:
            raise DnsWireError(f"bad label length {length}")
        if offset + length > len(data):
            raise DnsWireError("truncated label")
        labels.append(data[offset:offset + length].decode("ascii"))
        offset += length
    return (".".join(labels) + "." if labels else "."), offset


@dataclass(frozen=True)
class Question:
    qname: str
    qtype: int = TYPE_A

    def __post_init__(self):
        object.__setattr__(self, "qname", normalise_name(self.qname))


@dataclass
class DnsMessage:
    """A DNS query or response."""

    ident: int = 0
    flags: int = 0
    question: Question = None
    answers: list = field(default_factory=list)
    authorities: list = field(default_factory=list)
    additionals: list = field(default_factory=list)

    # -- convenience predicates ---------------------------------------- #

    @property
    def is_reply(self):
        return bool(self.flags & FLAG_QR)

    @property
    def is_query(self):
        return not self.is_reply

    @property
    def rcode(self):
        return self.flags & 0x000F

    def with_rcode(self, rcode):
        self.flags = (self.flags & ~0x000F) | (rcode & 0x000F)
        return self

    @property
    def qname(self):
        return self.question.qname if self.question is not None else None

    def answer_addresses(self):
        """All A-record addresses in the answer section."""
        return [record.data for record in self.answers if record.rtype == TYPE_A]

    def referral_servers(self):
        """(ns_name, glue_address_or_None) pairs from a referral."""
        glue = {record.name: record.data for record in self.additionals
                if record.rtype == TYPE_A}
        servers = []
        for record in self.authorities:
            if record.rtype == TYPE_NS:
                servers.append((record.data, glue.get(record.data)))
        return servers

    # -- wire format ---------------------------------------------------- #

    def encode(self):
        counts = (1 if self.question else 0, len(self.answers),
                  len(self.authorities), len(self.additionals))
        out = bytearray(_HEADER.pack(self.ident, self.flags, *counts))
        if self.question:
            out += encode_name(self.question.qname)
            out += struct.pack("!HH", self.question.qtype, CLASS_IN)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                out += self._encode_rr(record)
        return bytes(out)

    @staticmethod
    def _encode_rr(record):
        if record.rtype == TYPE_A:
            rdata = IPv4Address(record.data).to_bytes()
        elif record.rtype in (TYPE_NS, TYPE_CNAME):
            rdata = encode_name(record.data)
        elif isinstance(record.data, (bytes, bytearray)):
            rdata = bytes(record.data)
        else:
            rdata = str(record.data).encode("ascii")
        out = bytearray(encode_name(record.name))
        out += _RR_FIXED.pack(record.rtype, CLASS_IN, max(0, int(record.ttl)), len(rdata))
        out += rdata
        return bytes(out)

    @classmethod
    def decode(cls, data):
        if len(data) < _HEADER.size:
            raise DnsWireError("truncated header")
        ident, flags, qd, an, ns, ar = _HEADER.unpack_from(data, 0)
        offset = _HEADER.size
        question = None
        if qd > 1:
            raise DnsWireError("multiple questions unsupported")
        if qd == 1:
            qname, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise DnsWireError("truncated question")
            qtype, _qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            question = Question(qname, qtype)
        message = cls(ident=ident, flags=flags, question=question)
        for section, count in ((message.answers, an), (message.authorities, ns),
                               (message.additionals, ar)):
            for _ in range(count):
                record, offset = cls._decode_rr(data, offset)
                section.append(record)
        return message

    @staticmethod
    def _decode_rr(data, offset):
        name, offset = decode_name(data, offset)
        if offset + _RR_FIXED.size > len(data):
            raise DnsWireError("truncated RR")
        rtype, _rclass, ttl, rdlength = _RR_FIXED.unpack_from(data, offset)
        offset += _RR_FIXED.size
        if offset + rdlength > len(data):
            raise DnsWireError("truncated rdata")
        raw = data[offset:offset + rdlength]
        offset += rdlength
        if rtype == TYPE_A:
            rdata = IPv4Address.from_bytes(raw)
        elif rtype in (TYPE_NS, TYPE_CNAME):
            rdata, _ = decode_name(raw, 0)
        else:
            rdata = raw
        return ResourceRecord(name, rtype, ttl, rdata), offset

    @property
    def size_bytes(self):
        """On-wire size; lets DNS messages ride directly as packet payloads."""
        return len(self.encode())

    def copy(self):
        return DnsMessage(ident=self.ident, flags=self.flags, question=self.question,
                          answers=list(self.answers), authorities=list(self.authorities),
                          additionals=list(self.additionals))

    def __str__(self):
        kind = "reply" if self.is_reply else "query"
        parts = [f"DNS {kind} id={self.ident} q={self.qname}"]
        if self.answers:
            parts.append(f"ans={[str(r.data) for r in self.answers]}")
        if self.authorities:
            parts.append(f"auth={len(self.authorities)}")
        return " ".join(parts)


def make_query(ident, qname, qtype=TYPE_A, recursion_desired=False):
    flags = FLAG_RD if recursion_desired else 0
    return DnsMessage(ident=ident, flags=flags, question=Question(qname, qtype))


def make_reply(query, answers=(), authorities=(), additionals=(), authoritative=False,
               rcode=0, recursion_available=False):
    flags = FLAG_QR | (query.flags & FLAG_RD)
    if authoritative:
        flags |= FLAG_AA
    if recursion_available:
        flags |= FLAG_RA
    reply = DnsMessage(ident=query.ident, flags=flags, question=query.question,
                       answers=list(answers), authorities=list(authorities),
                       additionals=list(additionals))
    return reply.with_rcode(rcode)
