"""Recursive (site) resolver and the end-host stub resolver.

The site resolver is the paper's ``DNS_S``: hosts send it recursive queries
(Step 1), it walks the hierarchy iteratively (Steps 2-5), and its replies to
hosts close the loop (Step 8).  It can simultaneously act as the
authoritative server for the site's own zone — that is the paper's
``DNS_D`` role (Step 6).

The resolver exposes ``query_listeners``: callbacks fired when a recursive
query arrives from a host.  The co-located PCE registers here, which is the
paper's "PCE_S obtains E_S by IPC with the DNS" (Step 1).
"""

from repro.dns.cache import TtlCache
from repro.dns.message import DnsMessage, DnsWireError, FLAG_RD, make_query, make_reply
from repro.dns.records import RCODE_NXDOMAIN, RCODE_SERVFAIL, TYPE_A, TYPE_CNAME
from repro.net.host import RequestTimeout

DNS_PORT = 53
MAX_REFERRALS = 16
MAX_CNAME_CHASES = 4


class ResolutionError(Exception):
    """Iterative resolution failed (loop, timeout, or NXDOMAIN)."""


class RecursiveResolver:
    """Iterative resolver with referral and answer caches."""

    def __init__(self, sim, node, root_hints, authoritative_zone=None,
                 processing_delay=0.0002, use_cache=True, max_record_ttl=None,
                 coalesce=True, negative_ttl=5.0):
        self.sim = sim
        self.node = node
        self.root_hints = list(root_hints)
        self.zone = authoritative_zone
        self.processing_delay = processing_delay
        self.use_cache = use_cache
        self.max_record_ttl = max_record_ttl
        self.coalesce = coalesce
        self.negative_ttl = negative_ttl
        self.answer_cache = TtlCache(sim, name=f"{node.name}-dns-answers")
        self.negative_cache = TtlCache(sim, name=f"{node.name}-dns-negative")
        self.referral_cache = TtlCache(sim, name=f"{node.name}-dns-referrals")
        self.query_listeners = []
        self.recursive_queries = 0
        self.upstream_queries = 0
        self.coalesced_queries = 0
        self._in_flight = {}
        self._ident = 1
        node.bind_udp(DNS_PORT, self._on_datagram)
        node.register_service("dns-resolver", self)

    # ------------------------------------------------------------------ #
    # Inbound datagram handling
    # ------------------------------------------------------------------ #

    def _on_datagram(self, packet, _node):
        try:
            message = DnsMessage.decode(bytes(packet.payload))
        except (DnsWireError, TypeError):
            return
        if not message.is_query or message.question is None:
            return
        wants_recursion = bool(message.flags & FLAG_RD)
        in_bailiwick = self.zone is not None and self.zone.covers(message.question.qname)
        if wants_recursion and not in_bailiwick:
            self._serve_recursive(message, packet)
        else:
            self._serve_authoritative(message, packet)

    def _serve_authoritative(self, query, packet):
        if self.zone is None:
            reply = make_reply(query, rcode=RCODE_SERVFAIL)
        else:
            result = self.zone.lookup(query.question.qname, query.question.qtype)
            reply = make_reply(query, answers=result.answers,
                               authorities=result.authorities,
                               additionals=result.additionals,
                               authoritative=not result.is_referral,
                               rcode=result.rcode)
        self._reply_to(packet, reply)

    def _serve_recursive(self, query, packet):
        self.recursive_queries += 1
        for listener in self.query_listeners:
            listener(client=packet.ip.src, qname=query.question.qname, time=self.sim.now)

        def handle():
            resolution = yield self.resolve(query.question.qname, query.question.qtype)
            reply = make_reply(query, answers=resolution.answers,
                               rcode=resolution.rcode, recursion_available=True)
            self._send_reply(packet, reply)

        self.sim.process(handle(), name=f"{self.node.name}-recurse")

    def _reply_to(self, packet, reply):
        if self.processing_delay > 0:
            self.sim.call_in(self.processing_delay, self._send_reply, packet, reply)
        else:
            self._send_reply(packet, reply)

    def _send_reply(self, packet, reply):
        self.node.send_udp(src=packet.ip.dst, dst=packet.ip.src, sport=DNS_PORT,
                           dport=packet.udp.sport, payload=reply.encode())

    #: Construction-time config; root hints and the zone are immutable data,
    #: the node and sim checkpoint themselves.
    _SNAPSHOT_EXEMPT = ("sim", "node", "root_hints", "zone",
                        "processing_delay", "use_cache", "max_record_ttl",
                        "coalesce", "negative_ttl")

    def snapshot_state(self):
        return {
            "answer": self.answer_cache.snapshot_state(),
            "negative": self.negative_cache.snapshot_state(),
            "referral": self.referral_cache.snapshot_state(),
            "listeners": list(self.query_listeners),
            "counters": (self.recursive_queries, self.upstream_queries,
                         self.coalesced_queries, self._ident),
        }

    def restore_state(self, state):
        self.answer_cache.restore_state(state["answer"])
        self.negative_cache.restore_state(state["negative"])
        self.referral_cache.restore_state(state["referral"])
        self.query_listeners = list(state["listeners"])
        (self.recursive_queries, self.upstream_queries,
         self.coalesced_queries, self._ident) = state["counters"]
        self._in_flight.clear()

    # ------------------------------------------------------------------ #
    # Iterative resolution
    # ------------------------------------------------------------------ #

    def _next_ident(self):
        self._ident = (self._ident + 1) % 65536 or 1
        return self._ident

    def _cached_servers(self, qname):
        """Deepest cached referral covering *qname*; falls back to roots."""
        if self.use_cache:
            labels = qname.rstrip(".").split(".")
            for start in range(len(labels)):
                suffix = ".".join(labels[start:]) + "."
                servers = self.referral_cache.get(("ns", suffix))
                if servers:
                    return list(servers)
        return list(self.root_hints)

    def _record_ttl(self, record):
        if self.max_record_ttl is None:
            return record.ttl
        return min(record.ttl, self.max_record_ttl)

    def resolve(self, qname, qtype=TYPE_A, _depth=0):
        """Process: iteratively resolve and return the final DnsMessage.

        Follows CNAME chains across zones (bounded by MAX_CNAME_CHASES).
        Identical concurrent resolutions are coalesced onto one in-flight
        walk; NXDOMAIN outcomes are negatively cached for ``negative_ttl``.
        The returned message's ``answers``/``rcode`` reflect the outcome;
        SERVFAIL is used for loops and timeouts.
        """

        def _coalesced():
            # Wait for the walk already in flight and reuse its outcome.
            self.coalesced_queries += 1
            leader = self._in_flight[(qname, qtype)]
            result = yield leader
            return result.copy()

        def _resolve():
            if self.use_cache:
                cached = self.answer_cache.get((qname, qtype))
                if cached is not None:
                    synthetic = DnsMessage(ident=0, flags=0, answers=list(cached))
                    return synthetic
                negative = self.negative_cache.get((qname, qtype))
                if negative is not None:
                    return DnsMessage(ident=0, flags=0).with_rcode(negative)
            if self.processing_delay > 0:
                yield self.sim.timeout(self.processing_delay)
            servers = self._cached_servers(qname)
            failure_rcode = RCODE_SERVFAIL
            for _step in range(MAX_REFERRALS):
                if not servers:
                    break
                server = servers[0]
                query = make_query(self._next_ident(), qname, qtype)
                socket = self.node.open_udp()
                self.upstream_queries += 1
                try:
                    packet = yield socket.request(server, DNS_PORT, payload=query.encode())
                except RequestTimeout:
                    servers = servers[1:]
                    continue
                finally:
                    socket.close()
                try:
                    reply = DnsMessage.decode(bytes(packet.payload))
                except (DnsWireError, TypeError):
                    servers = servers[1:]
                    continue
                if reply.rcode == RCODE_NXDOMAIN:
                    failure_rcode = RCODE_NXDOMAIN
                    break
                if reply.answers:
                    wanted = [r for r in reply.answers if r.rtype == qtype]
                    cnames = [r for r in reply.answers if r.rtype == TYPE_CNAME]
                    if not wanted and cnames and qtype == TYPE_A \
                            and _depth < MAX_CNAME_CHASES:
                        # Cross-zone alias: restart at the canonical name and
                        # splice the chain into the final answer.
                        target = cnames[-1].data
                        chased = yield self.resolve(target, qtype, _depth + 1)
                        reply.answers = list(reply.answers) + list(chased.answers)
                        if not chased.answers:
                            return reply.with_rcode(chased.rcode)
                    if self.use_cache:
                        ttl = min(self._record_ttl(r) for r in reply.answers)
                        self.answer_cache.put((qname, qtype), list(reply.answers), ttl)
                    return reply
                referral = reply.referral_servers()
                glue = [address for _name, address in referral if address is not None]
                if not glue:
                    break
                if self.use_cache and reply.authorities:
                    child = reply.authorities[0].name
                    ttl = min(self._record_ttl(r) for r in reply.authorities)
                    self.referral_cache.put(("ns", child), list(glue), ttl)
                servers = glue
            if self.use_cache and failure_rcode == RCODE_NXDOMAIN \
                    and self.negative_ttl > 0:
                self.negative_cache.put((qname, qtype), RCODE_NXDOMAIN,
                                        self.negative_ttl)
            empty = DnsMessage(ident=0, flags=0)
            return empty.with_rcode(failure_rcode)

        key = (qname, qtype)
        if self.coalesce and _depth == 0 and key in self._in_flight:
            return self.sim.process(_coalesced(),
                                    name=f"{self.node.name}-coalesce-{qname}")
        process = self.sim.process(_resolve(),
                                   name=f"{self.node.name}-resolve-{qname}")
        if self.coalesce and _depth == 0:
            self._in_flight[key] = process
            process.callbacks.append(lambda _event: self._in_flight.pop(key, None))
        return process


class StubResolver:
    """The end-host side: one recursive query to the site resolver."""

    def __init__(self, sim, host, resolver_address):
        self.sim = sim
        self.host = host
        self.resolver_address = resolver_address
        self.lookups = 0

    def lookup(self, qname, timeout=5.0, retries=1):
        """Process: resolve *qname*; returns (address_or_None, elapsed)."""

        def _lookup():
            self.lookups += 1
            started = self.sim.now
            query = make_query(ident=self.lookups % 65536, qname=qname,
                               recursion_desired=True)
            socket = self.host.open_udp()
            try:
                packet = yield socket.request(self.resolver_address, DNS_PORT,
                                              payload=query.encode(),
                                              timeout=timeout, retries=retries)
            except RequestTimeout:
                return None, self.sim.now - started
            finally:
                socket.close()
            try:
                reply = DnsMessage.decode(bytes(packet.payload))
            except (DnsWireError, TypeError):
                return None, self.sim.now - started
            addresses = reply.answer_addresses()
            result = addresses[0] if addresses else None
            return result, self.sim.now - started

        return self.sim.process(_lookup(), name=f"{self.host.name}-lookup-{qname}")
