"""A TTL-expiring cache used by the resolver (and reusable elsewhere)."""


class TtlCache:
    """Maps keys to values with per-entry absolute expiry times.

    Expiry is evaluated lazily against the simulator clock on access; a
    small periodic sweep is unnecessary for the experiment sizes used here.
    """

    def __init__(self, sim, name="cache"):
        self.sim = sim
        self.name = name
        self._entries = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.insertions = 0

    def put(self, key, value, ttl):
        """Store *value* for *ttl* seconds of simulated time."""
        if ttl <= 0:
            return
        self._entries[key] = (self.sim.now + ttl, value)
        self.insertions += 1

    def get(self, key):
        """Return the live value for *key*, or None (counting hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expires, value = entry
        if expires <= self.sim.now:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return value

    def peek(self, key):
        """Like :meth:`get` but without touching the counters."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        expires, value = entry
        if expires <= self.sim.now:
            return None
        return value

    def invalidate(self, key):
        self._entries.pop(key, None)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        now = self.sim.now
        return sum(1 for expires, _ in self._entries.values() if expires > now)

    @property
    def hit_ratio(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
