"""A TTL-expiring cache used by the resolver (and reusable elsewhere)."""


class TtlCache:
    """Maps keys to values with per-entry absolute expiry times.

    Expiry is evaluated lazily against the simulator clock on access, and a
    size-triggered compaction sweeps out entries that expired without ever
    being re-touched — so memory stays O(live entries) even under workloads
    that never revisit a key (the map-cache aging regime of weakness W1).

    Contract notes:

    - ``put`` with ``ttl <= 0`` REJECTS the entry: any existing entry for
      the key is invalidated, ``rejected_puts`` is incremented and a
      ``cache.put-rejected`` trace event is recorded.  It returns False.
    - ``max_entries``, when given, bounds the number of stored entries;
      once full (after compacting the expired), the entry closest to expiry
      is evicted (counted in ``evictions``).
    - ``len(cache)`` is exact: it compacts first, so dead entries are both
      freed and never counted.
    """

    #: Entry count at which the first automatic compaction triggers.
    COMPACT_THRESHOLD = 256

    def __init__(self, sim, name="cache", max_entries=None):
        self.sim = sim
        self.name = name
        self.max_entries = max_entries
        self._entries = {}
        self._next_compact = self.COMPACT_THRESHOLD
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.insertions = 0
        self.rejected_puts = 0
        self.evictions = 0

    def put(self, key, value, ttl):
        """Store *value* for *ttl* seconds of simulated time.

        Returns True if the entry is stored and survived any capacity
        eviction (a full cache evicts the entry closest to expiry, which can
        be the one just inserted).  Non-positive TTLs are rejected (see
        class docstring): nothing is stored, any stale entry for *key* is
        dropped, and False is returned.
        """
        if ttl <= 0:
            self._entries.pop(key, None)
            self.rejected_puts += 1
            self.sim.trace.record(self.sim.now, self.name, "cache.put-rejected",
                                  key=str(key), ttl=ttl)
            return False
        self._entries[key] = (self.sim.now + ttl, value)
        self.insertions += 1
        if len(self._entries) >= self._next_compact:
            self.compact()
            # Back off so compaction stays amortized O(1) per insertion.
            self._next_compact = max(self.COMPACT_THRESHOLD,
                                     2 * len(self._entries))
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self.compact()
            while len(self._entries) > self.max_entries:
                victim = min(self._entries, key=lambda k: self._entries[k][0])
                del self._entries[victim]
                self.evictions += 1
            return key in self._entries
        return True

    def get(self, key):
        """Return the live value for *key*, or None (counting hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expires, value = entry
        if expires <= self.sim.now:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return value

    def peek(self, key):
        """Like :meth:`get` but without touching the counters."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        expires, value = entry
        if expires <= self.sim.now:
            return None
        return value

    def compact(self):
        """Drop every expired entry now; returns how many were freed."""
        now = self.sim.now
        dead = [key for key, (expires, _value) in self._entries.items()
                if expires <= now]
        for key in dead:
            del self._entries[key]
        self.expirations += len(dead)
        return len(dead)

    def invalidate(self, key):
        self._entries.pop(key, None)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        self.compact()
        return len(self._entries)

    @property
    def stored_entries(self):
        """Raw stored entry count, dead included (memory diagnostic)."""
        return len(self._entries)

    @property
    def hit_ratio(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    #: Construction-time config (owning sim, trace label, capacity bound).
    _SNAPSHOT_EXEMPT = ("sim", "name", "max_entries")

    def snapshot_state(self):
        return (dict(self._entries), self._next_compact, self.hits,
                self.misses, self.expirations, self.insertions,
                self.rejected_puts, self.evictions)

    def restore_state(self, state):
        (entries, self._next_compact, self.hits, self.misses,
         self.expirations, self.insertions, self.rejected_puts,
         self.evictions) = state
        self._entries = dict(entries)
