"""DNS substrate: wire-format messages, zones, servers, iterative resolution.

The paper's control plane rides on DNS: PCEs sit in the data path of the
site DNS servers and parse the queries and replies flowing through them
(Fig. 1, Steps 2-6).  This package therefore implements a real — if
simplified — DNS: messages have a binary wire encoding, authoritative
servers answer or refer, and the site resolver walks the hierarchy
iteratively (root, TLD, authoritative), exactly the sequence the paper's
T_DNS measures.
"""

from repro.dns.cache import TtlCache
from repro.dns.message import FLAG_AA, FLAG_QR, FLAG_RA, FLAG_RD, DnsMessage, Question
from repro.dns.records import RCODE_NOERROR, RCODE_NXDOMAIN, TYPE_A, TYPE_NS, ResourceRecord
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone

__all__ = [
    "AuthoritativeServer",
    "DnsMessage",
    "FLAG_AA",
    "FLAG_QR",
    "FLAG_RA",
    "FLAG_RD",
    "Question",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RecursiveResolver",
    "ResourceRecord",
    "StubResolver",
    "TtlCache",
    "TYPE_A",
    "TYPE_NS",
    "Zone",
]

DNS_PORT = 53
