"""Authoritative DNS server service.

A *service* object: it binds UDP port 53 on an existing node rather than
subclassing it, so the same node could also host a PCE or other roles
(mirroring the paper's co-located elements).
"""

from repro.dns.message import DnsMessage, DnsWireError, make_reply
from repro.dns.records import RCODE_NXDOMAIN

DNS_PORT = 53


class AuthoritativeServer:
    """Answers queries for one zone: answer, referral, or NXDOMAIN."""

    def __init__(self, sim, node, zone, processing_delay=0.0002):
        self.sim = sim
        self.node = node
        self.zone = zone
        self.processing_delay = processing_delay
        self.queries_served = 0
        node.bind_udp(DNS_PORT, self._on_datagram)
        node.register_service("dns-auth", self)

    def _on_datagram(self, packet, _node):
        try:
            query = DnsMessage.decode(bytes(packet.payload))
        except (DnsWireError, TypeError):
            return
        if not query.is_query or query.question is None:
            return
        self.queries_served += 1
        reply = self.answer(query)
        client = packet.ip.src
        client_port = packet.udp.sport

        def respond():
            self.node.send_udp(src=packet.ip.dst, dst=client, sport=DNS_PORT,
                               dport=client_port, payload=reply.encode())

        if self.processing_delay > 0:
            self.sim.call_in(self.processing_delay, respond)
        else:
            respond()

    #: Construction-time wiring: the zone is immutable data, the node and
    #: sim are independently checkpointed.
    _SNAPSHOT_EXEMPT = ("sim", "node", "zone", "processing_delay")

    def snapshot_state(self):
        return self.queries_served

    def restore_state(self, state):
        self.queries_served = state

    def answer(self, query):
        """Build the authoritative reply for *query* (pure function of zone)."""
        result = self.zone.lookup(query.question.qname, query.question.qtype)
        if result.rcode == RCODE_NXDOMAIN:
            return make_reply(query, authoritative=True, rcode=RCODE_NXDOMAIN)
        return make_reply(query, answers=result.answers, authorities=result.authorities,
                          additionals=result.additionals,
                          authoritative=not result.is_referral)
