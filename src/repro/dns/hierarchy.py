"""Builds the DNS hierarchy over a topology.

Layout (depth 3, the default)::

    root servers               "."           delegate example. -> TLD server
    TLD server                 "example."    delegate siteN.<suffix> -> site DNS
    site DNS (on-site)         "siteN.example."   A records for the site's hosts

``extra_levels`` inserts intermediate authoritative servers between the TLD
and the sites (e.g. ``corp.example.``), lengthening the iterative walk —
used by experiment E2's DNS-depth sweep.
"""

from dataclasses import dataclass, field

from repro.dns.records import normalise_name
from repro.dns.resolver import RecursiveResolver
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.net.addresses import IPv4Address

ROOT_ADDRESS = IPv4Address("198.41.0.4")
TLD_ADDRESS = IPv4Address("192.5.6.30")


def _level_address(level):
    return IPv4Address(f"192.5.7.{10 + level}")


@dataclass
class DnsSystem:
    """Handles to every piece of the installed DNS."""

    topology: object
    root_server: AuthoritativeServer
    tld_server: AuthoritativeServer
    level_servers: list
    resolvers: dict = field(default_factory=dict)
    site_suffix: str = "example."
    host_ttl: float = 60.0

    def resolver_for(self, site):
        return self.resolvers[site.index]

    def site_domain(self, site):
        return f"{site.name}.{self.site_suffix}"

    def host_name(self, site, host_index):
        return f"host{host_index}.{self.site_domain(site)}"

    def add_alias(self, site, alias_label, host_index, ttl=None):
        """Add ``<alias_label>.<site-domain>`` as a CNAME for a site host.

        Returns the fully-qualified alias name.
        """
        zone = self.resolvers[site.index].zone
        alias = f"{alias_label}.{self.site_domain(site)}"
        zone.add_cname(alias, self.host_name(site, host_index),
                       ttl=self.host_ttl if ttl is None else ttl)
        return alias

    def site_for_name(self, qname):
        """The site whose zone contains *qname* (None if out of scope)."""
        qname = normalise_name(qname)
        for site in self.topology.sites:
            if qname == self.site_domain(site) or qname.endswith("." + self.site_domain(site)):
                return site
        return None


def install_dns(topology, host_ttl=60.0, extra_levels=0, processing_delay=0.0002,
                use_cache=True):
    """Create root/TLD/intermediate servers and per-site resolvers.

    Re-installs global routes to cover the new infrastructure hosts.
    Returns a :class:`DnsSystem`.
    """
    sim = topology.sim
    num_providers = len(topology.providers)

    # Suffix under which sites live, growing with extra levels:
    #   example.  ->  lvl0.example.  ->  lvl1.lvl0.example. ...
    suffix = "example."
    chain = []  # (zone_origin, server_address) of intermediate levels
    for level in range(extra_levels):
        suffix = f"lvl{level}.{suffix}"
        chain.append((suffix, _level_address(level)))

    # Root zone delegates the TLD.
    root_zone = Zone(".")
    root_zone.delegate("example.", "a.gtld-servers.net.", TLD_ADDRESS)

    # TLD zone delegates either the first intermediate level or the sites.
    tld_zone = Zone("example.")

    level_zones = []
    parent_zone = tld_zone
    for origin, address in chain:
        parent_zone.delegate(origin, f"ns.{origin}", address)
        level_zone = Zone(origin)
        level_zones.append((origin, address, level_zone))
        parent_zone = level_zone

    # Delegate each site from the deepest level.
    for site in topology.sites:
        site_domain = f"{site.name}.{suffix}"
        parent_zone.delegate(site_domain, f"ns.{site_domain}", site.dns_address)

    # Attach shared servers to providers (round-robin).
    root_host = topology.attach_infra_host(0, "root-dns", ROOT_ADDRESS)
    tld_host = topology.attach_infra_host(1 % num_providers, "tld-dns", TLD_ADDRESS)
    root_server = AuthoritativeServer(sim, root_host, root_zone,
                                      processing_delay=processing_delay)
    tld_server = AuthoritativeServer(sim, tld_host, tld_zone,
                                     processing_delay=processing_delay)
    level_servers = []
    for index, (_origin, address, level_zone) in enumerate(level_zones):
        host = topology.attach_infra_host((2 + index) % num_providers,
                                          f"lvl{index}-dns", address)
        level_servers.append(AuthoritativeServer(sim, host, level_zone,
                                                 processing_delay=processing_delay))

    # Per-site zones and resolvers.
    system = DnsSystem(topology=topology, root_server=root_server,
                       tld_server=tld_server, level_servers=level_servers,
                       site_suffix=suffix, host_ttl=host_ttl)
    for site in topology.sites:
        site_domain = f"{site.name}.{suffix}"
        zone = Zone(site_domain)
        for i, host in enumerate(site.hosts):
            zone.add_a(f"host{i}.{site_domain}", host.address, ttl=host_ttl)
        resolver = RecursiveResolver(sim, site.dns_node, root_hints=[ROOT_ADDRESS],
                                     authoritative_zone=zone,
                                     processing_delay=processing_delay,
                                     use_cache=use_cache)
        system.resolvers[site.index] = resolver

    topology.install_global_routes()
    return system
