"""The per-site Path Computation Element.

One :class:`Pce` instance runs on each site's PCE node (which physically
sits between the site's DNS server and the rest of the world, see
:mod:`repro.net.topology`).  The same object plays both of the paper's
roles — PCE_S when its site sources a flow, PCE_D when its site is the
destination — because every site runs the same element.

Step mapping (Fig. 1):

=======  =====================================================================
Step     Where implemented
=======  =====================================================================
1        :meth:`Pce.on_local_query` (registered as resolver IPC listener)
2-5      :meth:`Pce._observe_dns` (transparent forward-tap observation)
6        :meth:`Pce._intercept_authoritative_reply` (PCE_D role)
7a       :meth:`Pce._handle_port_p` re-emitting the original DNS reply
7b       :meth:`Pce.push_mapping_to_itrs`
8        observed by the tap as the resolver answers the host (trace only)
ETR rev  :meth:`Pce.learn_reverse_mapping` via the control plane's ETR hook
=======  =====================================================================
"""

from repro.core.messages import (
    PORT_MAPPING_PUSH,
    PORT_PCE,
    EncapsulatedDnsReply,
    MappingPush,
)
from repro.dns.message import DnsMessage, DnsWireError
from repro.lisp import EID_SPACE

DNS_PORT = 53


class PceStats:
    """Per-PCE counters and the timelines experiments consume."""

    def __init__(self):
        self.queries_observed = 0
        self.replies_observed = 0
        self.ipc_notifications = 0
        self.replies_encapsulated = 0
        self.port_p_received = 0
        self.mappings_pushed = 0
        self.push_messages = 0
        self.push_bytes = 0
        self.refresh_pushes = 0
        self.reverse_mappings_learned = 0
        #: (time, source_eid, prefix) for every Step-7b push.
        self.push_timeline = []
        #: (time, qname, client) for every Step-1 IPC notification.
        self.ipc_timeline = []

    _counter_attrs = ("queries_observed", "replies_observed",
                      "ipc_notifications", "replies_encapsulated",
                      "port_p_received", "mappings_pushed", "push_messages",
                      "push_bytes", "refresh_pushes",
                      "reverse_mappings_learned")

    def snapshot_state(self):
        counters = tuple(getattr(self, name) for name in self._counter_attrs)
        return (counters, list(self.push_timeline), list(self.ipc_timeline))

    def restore_state(self, state):
        counters, push_timeline, ipc_timeline = state
        for name, value in zip(self._counter_attrs, counters, strict=True):
            setattr(self, name, value)
        self.push_timeline = list(push_timeline)
        self.ipc_timeline = list(ipc_timeline)


class Pce:
    """A site's PCE: DNS-path interception plus mapping distribution."""

    def __init__(self, sim, site, topology, resolver, registry, irc,
                 control_plane, precompute=True, computation_delay=0.0005,
                 refresh_on_cached_answers=True, include_backup_rlocs=False):
        self.sim = sim
        self.site = site
        self.topology = topology
        self.resolver = resolver
        self.registry = registry
        self.irc = irc
        self.control_plane = control_plane
        self.precompute = precompute
        self.computation_delay = computation_delay
        self.refresh_on_cached_answers = refresh_on_cached_answers
        #: Carry the site's other locators as demoted backups in Step-6
        #: mappings, enabling ITR-side failover (pairs with RLOC probing).
        self.include_backup_rlocs = include_backup_rlocs
        #: Suppress refresh pushes this soon after a push (push in flight).
        self.push_guard = 0.05
        self.node = site.pce_node
        self.address = site.pce_address
        self.stats = PceStats()
        #: Step-1 ingress decisions awaiting the matching port-P message.
        self.pending_ingress = {}
        #: Mappings learned from port-P messages (the PCE database).
        self.mapping_db = {}
        #: Remote PCE addresses learned from port-P messages.
        self.peer_pces = {}
        self.node.add_forward_tap(self._tap)
        resolver.query_listeners.append(self.on_local_query)
        self.node.register_service("pce", self)

    def __str__(self):
        return f"PCE({self.site.name})"

    # ------------------------------------------------------------------ #
    # Step 1: IPC with the local DNS server
    # ------------------------------------------------------------------ #

    def on_local_query(self, client, qname, time):
        """A local host asked the resolver for *qname*: precompute ingress."""
        self.stats.ipc_notifications += 1
        self.stats.ipc_timeline.append((time, qname, client))
        ingress_index = self.irc.select_ingress()
        self.pending_ingress[qname] = (client, ingress_index, time)
        self.sim.trace.record(time, self.node.name, "pce.step1-ipc",
                              qname=qname, client=str(client),
                              ingress_rloc=str(self.site.rloc_of(ingress_index)))

    # ------------------------------------------------------------------ #
    # The forward tap: everything crossing the DNS path
    # ------------------------------------------------------------------ #

    def _tap(self, packet, _node):
        udp = packet.udp
        if udp is None:
            return False
        if udp.dport == PORT_PCE and isinstance(packet.payload, EncapsulatedDnsReply):
            self._handle_port_p(packet)
            return True
        if udp.dport == DNS_PORT or udp.sport == DNS_PORT:
            return self._observe_dns(packet)
        return False

    def _observe_dns(self, packet):
        try:
            message = DnsMessage.decode(bytes(packet.payload))
        except (DnsWireError, TypeError):
            return False
        if message.is_query:
            self.stats.queries_observed += 1
            self.sim.trace.record(self.sim.now, self.node.name, "pce.observe-query",
                                  qname=message.qname, dst=str(packet.ip.dst))
            return False
        self.stats.replies_observed += 1
        if self._is_local_authoritative_answer(packet, message):
            return self._intercept_authoritative_reply(packet, message)
        if self._is_reply_to_local_host(packet, message):
            self.sim.trace.record(self.sim.now, self.node.name, "pce.step8-dns-reply",
                                  qname=message.qname, client=str(packet.ip.dst))
            self._maybe_refresh_mapping(message)
            return False
        self.sim.trace.record(self.sim.now, self.node.name, "pce.observe-reply",
                              qname=message.qname, src=str(packet.ip.src))
        return False

    def _is_local_authoritative_answer(self, packet, message):
        """Step 6 trigger: our DNS answering a remote resolver with a local EID."""
        if packet.ip.src != self.site.dns_address:
            return False
        if self.site.eid_prefix.contains(packet.ip.dst):
            return False  # answer to a local host, not a remote resolver
        return any(self.site.eid_prefix.contains(address)
                   for address in message.answer_addresses())

    def _is_reply_to_local_host(self, packet, message):
        return (packet.ip.src == self.site.dns_address
                and self.site.eid_prefix.contains(packet.ip.dst))

    # ------------------------------------------------------------------ #
    # Step 6: PCE_D encapsulates the authoritative reply
    # ------------------------------------------------------------------ #

    def _intercept_authoritative_reply(self, packet, message):
        mapping = self._current_local_mapping()
        if mapping is None:
            return False  # cannot select a locator: let the reply through untouched
        envelope = EncapsulatedDnsReply(
            dns_wire=bytes(packet.payload),
            mapping=mapping,
            pce_address=self.address,
            original_src=packet.ip.src,
            original_sport=packet.udp.sport,
            original_dst=packet.ip.dst,
            original_dport=packet.udp.dport,
        )
        self.stats.replies_encapsulated += 1
        self.sim.trace.record(self.sim.now, self.node.name, "pce.step6-encap",
                              qname=message.qname, dst=str(packet.ip.dst),
                              rloc=str(mapping.rlocs[0].address))

        def emit():
            self.node.send_udp(src=self.address, dst=envelope.original_dst,
                               sport=PORT_PCE, dport=PORT_PCE, payload=envelope)

        if self.precompute:
            emit()  # mapping known aforehand: line rate
        else:
            self.sim.call_in(self.computation_delay, emit)
        return True

    def _current_local_mapping(self):
        """Our site's mapping narrowed to the IRC-chosen inbound locator."""
        base = self.registry.lookup_prefix(self.site.eid_prefix)
        if base is None:
            return None
        chosen = self.site.rloc_of(self.irc.select_ingress())
        if self.include_backup_rlocs:
            return base.with_preferred_rloc(chosen)
        return base.with_chosen_rloc(chosen)

    # ------------------------------------------------------------------ #
    # Step 7: PCE_S handles the port-P message
    # ------------------------------------------------------------------ #

    def _handle_port_p(self, packet):
        envelope = packet.payload
        self.stats.port_p_received += 1
        # 7a: re-emit the original DNS reply toward our resolver, unchanged.
        self.sim.trace.record(self.sim.now, self.node.name, "pce.step7a-forward",
                              dst=str(envelope.original_dst))
        self.node.send_udp(src=envelope.original_src, dst=envelope.original_dst,
                           sport=envelope.original_sport, dport=envelope.original_dport,
                           payload=envelope.dns_wire)
        # 7b: learn the peer PCE, complete the tuple, push to all ITRs.
        mapping = envelope.mapping
        self.peer_pces[mapping.eid_prefix] = envelope.pce_address
        self.mapping_db[mapping.eid_prefix] = mapping
        source_eid, ingress_index = self._match_step1_decision(envelope)
        annotated = mapping.with_source_rloc(self.site.rloc_of(ingress_index))
        self.push_mapping_to_itrs(annotated, source_eid)

    def _match_step1_decision(self, envelope):
        """Pair the reply with the Step-1 IPC record (by query name)."""
        try:
            message = DnsMessage.decode(envelope.dns_wire)
            qname = message.qname
        except (DnsWireError, TypeError):
            qname = None
        if qname is not None and qname in self.pending_ingress:
            client, ingress_index, _time = self.pending_ingress.pop(qname)
            return client, ingress_index
        # No pending record (e.g. a refresh): choose an ingress now.
        return None, self.irc.select_ingress()

    def push_mapping_to_itrs(self, mapping, source_eid, refresh=False):
        """Step 7b: install the mapping tuple on the site's ITRs.

        Also points the hub's per-destination route at the IRC-chosen
        egress ITR — the "local TE actions" the push-to-all design enables.
        """
        push = MappingPush(source_eid=source_eid or self.site.eid_prefix.network,
                           mapping=mapping, pce_address=self.address)
        targets = self.control_plane.push_targets(self.site)
        egress_index = self.irc.select_egress()
        for b in targets:
            self.stats.push_messages += 1
            self.stats.push_bytes += push.size_bytes
            self.node.send_udp(src=self.address,
                               dst=self.site.xtr_control_address(b),
                               sport=PORT_MAPPING_PUSH, dport=PORT_MAPPING_PUSH,
                               payload=push)
        self.stats.mappings_pushed += 1
        if refresh:
            self.stats.refresh_pushes += 1
        self.stats.push_timeline.append((self.sim.now,
                                         push.source_eid, mapping.eid_prefix))
        self.control_plane.set_egress_route(self.site, mapping.eid_prefix, egress_index)
        self.sim.trace.record(self.sim.now, self.node.name, "pce.step7b-push",
                              prefix=str(mapping.eid_prefix),
                              src_rloc=str(mapping.source_rloc),
                              dst_rloc=str(mapping.rlocs[0].address),
                              targets=len(targets), egress=egress_index,
                              refresh=refresh)

    def _maybe_refresh_mapping(self, message):
        """Re-push a known mapping when the resolver answers from cache.

        Without this, a DNS-cache hit would leave the ITRs without a fresh
        mapping (the port-P message only travels on real resolutions).  The
        PCE database makes the refresh purely site-local.
        """
        if not self.refresh_on_cached_answers:
            return
        for address in message.answer_addresses():
            if not EID_SPACE.contains(address) or self.site.eid_prefix.contains(address):
                continue
            prefix = self._db_prefix_for(address)
            if prefix is None:
                continue
            last_push = self.control_plane.mapping_available_time(self.site, prefix)
            if last_push is not None and self.sim.now - last_push < self.push_guard:
                continue  # a push is already in flight
            installed = self.control_plane.itr_has_live_mapping(self.site, address)
            if installed:
                continue
            client, ingress_index = self._match_step1_decision_for_refresh(message)
            annotated = self.mapping_db[prefix].with_source_rloc(
                self.site.rloc_of(ingress_index))
            self.push_mapping_to_itrs(annotated, client, refresh=True)

    def _db_prefix_for(self, address):
        for prefix in self.mapping_db:
            if prefix.contains(address):
                return prefix
        return None

    def _match_step1_decision_for_refresh(self, message):
        qname = message.qname
        if qname is not None and qname in self.pending_ingress:
            client, ingress_index, _time = self.pending_ingress.pop(qname)
            return client, ingress_index
        return None, self.irc.select_ingress()

    # ------------------------------------------------------------------ #
    # Reverse mappings (two-way resolution completion)
    # ------------------------------------------------------------------ #

    def learn_reverse_mapping(self, mapping):
        """ETR multicast reached the PCE database (closing paragraph, (iii))."""
        self.stats.reverse_mappings_learned += 1
        self.mapping_db[mapping.eid_prefix] = mapping
        self.sim.trace.record(self.sim.now, self.node.name, "pce.reverse-learned",
                              prefix=str(mapping.eid_prefix))

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: Wiring and config fixed at deploy time; the referenced components
    #: (registry, irc, control_plane, resolver) checkpoint themselves.
    _SNAPSHOT_EXEMPT = ("sim", "site", "topology", "resolver", "registry",
                        "irc", "control_plane", "precompute",
                        "computation_delay", "refresh_on_cached_answers",
                        "include_backup_rlocs", "push_guard", "node",
                        "address")

    def snapshot_state(self):
        return (self.stats.snapshot_state(), dict(self.pending_ingress),
                dict(self.mapping_db), dict(self.peer_pces))

    def restore_state(self, state):
        stats_state, pending, mapping_db, peer_pces = state
        self.stats.restore_state(stats_state)
        self.pending_ingress = dict(pending)
        self.mapping_db = dict(mapping_db)
        self.peer_pces = dict(peer_pces)
