"""Control-plane messages exchanged by PCEs, ITRs and ETRs."""

from dataclasses import dataclass

from repro.net.addresses import IPv4Address

#: The paper's "special transport port P" listened on by PCE_S (Step 6).
PORT_PCE = 4343
#: PCE -> ITR mapping installation (Step 7b).
PORT_MAPPING_PUSH = 4344
#: ETR -> sibling-ETRs / PCE reverse-mapping multicast (closing paragraph).
PORT_REVERSE = 4345


@dataclass
class EncapsulatedDnsReply:
    """Step 6: the DNS reply wrapped in a new UDP message.

    Carries the original reply verbatim (wire bytes plus the addressing
    needed to re-emit it unchanged at the source side) and, in the outer
    payload, the EID-to-RLOC mapping selected by PCE_D's IRC engine.
    """

    dns_wire: bytes
    mapping: object
    pce_address: IPv4Address
    original_src: IPv4Address
    original_sport: int
    original_dst: IPv4Address
    original_dport: int

    def __post_init__(self):
        self.pce_address = IPv4Address(self.pce_address)
        self.original_src = IPv4Address(self.original_src)
        self.original_dst = IPv4Address(self.original_dst)

    @property
    def size_bytes(self):
        # Inner reply + mapping record + 12B of envelope bookkeeping.
        return len(self.dns_wire) + self.mapping.size_bytes + 12


@dataclass
class MappingPush:
    """Step 7b: the tuple (E_S, E_D, RLOC_S, RLOC_D) pushed to every ITR.

    ``mapping`` is the destination mapping narrowed to RLOC_D and annotated
    with RLOC_S as the outer-source locator — i.e. the two one-way tunnels.
    """

    source_eid: IPv4Address
    mapping: object
    pce_address: IPv4Address

    def __post_init__(self):
        self.source_eid = IPv4Address(self.source_eid)
        self.pce_address = IPv4Address(self.pce_address)

    @property
    def size_bytes(self):
        return 16 + self.mapping.size_bytes


@dataclass
class ReverseMappingAnnounce:
    """ETR multicast: the (E_S -> RLOC_S) mapping gleaned from packet one."""

    mapping: object
    origin_etr: IPv4Address

    def __post_init__(self):
        self.origin_etr = IPv4Address(self.origin_etr)

    @property
    def size_bytes(self):
        return 8 + self.mapping.size_bytes
