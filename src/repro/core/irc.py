"""Intelligent Route Control: measurement-driven locator selection.

The paper leans on IRC twice: PCE_S "computes the local RLOC to be used for
the reverse mapping based on TE constraints ... the algorithms used are
inherently the same used today by IRC techniques" (Step 1), and PCE_D's
"mapping selection is made by an online IRC engine running in background,
so the mapping is always known aforehand" (Step 6).

This engine runs a background measurement process per site: each period it
refreshes an EWMA estimate of every provider's path delay (access delay +
measured WAN component + jitter) and snapshots the access links' byte
counters.  Selection policies:

- ``latency``  — lowest estimated delay;
- ``balance``  — least-loaded access link (bytes observed + bytes pledged
  to recent assignments), i.e. classic IRC load spreading;
- ``cost``     — cheapest provider whose load is under a utilisation cap;
- ``primary``  — always locator 0 (degenerates to the static behaviour of
  a non-PCE site; used as a control in experiments).

Because the engine is always current, reading the chosen locator is O(1)
and adds no latency at interception time — that is precisely the paper's
line-rate claim, which experiment E6 checks against an on-demand variant.
"""


class ProviderEstimate:
    """Per-provider rolling state."""

    __slots__ = ("delay_ewma", "bytes_in", "bytes_out", "pledged_in", "pledged_out",
                 "cost_per_byte")

    def __init__(self, delay_ewma, cost_per_byte=1.0):
        self.delay_ewma = delay_ewma
        self.bytes_in = 0
        self.bytes_out = 0
        self.pledged_in = 0
        self.pledged_out = 0
        self.cost_per_byte = cost_per_byte


class IrcEngine:
    """One site's IRC engine (shared by its PCE and TE logic)."""

    def __init__(self, sim, site, topology, policy="balance", period=0.5,
                 ewma_alpha=0.3, jitter=0.002, flow_bytes_estimate=50_000,
                 costs=None, utilisation_cap=0.8, rng_name=None):
        self.sim = sim
        self.site = site
        self.topology = topology
        self.policy = policy
        self.period = period
        self.ewma_alpha = ewma_alpha
        self.jitter = jitter
        self.flow_bytes_estimate = flow_bytes_estimate
        self.utilisation_cap = utilisation_cap
        self.measurement_rounds = 0
        self._rng = sim.rng.stream(rng_name or f"irc-{site.name}")
        self.estimates = []
        for b in range(len(site.xtrs)):
            base = self._path_delay_estimate(b)
            cost = costs[b] if costs is not None else 1.0
            self.estimates.append(ProviderEstimate(base, cost_per_byte=cost))
        self._task = sim.periodic(self.measure_once, period,
                                  name=f"irc-{site.name}")

    # ------------------------------------------------------------------ #
    # Background measurement (the "online engine running in background")
    # ------------------------------------------------------------------ #

    def start(self):
        """Measure immediately, then re-measure every period (idempotent).

        The measurement rounds ride a checkpointable
        :class:`~repro.sim.periodic.PeriodicTask` rather than a perpetual
        generator loop, so a world with a running IRC engine can still be
        settled, snapshotted and restored (the engine checkpoint re-arms
        the tick).
        """
        if self._task.armed:
            return
        self.measure_once()
        self._task.start()

    @property
    def running(self):
        """True while the periodic measurement tick is armed."""
        return self._task.armed

    def measure_once(self):
        """One measurement round: refresh delay EWMAs and load snapshots."""
        self.measurement_rounds += 1
        alpha = self.ewma_alpha
        for b, estimate in enumerate(self.estimates):
            sample = self._path_delay_estimate(b) + self._rng.uniform(0, self.jitter)
            estimate.delay_ewma = (1 - alpha) * estimate.delay_ewma + alpha * sample
            links = self.site.access_links[b]
            estimate.bytes_in = links["downlink"].stats.tx_bytes
            estimate.bytes_out = links["uplink"].stats.tx_bytes
            # Pledges decay once real counters catch up.
            estimate.pledged_in = max(0, estimate.pledged_in - self.flow_bytes_estimate)
            estimate.pledged_out = max(0, estimate.pledged_out - self.flow_bytes_estimate)

    def _path_delay_estimate(self, b):
        """Access delay plus this provider's mean WAN distance."""
        access = self.site.access_delays[b]
        provider = self.topology.providers[self.site.provider_ids[b]]
        mesh_delays = []
        for other in self.topology.providers:
            if other is provider:
                continue
            delay = self.topology.provider_mesh_delay(provider, other)
            if delay is not None:
                mesh_delays.append(delay)
        wan = sum(mesh_delays) / len(mesh_delays) if mesh_delays else 0.0
        return access + wan

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #

    def select_ingress(self):
        """Locator index for *inbound* traffic (the reverse mapping of Step 1)."""
        index = self._select(direction="in")
        self.estimates[index].pledged_in += self.flow_bytes_estimate
        return index

    def select_egress(self):
        """Locator index for *outbound* traffic (local TE, Step 7b)."""
        index = self._select(direction="out")
        self.estimates[index].pledged_out += self.flow_bytes_estimate
        return index

    def select_ingress_rloc(self):
        return self.site.rloc_of(self.select_ingress())

    def _load(self, estimate, direction):
        if direction == "in":
            return estimate.bytes_in + estimate.pledged_in
        return estimate.bytes_out + estimate.pledged_out

    def _select(self, direction):
        candidates = range(len(self.estimates))
        if self.policy == "primary":
            return 0
        if self.policy == "latency":
            return min(candidates, key=lambda b: (self.estimates[b].delay_ewma, b))
        if self.policy == "balance":
            return min(candidates, key=lambda b: (self._load(self.estimates[b], direction), b))
        if self.policy == "cost":
            loads = [self._load(est, direction) for est in self.estimates]
            total = sum(loads) or 1
            affordable = [b for b in candidates
                          if loads[b] / total <= self.utilisation_cap]
            pool = affordable or list(candidates)
            return min(pool, key=lambda b: (self.estimates[b].cost_per_byte,
                                            self._load(self.estimates[b], direction), b))
        raise ValueError(f"unknown IRC policy {self.policy!r}")

    def snapshot(self):
        """Per-locator view for reporting: (delay_ewma, bytes_in, bytes_out)."""
        return [(est.delay_ewma, est.bytes_in, est.bytes_out) for est in self.estimates]

    #: Construction-time config plus the seeded RNG stream (restored through
    #: the simulator's RandomStreams checkpoint) and the periodic tick handle
    #: (armed/next-fire state is engine state, captured by the simulator).
    _SNAPSHOT_EXEMPT = ("sim", "site", "topology", "policy", "period",
                        "ewma_alpha", "jitter", "flow_bytes_estimate",
                        "utilisation_cap", "_rng", "_task")

    def snapshot_state(self):
        """Round counter and per-provider estimates for world reuse.

        Whether the measurement tick is armed (and when it next fires) is
        engine state, captured by the simulator's own checkpoint.
        """
        return (self.measurement_rounds,
                [(est.delay_ewma, est.bytes_in, est.bytes_out,
                  est.pledged_in, est.pledged_out) for est in self.estimates])

    def restore_state(self, state):
        self.measurement_rounds, estimates = state
        for est, values in zip(self.estimates, estimates, strict=True):
            (est.delay_ewma, est.bytes_in, est.bytes_out,
             est.pledged_in, est.pledged_out) = values
