"""Traffic-engineering helpers: load monitoring and egress re-homing.

The paper's Step 7b rationale: "The advantage of pushing the mapping to all
ITRs is that PCE_S can carry out local TE actions, and move part of its
internal traffic, without caring whether a mapping will be in place in the
relevant ITRs after the TE optimization."

:func:`plan_rebalance` produces that optimisation: given per-ITR loads and
the per-destination flows currently homed on each ITR, it greedily moves
flows from the most- to the least-loaded ITR until the imbalance falls
under a tolerance.  :meth:`PceControlPlane.apply_rebalance` then rewrites
hub routes — safe under push-to-all, lossy under push-to-one (the ablation
benchmark measures exactly that difference).
"""

from dataclasses import dataclass


class LinkLoadMonitor:
    """Windowed byte counters over a set of links."""

    def __init__(self, sim, links):
        self.sim = sim
        self.links = list(links)
        self._window_start_bytes = [link.stats.tx_bytes for link in self.links]
        self._window_start_time = sim.now

    def reset_window(self):
        self._window_start_bytes = [link.stats.tx_bytes for link in self.links]
        self._window_start_time = self.sim.now

    def window_bytes(self):
        """Bytes transmitted per link since the window started."""
        return [link.stats.tx_bytes - start
                for link, start in zip(self.links, self._window_start_bytes,
                                       strict=True)]

    def window_rates(self):
        """Bytes/second per link over the current window."""
        elapsed = self.sim.now - self._window_start_time
        if elapsed <= 0:
            return [0.0] * len(self.links)
        return [count / elapsed for count in self.window_bytes()]

    def imbalance(self):
        """max/mean of the window byte counts (1.0 = perfectly balanced)."""
        counts = self.window_bytes()
        total = sum(counts)
        if total == 0:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean


@dataclass(frozen=True)
class FlowMove:
    """Move the flows toward *destination_prefix* from one ITR to another."""

    destination_prefix: object
    from_itr: int
    to_itr: int
    bytes_estimate: int


def plan_rebalance(loads, flows_by_itr, tolerance=1.2):
    """Greedy egress re-homing plan.

    Parameters
    ----------
    loads:
        Current byte counts per ITR index.
    flows_by_itr:
        ``{itr_index: [(destination_prefix, bytes_estimate), ...]}`` —
        the flows currently homed on each ITR, heaviest first or not.
    tolerance:
        Stop when ``max(load)/mean(load)`` drops to this value.

    Returns a list of :class:`FlowMove`.
    """
    loads = list(loads)
    flows = {index: sorted(entries, key=lambda item: -item[1])
             for index, entries in flows_by_itr.items()}
    moves = []
    if len(loads) < 2:
        return moves
    for _round in range(256):
        total = sum(loads)
        if total == 0:
            break
        mean = total / len(loads)
        heaviest = max(range(len(loads)), key=lambda i: loads[i])
        lightest = min(range(len(loads)), key=lambda i: loads[i])
        if loads[heaviest] / mean <= tolerance or heaviest == lightest:
            break
        candidates = flows.get(heaviest)
        if not candidates:
            break
        # Move the largest flow that strictly lowers the maximum load —
        # anything else would oscillate between the two ITRs.
        chosen = None
        for position, (_prefix, size) in enumerate(candidates):
            new_max = max(loads[heaviest] - size, loads[lightest] + size)
            if new_max < loads[heaviest]:
                chosen = position
                break
        if chosen is None:
            break
        prefix, size = candidates.pop(chosen)
        loads[heaviest] -= size
        loads[lightest] += size
        flows.setdefault(lightest, []).append((prefix, size))
        moves.append(FlowMove(destination_prefix=prefix, from_itr=heaviest,
                              to_itr=lightest, bytes_estimate=size))
    return moves
