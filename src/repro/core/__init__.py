"""The paper's contribution: a PCE-based control plane for LISP.

Each site runs a Path Computation Element (PCE) co-located with — and in
the data path of — its DNS server.  The PCE:

- learns, via IPC with the local resolver, which local host started a
  lookup (Step 1) and precomputes the site's *ingress* locator for the
  coming reverse traffic using IRC techniques;
- transparently observes the iterative DNS exchange (Steps 2-5);
- acting as the destination-side PCE, intercepts the authoritative reply
  carrying the destination EID and encapsulates it — together with the
  precomputed EID-to-RLOC mapping — toward the querying resolver on a
  dedicated UDP port P (Step 6);
- acting as the source-side PCE, decapsulates port-P messages, forwards
  the original DNS reply to the resolver (Step 7a) and pushes the mapping
  tuple (E_S, E_D, RLOC_S, RLOC_D) to *all* local ITRs (Step 7b),
  supporting two independent one-way tunnels;
- completes two-way resolution when the first data packet reaches the
  chosen ETR, which multicasts the reverse mapping to its sibling ETRs
  and updates the PCE database (§2, closing paragraph).

Public entry point: :func:`repro.core.control_plane.deploy_pce_control_plane`.
"""

from repro.core.control_plane import PceControlPlane, deploy_pce_control_plane
from repro.core.irc import IrcEngine
from repro.core.messages import (
    PORT_MAPPING_PUSH,
    PORT_PCE,
    PORT_REVERSE,
    EncapsulatedDnsReply,
    MappingPush,
    ReverseMappingAnnounce,
)
from repro.core.pce import Pce
from repro.core.te import LinkLoadMonitor, plan_rebalance

__all__ = [
    "EncapsulatedDnsReply",
    "IrcEngine",
    "LinkLoadMonitor",
    "MappingPush",
    "Pce",
    "PceControlPlane",
    "PORT_MAPPING_PUSH",
    "PORT_PCE",
    "PORT_REVERSE",
    "ReverseMappingAnnounce",
    "deploy_pce_control_plane",
    "plan_rebalance",
]
