"""Deployment and site-level glue for the PCE-based control plane.

:func:`deploy_pce_control_plane` wires, for every site in a topology:

- a :class:`~repro.core.irc.IrcEngine` (background measurement),
- a :class:`~repro.core.pce.Pce` on the PCE node,
- one :class:`~repro.lisp.xtr.TunnelRouter` per border router, with **no
  reactive mapping system** (mappings arrive only by push) and gleaning
  off (reverse mappings are distributed explicitly),
- UDP handlers for the mapping-push and reverse-multicast ports,
- an ETR decapsulation hook implementing the closing-paragraph sequence:
  first data packet -> reverse mapping -> multicast to sibling ETRs and
  the local PCE database.

It also owns the egress routing table (hub per-destination routes) so the
TE re-homing of :mod:`repro.core.te` can be applied, and implements the
push-to-all vs push-to-one ablation via ``push_mode``.
"""

from repro.core.irc import IrcEngine
from repro.core.messages import (
    PORT_MAPPING_PUSH,
    PORT_REVERSE,
    MappingPush,
    ReverseMappingAnnounce,
)
from repro.core.pce import Pce
from repro.core.te import LinkLoadMonitor, plan_rebalance
from repro.lisp import EID_SPACE
from repro.lisp.control.base import MappingRegistry
from repro.lisp.mappings import MappingRecord, RlocEntry, site_mapping
from repro.lisp.policies import DropPolicy
from repro.lisp.xtr import TunnelRouter
from repro.net.addresses import IPv4Prefix
from repro.net.fib import FibEntry


class PceControlPlane:
    """All per-deployment state of the PCE control plane."""

    def __init__(self, sim, topology, dns_system, irc_policy="balance",
                 precompute=True, computation_delay=0.0005, mapping_ttl=60.0,
                 push_mode="all", refresh_on_cached_answers=True,
                 miss_policy=None, start_irc=True, irc_period=0.5,
                 enable_probing=False, probe_period=0.5, probe_timeout=None,
                 include_backup_rlocs=None):
        if push_mode not in ("all", "one"):
            raise ValueError(f"push_mode must be 'all' or 'one', got {push_mode!r}")
        self.sim = sim
        self.topology = topology
        self.dns_system = dns_system
        self.push_mode = push_mode
        self.mapping_ttl = mapping_ttl
        self.registry = MappingRegistry()
        self.miss_policy = miss_policy if miss_policy is not None else DropPolicy(sim)
        if include_backup_rlocs is None:
            include_backup_rlocs = enable_probing  # backups only help if probed
        if probe_timeout is None:
            # Keep the historical 0.3s timeout whenever it is valid; only
            # scale down for faster probing (RlocProber requires
            # timeout < period so probe rounds never overlap).
            probe_timeout = 0.3 if probe_period > 0.3 else 0.6 * probe_period
        self.enable_probing = enable_probing
        self.pces = {}
        self.ircs = {}
        self.probers = {}
        self.xtrs_by_site = {}
        self.egress_assignments = {}   # site index -> {prefix: itr index}
        self.reverse_announcements = 0
        self.te_moves_applied = 0
        self._pending_egress_choice = {}

        for site in topology.sites:
            self.registry.register(site_mapping(site, ttl=mapping_ttl))

        for site in topology.sites:
            irc = IrcEngine(sim, site, topology, policy=irc_policy, period=irc_period)
            if start_irc:
                irc.start()
            else:
                irc.measure_once()
            self.ircs[site.index] = irc
            resolver = dns_system.resolver_for(site)
            pce = Pce(sim, site, topology, resolver, self.registry, irc,
                      control_plane=self, precompute=precompute,
                      computation_delay=computation_delay,
                      refresh_on_cached_answers=refresh_on_cached_answers,
                      include_backup_rlocs=include_backup_rlocs)
            self.pces[site.index] = pce
            site.pce_node.bind_udp(PORT_REVERSE, self._make_pce_reverse_handler(pce))
            routers = []
            for node in site.xtrs:
                xtr = TunnelRouter(sim, node, site, miss_policy=self.miss_policy,
                                   mapping_system=None, gleaning=False)
                xtr.decap_listeners.append(self._make_etr_hook(site, xtr))
                node.bind_udp(PORT_MAPPING_PUSH, self._on_mapping_push)
                node.bind_udp(PORT_REVERSE, self._on_reverse_announce)
                if enable_probing:
                    from repro.lisp.probing import RlocProber

                    prober = RlocProber(sim, xtr, period=probe_period,
                                        timeout=probe_timeout)
                    prober.start()
                    self.probers[node.name] = prober
                routers.append(xtr)
            self.xtrs_by_site[site.index] = routers
            self.egress_assignments[site.index] = {}

    # ------------------------------------------------------------------ #
    # Push distribution
    # ------------------------------------------------------------------ #

    def push_targets(self, site):
        """Which ITR indices receive a mapping push (the ablation knob)."""
        if self.push_mode == "all":
            return list(range(len(site.xtrs)))
        chosen = self.ircs[site.index].select_egress()
        self._pending_egress_choice[site.index] = chosen
        return [chosen]

    def set_egress_route(self, site, prefix, egress_index):
        """Point the hub's route for *prefix* at the chosen egress ITR."""
        if self.push_mode == "one":
            egress_index = self._pending_egress_choice.pop(site.index, egress_index)
        hub_iface = site.hub_links[egress_index]["hub_iface"]
        site.hub.fib.insert(FibEntry(IPv4Prefix(prefix), hub_iface))
        self.egress_assignments[site.index][IPv4Prefix(prefix)] = egress_index

    def _on_mapping_push(self, packet, node):
        message = packet.payload
        if not isinstance(message, MappingPush):
            return
        xtr = node.services.get("xtr-service")
        if xtr is None:
            return
        xtr.install_mapping(message.mapping, origin="pce-push", ttl=self.mapping_ttl)

    # ------------------------------------------------------------------ #
    # ETR reverse-mapping multicast
    # ------------------------------------------------------------------ #

    def _make_etr_hook(self, site, xtr):
        return EtrReverseHook(self, site, xtr)

    @staticmethod
    def _make_pce_reverse_handler(pce):
        return PceReverseHandler(pce)

    def _on_reverse_announce(self, packet, node):
        message = packet.payload
        if not isinstance(message, ReverseMappingAnnounce):
            return
        xtr = node.services.get("xtr-service")
        if xtr is not None:
            xtr.install_mapping(message.mapping, origin="reverse-multicast",
                                ttl=self.mapping_ttl)

    # ------------------------------------------------------------------ #
    # Mapping visibility helpers
    # ------------------------------------------------------------------ #

    def itr_has_live_mapping(self, site, eid):
        """True if every push target currently holds a mapping for *eid*."""
        routers = self.xtrs_by_site[site.index]
        if self.push_mode == "one":
            assignment = self.egress_assignments[site.index]
            for prefix, index in assignment.items():
                if prefix.contains(eid):
                    return routers[index].map_cache.peek(eid) is not None
            return False
        return all(router.map_cache.peek(eid) is not None for router in routers)

    def mapping_available_time(self, site, prefix):
        """Time of the latest Step-7b push covering *prefix* at *site*."""
        prefix = IPv4Prefix(prefix)
        pce = self.pces[site.index]
        for when, _source, pushed_prefix in reversed(pce.stats.push_timeline):
            if pushed_prefix == prefix:
                return when
        return None

    # ------------------------------------------------------------------ #
    # TE re-homing (uses repro.core.te)
    # ------------------------------------------------------------------ #

    def uplink_monitor(self, site):
        return LinkLoadMonitor(self.sim, [links["uplink"] for links in site.access_links])

    def rebalance_site_egress(self, site, loads=None, flow_bytes_estimate=50_000,
                              tolerance=1.2):
        """Plan and apply egress re-homing for *site*; returns the moves."""
        assignment = self.egress_assignments[site.index]
        if loads is None:
            monitor = self.uplink_monitor(site)
            loads = monitor.window_bytes()
        flows_by_itr = {}
        for prefix, index in assignment.items():
            flows_by_itr.setdefault(index, []).append((prefix, flow_bytes_estimate))
        moves = plan_rebalance(loads, flows_by_itr, tolerance=tolerance)
        for move in moves:
            self.set_egress_route(site, move.destination_prefix, move.to_itr)
            self.te_moves_applied += 1
            self.sim.trace.record(self.sim.now, site.hub.name, "te.rehome",
                                  prefix=str(move.destination_prefix),
                                  frm=move.from_itr, to=move.to_itr)
        return moves

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #

    def total_push_messages(self):
        return sum(pce.stats.push_messages for pce in self.pces.values())

    def total_push_bytes(self):
        return sum(pce.stats.push_bytes for pce in self.pces.values())

    def total_control_messages(self):
        pushes = self.total_push_messages()
        encaps = sum(pce.stats.replies_encapsulated for pce in self.pces.values())
        reverses = self.reverse_announcements * 2  # siblings + PCE copy lower bound
        return pushes + encaps + reverses

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: Deploy-time wiring and config, immutable after __init__.  The xTRs in
    #: ``xtrs_by_site`` are independently checkpointed components; only the
    #: site->router table itself lives here, and it never changes.
    _SNAPSHOT_EXEMPT = ("sim", "topology", "dns_system", "push_mode",
                        "mapping_ttl", "enable_probing", "xtrs_by_site")

    def snapshot_state(self):
        return {
            "counters": (self.reverse_announcements, self.te_moves_applied),
            "egress": {index: dict(assignment)
                       for index, assignment in self.egress_assignments.items()},
            "pending_egress": dict(self._pending_egress_choice),
            "registry": self.registry.snapshot_state(),
            "miss_policy": self.miss_policy.snapshot_state(),
            "pces": {index: pce.snapshot_state()
                     for index, pce in self.pces.items()},
            "ircs": {index: irc.snapshot_state()
                     for index, irc in self.ircs.items()},
            "probers": {name: prober.snapshot_state()
                        for name, prober in self.probers.items()},
        }

    def restore_state(self, state):
        self.reverse_announcements, self.te_moves_applied = state["counters"]
        self.egress_assignments = {index: dict(assignment)
                                   for index, assignment in state["egress"].items()}
        self._pending_egress_choice = dict(state["pending_egress"])
        self.registry.restore_state(state["registry"])
        self.miss_policy.restore_state(state["miss_policy"])
        for index, pce_state in state["pces"].items():
            self.pces[index].restore_state(pce_state)
        for index, irc_state in state["ircs"].items():
            self.ircs[index].restore_state(irc_state)
        for name, prober_state in state["probers"].items():
            self.probers[name].restore_state(prober_state)


class EtrReverseHook:
    """ETR decapsulation hook: first data packet -> reverse-mapping multicast.

    A callable class rather than a closure so built worlds stay picklable
    (snapshot blobs serialize the whole object graph, and xTRs hold these in
    ``decap_listeners``).
    """

    __slots__ = ("control_plane", "site", "xtr")

    def __init__(self, control_plane, site, xtr):
        self.control_plane = control_plane
        self.site = site
        self.xtr = xtr

    def __call__(self, _xtr, inner, outer_ip, first_packet):
        if not first_packet:
            return
        source = inner.ip.src
        if not EID_SPACE.contains(source):
            return
        control_plane, site, xtr = self.control_plane, self.site, self.xtr
        reverse = MappingRecord(IPv4Prefix(int(source), 32),
                                (RlocEntry(outer_ip.src),),
                                ttl=control_plane.mapping_ttl)
        # (ii) install locally so this xTR can carry the reverse flow...
        xtr.install_mapping(reverse, origin="reverse-local",
                            ttl=control_plane.mapping_ttl)
        # (iii) ...then multicast to sibling ETRs and the PCE database.
        announce = ReverseMappingAnnounce(mapping=reverse, origin_etr=xtr.rloc)
        control_plane.reverse_announcements += 1
        source = site.xtr_control_address(site.xtrs.index(xtr.node))
        for b, sibling in enumerate(site.xtrs):
            if sibling is xtr.node:
                continue
            xtr.node.send_udp(src=source, dst=site.xtr_control_address(b),
                              sport=PORT_REVERSE, dport=PORT_REVERSE,
                              payload=announce)
        xtr.node.send_udp(src=source, dst=site.pce_address,
                          sport=PORT_REVERSE, dport=PORT_REVERSE,
                          payload=announce)
        sim = control_plane.sim
        sim.trace.record(sim.now, xtr.node.name, "etr.reverse-multicast",
                         prefix=str(reverse.eid_prefix),
                         rloc=str(outer_ip.src))


class PceReverseHandler:
    """UDP handler feeding reverse-mapping announces into a PCE (picklable)."""

    __slots__ = ("pce",)

    def __init__(self, pce):
        self.pce = pce

    def __call__(self, packet, _node):
        message = packet.payload
        if isinstance(message, ReverseMappingAnnounce):
            self.pce.learn_reverse_mapping(message.mapping)


def deploy_pce_control_plane(sim, topology, dns_system, **kwargs):
    """Convenience constructor mirroring :func:`repro.lisp.deploy.deploy_lisp`."""
    return PceControlPlane(sim, topology, dns_system, **kwargs)
