"""Multi-AS topology builder.

Builds the world the paper's Fig. 1 sketches: stub sites ("AS_S", "AS_D")
multihomed to providers ("Provider A/B" for the source site, "X/Y" for the
destination site), with the provider routers forming the "Internet" in the
middle of the figure.

Per-site wiring (all point-to-point links)::

    host_0 ... host_n          (EID addresses, site-internal only)
        \\   |   /
          [hub]----[xtr_0]----(provider p0 edge)     xtr RLOC from p0's /8
            |  \\---[xtr_1]----(provider p1 edge)     xtr RLOC from p1's /8
          [pce]                (infrastructure address, globally routable)
            |
          [dns]                (infrastructure address, globally routable)

The DNS server's **only** link goes through the PCE node, which makes the
PCE "in the data path of the DNS servers" (paper §2, Steps 2-5) a physical
property of the topology rather than a modelling convention.

Address plan
------------
- Provider ``p`` owns ``(10+p).0.0.0/8`` (locator space, mirrors Fig. 1's
  10/8-13/8 annotations).
- Site ``s`` EID prefix: ``100.(s>>8).(s&255).0/24`` — never installed in
  provider FIBs unless ``eids_globally_routable`` (the plain-IP baseline).
- Site ``s`` infrastructure prefix: ``198.(18+(s>>8)).(s&255).0/24``; DNS at
  ``.10``, PCE at ``.20``, xTR control addresses at ``.30+b``.  Routed
  globally via the site's first provider (its "home").
- xTR ``b`` of site ``s`` on provider ``p``: RLOC ``(10+p).(1+(s>>8)).(s&255).(b+1)``.
"""

from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.fib import FibEntry
from repro.net.host import Host
from repro.net.link import connect
from repro.net.router import Router
from repro.net.routing import RoutingPlan, mesh_fingerprint

DEFAULT_PREFIX = IPv4Prefix("0.0.0.0/0")

# Intra-site link delays (seconds). Small against WAN delays, as in a campus.
HOST_HUB_DELAY = 0.0001
DNS_PCE_DELAY = 0.00005
PCE_HUB_DELAY = 0.0001
XTR_HUB_DELAY = 0.0002


@dataclass
class Site:
    """One stub domain: hosts, DNS+PCE pair, and one xTR per provider."""

    index: int
    name: str
    eid_prefix: IPv4Prefix
    infra_prefix: IPv4Prefix
    hub: Router
    dns_node: Host
    pce_node: Router
    hosts: list = field(default_factory=list)
    xtrs: list = field(default_factory=list)
    provider_ids: list = field(default_factory=list)
    access_delays: list = field(default_factory=list)
    #: per-xTR access links: {"uplink": xtr->provider, "downlink": provider->xtr}
    access_links: list = field(default_factory=list)
    #: per-xTR hub-side handles: {"hub_iface": hub's iface to this xTR}
    hub_links: list = field(default_factory=list)

    @property
    def dns_address(self):
        return self.infra_prefix.address_at(10)

    @property
    def pce_address(self):
        return self.infra_prefix.address_at(20)

    def xtr_control_address(self, b):
        """Site-internal control address of xTR *b* (mapping pushes go here)."""
        return self.infra_prefix.address_at(30 + b)

    def rlocs(self):
        """The site's routing locators, one per xTR, in xTR order."""
        return [xtr.services["rloc"] for xtr in self.xtrs]

    def rloc_of(self, b):
        return self.xtrs[b].services["rloc"]

    def xtr_for_rloc(self, rloc):
        """The xTR owning *rloc* (None if not this site's)."""
        rloc = IPv4Address(rloc)
        for xtr in self.xtrs:
            if xtr.services["rloc"] == rloc:
                return xtr
        return None

    def host_domain_name(self, host_index):
        """The DNS name of host *host_index* (see repro.dns zone builder)."""
        return f"host{host_index}.{self.name}.example."

    def __str__(self):
        return self.name


@dataclass
class Topology:
    """The built world: providers, sites, and shared infrastructure hosts."""

    sim: object
    providers: list
    provider_prefixes: list
    sites: list
    infra_hosts: dict = field(default_factory=dict)
    attachments: list = field(default_factory=list)
    eids_globally_routable: bool = False
    #: Memoized :class:`~repro.net.routing.RoutingPlan` (see :meth:`routing_plan`).
    _plan: object = field(default=None, repr=False)
    #: How many ``attachments`` entries have already been installed.
    _routes_installed: int = field(default=0, repr=False)

    def all_nodes(self):
        nodes = list(self.providers)
        for site in self.sites:
            nodes.append(site.hub)
            nodes.append(site.dns_node)
            nodes.append(site.pce_node)
            nodes.extend(site.hosts)
            nodes.extend(site.xtrs)
        nodes.extend(self.infra_hosts.values())
        return nodes

    def site_of_eid(self, eid):
        """The site whose EID prefix contains *eid* (None if none)."""
        eid = IPv4Address(eid)
        for site in self.sites:
            if site.eid_prefix.contains(eid):
                return site
        return None

    def site_of_rloc(self, rloc):
        rloc = IPv4Address(rloc)
        for site in self.sites:
            if site.xtr_for_rloc(rloc) is not None:
                return site
        return None

    def routing_plan(self):
        """The provider-mesh :class:`~repro.net.routing.RoutingPlan`.

        Computed on first use and memoized against the mesh fingerprint:
        as long as the provider routers and their mesh links are unchanged
        (site/infrastructure attachments don't count), the same shortest-path
        tables serve every install and delay query for this topology.
        """
        fingerprint = mesh_fingerprint(self.providers)
        if self._plan is None or self._plan.fingerprint != fingerprint:
            self._plan = RoutingPlan(self.providers, fingerprint=fingerprint)
            self._routes_installed = 0  # new tables: (re)install everything
        return self._plan

    def provider_mesh_delay(self, provider_a, provider_b):
        """Shortest-path delay between two provider routers (O(1) from the plan).

        Trusts the memoized plan without re-fingerprinting the mesh — this
        is the hot query (the IRC engine asks per provider pair, per site,
        per measurement round).  Route *installs* revalidate the
        fingerprint, and mesh links never change between installs outside
        of tests.
        """
        plan = self._plan if self._plan is not None else self.routing_plan()
        return plan.delay(provider_a, provider_b)

    def attach_infra_host(self, provider_id, name, address):
        """Attach a shared infrastructure host (e.g. root/TLD DNS) to a provider.

        The host gets a /32 visible from the whole mesh.  Must be called
        before :meth:`install_global_routes`.
        """
        provider = self.providers[provider_id]
        host = Host(self.sim, name, address=address)
        host_iface = host.add_interface("up")
        provider_iface = provider.add_interface(f"to-{name}")
        connect(self.sim, provider_iface, host_iface, delay=0.0005)
        host.fib.insert(FibEntry(DEFAULT_PREFIX, host_iface))
        self.attachments.append((IPv4Prefix(int(IPv4Address(address)), 32),
                                 provider, provider_iface))
        self.infra_hosts[name] = host
        return host

    def install_global_routes(self):
        """Install provider-mesh routes for attachments added since last call.

        Incremental: the memoized :meth:`routing_plan` tables are reused and
        only the not-yet-installed tail of ``attachments`` is inserted, so
        attaching infrastructure hosts after the initial build (DNS roots,
        CONS CDRs, the NERD authority) costs O(new attachments x providers)
        instead of a full all-pairs recomputation.
        """
        plan = self.routing_plan()
        pending = self.attachments[self._routes_installed:]
        if pending:
            plan.install(pending)
        self._routes_installed = len(self.attachments)


def eid_prefix_for(site_index):
    return IPv4Prefix(f"100.{site_index >> 8}.{site_index & 255}.0/24")


def infra_prefix_for(site_index):
    return IPv4Prefix(f"198.{18 + (site_index >> 8)}.{site_index & 255}.0/24")


def provider_prefix_for(provider_id):
    return IPv4Prefix(f"{10 + provider_id}.0.0.0/8")


def rloc_for(provider_id, site_index, xtr_index):
    return IPv4Address(
        f"{10 + provider_id}.{1 + (site_index >> 8)}.{site_index & 255}.{xtr_index + 1}"
    )


def build_topology(sim, num_sites=2, num_providers=4, providers_per_site=2,
                   hosts_per_site=2, wan_delay_range=(0.010, 0.040),
                   access_delay_range=(0.001, 0.005), access_rate_bps=None,
                   eids_globally_routable=False,
                   provider_assignment=None, rng_stream="topology"):
    """Build providers, sites, links and intra-site routing.

    ``provider_assignment``, when given, is a list of provider-id lists, one
    per site, overriding the default rotation.  ``access_rate_bps`` gives
    the site access links a finite transmission rate (None keeps them
    infinite), which makes link busy time — and utilization — observable
    for traffic-shaping experiments.  Global (provider-mesh) routes are
    installed at the end; callers that attach additional infrastructure
    hosts afterwards must re-run :meth:`Topology.install_global_routes`.
    """
    if providers_per_site > num_providers:
        raise ValueError("providers_per_site exceeds num_providers")
    rng = sim.rng.stream(rng_stream)

    # --- Provider mesh -------------------------------------------------- #
    providers = []
    provider_prefixes = []
    for p in range(num_providers):
        router = Router(sim, f"prov{p}")
        router.add_address(provider_prefix_for(p).address_at(1))
        providers.append(router)
        provider_prefixes.append(provider_prefix_for(p))
    for a in range(num_providers):
        for b in range(a + 1, num_providers):
            delay = rng.uniform(*wan_delay_range)
            iface_a = providers[a].add_interface(f"to-prov{b}")
            iface_b = providers[b].add_interface(f"to-prov{a}")
            connect(sim, iface_a, iface_b, delay=delay)

    topology = Topology(sim=sim, providers=providers, provider_prefixes=provider_prefixes,
                        sites=[], eids_globally_routable=eids_globally_routable)

    # Each provider owns its /8 block.
    for p, router in enumerate(providers):
        topology.attachments.append((provider_prefixes[p], router, None))

    # --- Sites ---------------------------------------------------------- #
    for s in range(num_sites):
        assigned = provider_assignment[s] if provider_assignment is not None else None
        site = _build_site(sim, topology, s, providers_per_site, hosts_per_site,
                           access_delay_range, rng, assigned_providers=assigned,
                           access_rate_bps=access_rate_bps)
        topology.sites.append(site)

    topology.install_global_routes()
    return topology


def _build_site(sim, topology, s, providers_per_site, hosts_per_site,
                access_delay_range, rng, assigned_providers=None,
                access_rate_bps=None):
    name = f"site{s}"
    eid_prefix = eid_prefix_for(s)
    infra_prefix = infra_prefix_for(s)
    num_providers = len(topology.providers)

    hub = Router(sim, f"{name}-hub")
    hub.add_address(eid_prefix.address_at(1))
    dns_node = Host(sim, f"{name}-dns", address=infra_prefix.address_at(10))
    pce_node = Router(sim, f"{name}-pce")
    pce_node.add_address(infra_prefix.address_at(20))

    site = Site(index=s, name=name, eid_prefix=eid_prefix, infra_prefix=infra_prefix,
                hub=hub, dns_node=dns_node, pce_node=pce_node)

    if assigned_providers is not None:
        chosen = list(assigned_providers)
    else:
        # Deterministic but varied provider assignment: rotate through the
        # mesh.  When gcd(stride, num_providers) > 1 the rotation only visits
        # a subgroup, so complete the candidate order with the remaining
        # providers instead of cycling forever.
        first = s % num_providers
        stride = 1 + (s // num_providers) % max(1, num_providers - 1)
        order = []
        p = first
        for _ in range(num_providers):
            if p not in order:
                order.append(p)
            p = (p + stride) % num_providers
        for p in range(num_providers):
            if p not in order:
                order.append(p)
        chosen = order[:providers_per_site]
    site.provider_ids = chosen

    # Hosts on the hub.
    for i in range(hosts_per_site):
        host = Host(sim, f"{name}-host{i}", address=eid_prefix.address_at(10 + i))
        host_iface = host.add_interface("up")
        hub_iface = hub.add_interface(f"to-host{i}")
        connect(sim, hub_iface, host_iface, delay=HOST_HUB_DELAY)
        host.fib.insert(FibEntry(DEFAULT_PREFIX, host_iface))
        hub.fib.insert(FibEntry(IPv4Prefix(int(host.address), 32), hub_iface))
        site.hosts.append(host)

    # DNS behind PCE: dns -- pce -- hub.
    dns_iface = dns_node.add_interface("up")
    pce_dns_iface = pce_node.add_interface("to-dns")
    connect(sim, pce_dns_iface, dns_iface, delay=DNS_PCE_DELAY)
    dns_node.fib.insert(FibEntry(DEFAULT_PREFIX, dns_iface))

    pce_hub_iface = pce_node.add_interface("to-hub")
    hub_pce_iface = hub.add_interface("to-pce")
    connect(sim, hub_pce_iface, pce_hub_iface, delay=PCE_HUB_DELAY)
    pce_node.fib.insert(FibEntry(IPv4Prefix(int(site.dns_address), 32), pce_dns_iface))
    pce_node.fib.insert(FibEntry(DEFAULT_PREFIX, pce_hub_iface))
    hub.fib.insert(FibEntry(IPv4Prefix(int(site.dns_address), 32), hub_pce_iface))
    hub.fib.insert(FibEntry(IPv4Prefix(int(site.pce_address), 32), hub_pce_iface))

    # xTRs: one per provider.
    for b, p in enumerate(site.provider_ids):
        xtr = Router(sim, f"{name}-xtr{b}")
        rloc = rloc_for(p, s, b)
        xtr.add_address(rloc)
        xtr.add_address(site.xtr_control_address(b))
        xtr.register_service("rloc", rloc)
        xtr.register_service("site", site)
        xtr.register_service("provider_id", p)

        xtr_hub_iface = xtr.add_interface("to-hub")
        hub_xtr_iface = hub.add_interface(f"to-xtr{b}")
        connect(sim, hub_xtr_iface, xtr_hub_iface, delay=XTR_HUB_DELAY)

        provider = topology.providers[p]
        access_delay = rng.uniform(*access_delay_range)
        xtr_up_iface = xtr.add_interface("up", address=rloc)
        provider_iface = provider.add_interface(f"to-{name}-xtr{b}")
        downlink, uplink = connect(sim, provider_iface, xtr_up_iface, delay=access_delay,
                                   rate_bps=access_rate_bps)
        site.access_links.append({"uplink": uplink, "downlink": downlink})
        site.hub_links.append({"hub_iface": hub_xtr_iface})

        # xTR routing: site prefixes inward, everything else to the provider.
        xtr.fib.insert(FibEntry(site.eid_prefix, xtr_hub_iface))
        xtr.fib.insert(FibEntry(site.infra_prefix, xtr_hub_iface))
        xtr.fib.insert(FibEntry(DEFAULT_PREFIX, xtr_up_iface))

        # Hub can reach each xTR's control address.
        hub.fib.insert(FibEntry(IPv4Prefix(int(site.xtr_control_address(b)), 32),
                                hub_xtr_iface))
        # Provider can deliver to the xTR's RLOC.
        topology.attachments.append((IPv4Prefix(int(rloc), 32), provider, provider_iface))

        site.xtrs.append(xtr)
        site.access_delays.append(access_delay)

        if b == 0:
            # Home attachment: the site's infrastructure prefix (and its EID
            # prefix, in plain-IP mode) is reachable via xtr0.
            topology.attachments.append((site.infra_prefix, provider, provider_iface))
            if topology.eids_globally_routable:
                topology.attachments.append((site.eid_prefix, provider, provider_iface))

    # Hub default: out via xtr0 (TE may override per destination later).
    hub.fib.insert(FibEntry(DEFAULT_PREFIX, hub.interfaces["to-xtr0"]))
    return site


def build_fig1_topology(sim, **overrides):
    """The exact Fig. 1 scenario: two sites, two providers each.

    Site 0 ("AS_S") homes to providers A(10/8) and B(11/8); site 1 ("AS_D")
    homes to providers X(12/8) and Y(13/8).
    """
    params = dict(num_sites=2, num_providers=4, providers_per_site=2,
                  hosts_per_site=2, provider_assignment=[[0, 1], [2, 3]])
    params.update(overrides)
    topology = build_topology(sim, **params)
    topology.site_s = topology.sites[0]
    topology.site_d = topology.sites[1]
    return topology
