"""Multi-AS topology builder.

Builds the world the paper's Fig. 1 sketches: stub sites ("AS_S", "AS_D")
multihomed to providers ("Provider A/B" for the source site, "X/Y" for the
destination site), with the provider routers forming the "Internet" in the
middle of the figure.

Per-site wiring (all point-to-point links)::

    host_0 ... host_n          (EID addresses, site-internal only)
        \\   |   /
          [hub]----[xtr_0]----(provider p0 edge)     xtr RLOC from p0's /8
            |  \\---[xtr_1]----(provider p1 edge)     xtr RLOC from p1's /8
          [pce]                (infrastructure address, globally routable)
            |
          [dns]                (infrastructure address, globally routable)

The DNS server's **only** link goes through the PCE node, which makes the
PCE "in the data path of the DNS servers" (paper §2, Steps 2-5) a physical
property of the topology rather than a modelling convention.

Address plan
------------
- Provider ``p`` owns ``(10+p).0.0.0/8`` (locator space, mirrors Fig. 1's
  10/8-13/8 annotations).
- Site ``s`` EID prefix: ``100.(s>>8).(s&255).0/24`` — never installed in
  provider FIBs unless ``eids_globally_routable`` (the plain-IP baseline).
- Site ``s`` infrastructure prefix: ``198.(18+(s>>8)).(s&255).0/24``; DNS at
  ``.10``, PCE at ``.20``, xTR control addresses at ``.30+b``.  Routed
  globally via the site's first provider (its "home").
- xTR ``b`` of site ``s`` on provider ``p``: RLOC ``(10+p).(1+(s>>8)).(s&255).(b+1)``.
"""

from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.fib import FibEntry
from repro.net.host import Host
from repro.net.link import connect
from repro.net.router import Router
from repro.net.routing import (DEFAULT_PREFIX, HierarchicalRoutingPlan,
                               RoutingPlan, mesh_fingerprint)

# Intra-site link delays (seconds). Small against WAN delays, as in a campus.
HOST_HUB_DELAY = 0.0001
DNS_PCE_DELAY = 0.00005
PCE_HUB_DELAY = 0.0001
XTR_HUB_DELAY = 0.0002


@dataclass
class Site:
    """One stub domain: hosts, DNS+PCE pair, and one xTR per provider."""

    index: int
    name: str
    eid_prefix: IPv4Prefix
    infra_prefix: IPv4Prefix
    hub: Router
    dns_node: Host
    pce_node: Router
    hosts: list = field(default_factory=list)
    xtrs: list = field(default_factory=list)
    provider_ids: list = field(default_factory=list)
    access_delays: list = field(default_factory=list)
    #: per-xTR access links: {"uplink": xtr->provider, "downlink": provider->xtr}
    access_links: list = field(default_factory=list)
    #: per-xTR hub-side handles: {"hub_iface": hub's iface to this xTR}
    hub_links: list = field(default_factory=list)

    @property
    def dns_address(self):
        return self.infra_prefix.address_at(10)

    @property
    def pce_address(self):
        return self.infra_prefix.address_at(20)

    def xtr_control_address(self, b):
        """Site-internal control address of xTR *b* (mapping pushes go here)."""
        return self.infra_prefix.address_at(30 + b)

    def rlocs(self):
        """The site's routing locators, one per xTR, in xTR order."""
        return [xtr.services["rloc"] for xtr in self.xtrs]

    def rloc_of(self, b):
        return self.xtrs[b].services["rloc"]

    def xtr_for_rloc(self, rloc):
        """The xTR owning *rloc* (None if not this site's)."""
        rloc = IPv4Address(rloc)
        for xtr in self.xtrs:
            if xtr.services["rloc"] == rloc:
                return xtr
        return None

    def host_domain_name(self, host_index):
        """The DNS name of host *host_index* (see repro.dns zone builder)."""
        return f"host{host_index}.{self.name}.example."

    def __str__(self):
        return self.name


@dataclass
class Topology:
    """The built world: providers, sites, and shared infrastructure hosts."""

    sim: object
    providers: list
    provider_prefixes: list
    sites: list
    infra_hosts: dict = field(default_factory=dict)
    attachments: list = field(default_factory=list)
    eids_globally_routable: bool = False
    #: :class:`~repro.net.routing.TierLayout` for tiered internets (see
    #: :mod:`repro.net.topogen`); None keeps the flat all-pairs mesh.
    tier_layout: object = field(default=None, repr=False)
    #: Internet-exchange routers (tiered families only).
    ix_routers: list = field(default_factory=list)
    #: Memoized routing plan — flat :class:`~repro.net.routing.RoutingPlan`
    #: or :class:`~repro.net.routing.HierarchicalRoutingPlan`, depending on
    #: ``tier_layout`` (see :meth:`routing_plan`).
    _plan: object = field(default=None, repr=False)
    #: How many ``attachments`` entries have already been installed.
    _routes_installed: int = field(default=0, repr=False)
    #: Lazily built ``(num_sites, eid_index, rloc_index, irregular)`` site
    #: lookup tables (see :meth:`_site_lookup`).
    _site_index: object = field(default=None, repr=False)

    def all_nodes(self):
        nodes = list(self.providers)
        nodes.extend(self.ix_routers)
        for site in self.sites:
            nodes.append(site.hub)
            nodes.append(site.dns_node)
            nodes.append(site.pce_node)
            nodes.extend(site.hosts)
            nodes.extend(site.xtrs)
        nodes.extend(self.infra_hosts.values())
        return nodes

    def mesh_routers(self):
        """The global routing mesh: providers plus IX routers."""
        return list(self.providers) + list(self.ix_routers)

    def _site_lookup(self):
        """Site lookup tables, rebuilt whenever the site count changes.

        ``site_of_eid`` / ``site_of_rloc`` are per-packet-ish queries (glean
        checks, trace attribution, experiment bookkeeping); a linear scan
        over 5k+ sites on each call would dominate large worlds.  EID
        lookups key on the containing /24 (the address-plan shape of every
        generated site); sites with other prefix lengths land in the
        ``irregular`` scan list so hand-built topologies stay correct.
        """
        cached = self._site_index
        if cached is None or cached[0] != len(self.sites):
            by_eid = {}
            by_rloc = {}
            irregular = []
            for site in self.sites:
                by_eid[site.eid_prefix] = site
                if site.eid_prefix.length != 24:
                    irregular.append(site)
                for xtr in site.xtrs:
                    by_rloc[IPv4Address(xtr.services["rloc"])] = site
            cached = (len(self.sites), by_eid, by_rloc, tuple(irregular))
            self._site_index = cached
        return cached

    def site_of_eid(self, eid):
        """The site whose EID prefix contains *eid* (None if none)."""
        eid = IPv4Address(eid)
        _count, by_eid, _by_rloc, irregular = self._site_lookup()
        site = by_eid.get(IPv4Prefix.containing(eid, 24))
        if site is not None and site.eid_prefix.contains(eid):
            return site
        for site in irregular:
            if site.eid_prefix.contains(eid):
                return site
        return None

    def site_of_rloc(self, rloc):
        _count, _by_eid, by_rloc, _irregular = self._site_lookup()
        return by_rloc.get(IPv4Address(rloc))

    def routing_plan(self):
        """The global routing plan, memoized against the mesh fingerprint.

        As long as the mesh routers (providers plus IXs) and their mesh
        links are unchanged — site/infrastructure attachments don't count —
        the same tables serve every install and delay query for this
        topology.  Topologies carrying a ``tier_layout`` get a
        :class:`~repro.net.routing.HierarchicalRoutingPlan` (core-only
        tables, aggregation at tier boundaries); flat ones keep the
        all-pairs :class:`~repro.net.routing.RoutingPlan`.
        """
        fingerprint = mesh_fingerprint(self.mesh_routers())
        if self._plan is None or self._plan.fingerprint != fingerprint:
            if self.tier_layout is not None:
                self._plan = HierarchicalRoutingPlan(
                    self.providers, self.tier_layout, fingerprint=fingerprint)
            else:
                self._plan = RoutingPlan(self.providers, fingerprint=fingerprint)
            self._routes_installed = 0  # new tables: (re)install everything
        return self._plan

    def provider_mesh_delay(self, provider_a, provider_b):
        """Shortest-path delay between two provider routers (O(1) from the plan).

        Trusts the memoized plan without re-fingerprinting the mesh — this
        is the hot query (the IRC engine asks per provider pair, per site,
        per measurement round).  Route *installs* revalidate the
        fingerprint, and mesh links never change between installs outside
        of tests.
        """
        plan = self._plan if self._plan is not None else self.routing_plan()
        return plan.delay(provider_a, provider_b)

    def attach_infra_host(self, provider_id, name, address):
        """Attach a shared infrastructure host (e.g. root/TLD DNS) to a provider.

        The host gets a /32 visible from the whole mesh.  Must be called
        before :meth:`install_global_routes`.
        """
        provider = self.providers[provider_id]
        host = Host(self.sim, name, address=address)
        host_iface = host.add_interface("up")
        provider_iface = provider.add_interface(f"to-{name}")
        connect(self.sim, provider_iface, host_iface, delay=0.0005)
        host.fib.insert(FibEntry(DEFAULT_PREFIX, host_iface))
        self.attachments.append((IPv4Prefix(int(IPv4Address(address)), 32),
                                 provider, provider_iface))
        self.infra_hosts[name] = host
        return host

    def install_global_routes(self):
        """Install provider-mesh routes for attachments added since last call.

        Incremental: the memoized :meth:`routing_plan` tables are reused and
        only the not-yet-installed tail of ``attachments`` is inserted, so
        attaching infrastructure hosts after the initial build (DNS roots,
        CONS CDRs, the NERD authority) costs O(new attachments x providers)
        instead of a full all-pairs recomputation.
        """
        plan = self.routing_plan()
        pending = self.attachments[self._routes_installed:]
        if pending:
            plan.install(pending)
        self._routes_installed = len(self.attachments)


def eid_prefix_for(site_index):
    return IPv4Prefix(f"100.{site_index >> 8}.{site_index & 255}.0/24")


def infra_prefix_for(site_index):
    return IPv4Prefix(f"198.{18 + (site_index >> 8)}.{site_index & 255}.0/24")


def provider_prefix_for(provider_id):
    return IPv4Prefix(f"{10 + provider_id}.0.0.0/8")


def rloc_for(provider_id, site_index, xtr_index):
    return IPv4Address(
        f"{10 + provider_id}.{1 + (site_index >> 8)}.{site_index & 255}.{xtr_index + 1}"
    )


def build_topology(sim, num_sites=2, num_providers=4, providers_per_site=2,
                   hosts_per_site=2, wan_delay_range=(0.010, 0.040),
                   access_delay_range=(0.001, 0.005), access_rate_bps=None,
                   eids_globally_routable=False,
                   provider_assignment=None, rng_stream="topology"):
    """Build the flat (full provider mesh) topology family.

    Thin compat wrapper: the kwargs map 1:1 onto a flat-family
    :class:`~repro.net.topogen.TopologySpec`, and construction happens in
    :func:`repro.net.topogen.build` — the single entry point every family
    shares.  New callers should build a spec directly.
    """
    from repro.net.topogen import TopologySpec, build
    spec = TopologySpec(
        family="flat", num_sites=num_sites, num_providers=num_providers,
        providers_per_site=providers_per_site, hosts_per_site=hosts_per_site,
        wan_delay_range=wan_delay_range, access_delay_range=access_delay_range,
        access_rate_bps=access_rate_bps,
        eids_globally_routable=eids_globally_routable,
        provider_assignment=provider_assignment, rng_stream=rng_stream)
    return build(sim, spec)


def build_fig1_topology(sim, **overrides):
    """The exact Fig. 1 scenario: two sites, two providers each.

    Site 0 ("AS_S") homes to providers A(10/8) and B(11/8); site 1 ("AS_D")
    homes to providers X(12/8) and Y(13/8).  Compat wrapper over the
    ``"fig1"`` :class:`~repro.net.topogen.TopologySpec` family.
    """
    from repro.net.topogen import TopologySpec, build
    params = dict(num_sites=2, num_providers=4, providers_per_site=2,
                  hosts_per_site=2, provider_assignment=((0, 1), (2, 3)))
    params.update(overrides)
    return build(sim, TopologySpec(family="fig1", **params))
