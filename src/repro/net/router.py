"""IP routers: FIB-driven forwarding with TTL handling and forward taps."""

from repro.net.errors import NoRouteError
from repro.net.node import Node


class Router(Node):
    """A node that forwards packets not addressed to itself.

    Forwarding decrements TTL (dropping at zero), runs any registered
    forward taps (a tap may consume the packet — the PCE's transparent
    interception uses this), then performs an LPM lookup and transmits.
    """

    def forward(self, packet, interface=None):
        ip = packet.ip
        if ip.ttl <= 1:
            self.dropped_packets += 1
            self.sim.trace.record(self.sim.now, self.name, "router.ttl-expired",
                                  dst=str(ip.dst), uid=packet.uid)
            return
        ip.ttl -= 1
        for tap in self.forward_taps:
            if tap(packet, self):
                return
        try:
            entry = self.fib.lookup(ip.dst)
        except NoRouteError:
            self.dropped_packets += 1
            self.sim.trace.record(self.sim.now, self.name, "router.no-route",
                                  dst=str(ip.dst), uid=packet.uid)
            return
        if entry.interface is None or entry.interface.link is None:
            self.dropped_packets += 1
            return
        self.tx_packets += 1
        entry.interface.link.send(packet)
