"""Point-to-point links with delay, bandwidth and finite FIFO queues.

A :class:`Link` is simplex; :func:`connect` wires two interfaces with a pair
of opposite simplex links (full duplex).  Transmission of a packet occupies
the link for ``size * 8 / rate`` seconds; packets arriving while the
transmitter is busy queue up to ``queue_capacity`` packets, beyond which they
are tail-dropped.  Propagation delay is added after serialisation.

Byte accounting
---------------

Every link meters the bytes that cross it: ``bytes_offered`` (presented to
:meth:`Link.send`), ``bytes_delivered`` (handed to the destination node) and
``bytes_dropped`` (tail drops plus down-link losses, whether at admission
or mid-flight).  The difference is :attr:`LinkStats.bytes_in_flight` — bytes
accepted but not yet delivered or dropped — so the conservation invariant

    ``bytes_offered == bytes_delivered + bytes_dropped + bytes_in_flight``

holds at *every* instant, and ``bytes_in_flight == 0`` once the simulation
drains.  Packets that carry a flow id (``meta["flow_id"]`` on the innermost
packet, so LISP encapsulation is transparent) are additionally accounted
per flow in :attr:`LinkStats.flows`, which is what the sweep's
byte-conservation columns and the TE experiments' data-plane load shares
read.  Transmitter busy time and offered bytes are also bucketed into
fixed-width utilization windows (:meth:`LinkStats.utilization_series`), the
per-link load signal behind E4's utilization report.

Fluid chunks
------------

Bulk flows may bypass per-packet events entirely: :meth:`Link.post_fluid`
advances ``rate x interval`` byte chunks through the same ledgers and
utilization windows synchronously (never in flight), sharing transmitter
capacity with packet traffic at window granularity.  The conservation
invariant above is unchanged — see ``docs/contracts.md`` for the
fluid-chunk contract.
"""

from collections import defaultdict, deque


def _empty_window():
    """Fresh utilization-window cell (module-level so worlds stay picklable)."""
    return [0.0, 0]


class FlowAccount:
    """Byte counters for one flow on one link."""

    __slots__ = ("offered", "delivered", "dropped")

    def __init__(self, offered=0, delivered=0, dropped=0):
        self.offered = offered
        self.delivered = delivered
        self.dropped = dropped

    @property
    def in_flight(self):
        """Bytes accepted but not yet delivered or dropped (>= 0 always)."""
        return self.offered - self.delivered - self.dropped

    def as_tuple(self):
        return (self.offered, self.delivered, self.dropped)

    def __repr__(self):
        return (f"FlowAccount(offered={self.offered}, "
                f"delivered={self.delivered}, dropped={self.dropped})")


class LinkStats:
    """Counters accumulated by a link over its lifetime.

    ``window_width`` buckets transmitter busy time and offered bytes into
    fixed simulated-time windows (index ``int(now / window_width)``), kept
    sparse in :attr:`windows` as ``index -> [busy_seconds, bytes]``.
    """

    __slots__ = ("tx_packets", "tx_bytes", "fluid_bytes", "drops", "max_queue",
                 "busy_time", "bytes_offered", "bytes_delivered",
                 "bytes_dropped", "flows", "window_width", "windows")

    def __init__(self, window_width=1.0):
        self.tx_packets = 0
        self.tx_bytes = 0
        #: Subset of ``tx_bytes`` that crossed the link as fluid chunks.
        self.fluid_bytes = 0
        self.drops = 0
        self.max_queue = 0
        self.busy_time = 0.0
        self.bytes_offered = 0
        self.bytes_delivered = 0
        self.bytes_dropped = 0
        #: flow id -> :class:`FlowAccount` (packets carrying a flow id only).
        self.flows = defaultdict(FlowAccount)
        self.window_width = window_width
        #: window index -> [busy_seconds, bytes_offered_to_transmitter].
        self.windows = defaultdict(_empty_window)

    @property
    def bytes_in_flight(self):
        """Bytes accepted by the link but not yet delivered or dropped.

        Derived, not maintained: a hole in the delivery/drop accounting
        shows up as a permanently positive residue, which is exactly what
        the byte-conservation invariant tests look for.
        """
        return self.bytes_offered - self.bytes_delivered - self.bytes_dropped

    def utilization(self, elapsed):
        """Fraction of *elapsed* time the transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    # ------------------------------------------------------------------ #
    # Byte accounting
    # ------------------------------------------------------------------ #

    def account_offered(self, size, flow_id):
        self.bytes_offered += size
        if flow_id is not None:
            self.flows[flow_id].offered += size

    def account_delivered(self, size, flow_id):
        self.bytes_delivered += size
        if flow_id is not None:
            self.flows[flow_id].delivered += size

    def account_dropped(self, size, flow_id):
        self.bytes_dropped += size
        if flow_id is not None:
            self.flows[flow_id].dropped += size

    def account_transmission(self, start, tx_time, size):
        """Bucket one transmission into the utilization windows.

        Busy seconds are split exactly across the window boundaries the
        transmission spans; the packet's bytes land in the window where
        serialisation started.
        """
        width = self.window_width
        windows = self.windows
        index = int(start / width)
        windows[index][1] += size
        if tx_time <= 0.0:
            return
        remaining = tx_time
        position = start
        while remaining > 0.0:
            boundary = (index + 1) * width
            slice_time = min(remaining, boundary - position)
            windows[index][0] += slice_time
            remaining -= slice_time
            position = boundary
            index += 1

    def book_fluid(self, start, duration, size, rate_bps):
        """Book *size* fluid bytes over ``[start, start + duration)``.

        The fluid tier's transmitter model: a chunk asks for capacity in
        every utilization window it overlaps, and each window grants at
        most its remaining free transmitter time (window width minus busy
        seconds already booked by packets and earlier fluid chunks).  The
        grant is clipped to the chunk's own dwell time in the window, so a
        chunk can never claim transmitter seconds outside its interval.
        Granted bytes accrue busy time, window volume, ``tx_bytes`` and
        ``fluid_bytes`` exactly as packet serialisation would; the
        shortfall is returned to the caller to record as dropped.

        Capacity sharing with packet traffic is window-granular: a window
        looks full to a chunk once its busy seconds reach the window
        width, regardless of *where* inside the window those seconds fall.

        Returns the number of bytes granted (``<= size``).  Infinite-rate
        links (``rate_bps`` None) grant everything and book volume only,
        matching their zero serialisation time on the packet path.
        """
        windows = self.windows
        width = self.window_width
        if rate_bps is None:
            windows[int(start / width)][1] += size
            self.tx_bytes += size
            self.fluid_bytes += size
            return size
        byte_time = 8.0 / rate_bps
        remaining = size
        position = start
        end = start + duration
        index = int(start / width)
        while remaining > 0 and position < end:
            boundary = (index + 1) * width
            span = min(end, boundary) - position
            window = windows[index]
            free = width - window[0]
            if span < free:
                free = span
            if free > 0.0:
                grant = int(free / byte_time + 1e-9)
                if grant > remaining:
                    grant = remaining
                if grant:
                    busy = grant * byte_time
                    window[0] += busy
                    window[1] += grant
                    self.busy_time += busy
                    self.tx_bytes += grant
                    self.fluid_bytes += grant
                    remaining -= grant
            position = boundary
            index += 1
        return size - remaining

    def utilization_series(self):
        """Sorted ``(window_start, busy_fraction, bytes)`` tuples.

        ``busy_fraction`` is per-window transmitter utilization (0.0 on
        infinite-rate links, whose serialisation time is zero); ``bytes``
        is offered-to-transmitter volume, a load signal that works with or
        without a configured rate.
        """
        width = self.window_width
        return [(index * width, min(1.0, busy / width), volume)
                for index, (busy, volume) in sorted(self.windows.items())]

    def peak_utilization(self):
        """The busiest window's utilization (0.0 when nothing transmitted)."""
        if not self.windows:
            return 0.0
        return min(1.0, max(busy for busy, _volume in self.windows.values())
                   / self.window_width)

    def conservation_violations(self, drained=False):
        """Per-flow (and total) byte-conservation breaches on this link.

        Offered bytes may exceed delivered+dropped only by what is still
        in flight; with ``drained=True`` (the simulation has no pending
        work) nothing may remain in flight at all.  Returns a list of
        ``(flow_id, offered, delivered, dropped)`` tuples, flow id ``None``
        for the link totals.
        """
        violations = []
        floor = 0
        residue = self.bytes_in_flight
        if residue < floor or (drained and residue != 0):
            violations.append((None, self.bytes_offered,
                               self.bytes_delivered, self.bytes_dropped))
        for flow_id, account in self.flows.items():
            residue = account.in_flight
            if residue < floor or (drained and residue != 0):
                violations.append((flow_id, account.offered,
                                   account.delivered, account.dropped))
        return violations

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    def snapshot_state(self):
        return (self.tx_packets, self.tx_bytes, self.fluid_bytes, self.drops,
                self.max_queue, self.busy_time, self.bytes_offered,
                self.bytes_delivered, self.bytes_dropped,
                {flow_id: account.as_tuple()
                 for flow_id, account in self.flows.items()},
                self.window_width,
                {index: (busy, volume)
                 for index, (busy, volume) in self.windows.items()})

    def restore_state(self, state):
        (self.tx_packets, self.tx_bytes, self.fluid_bytes, self.drops,
         self.max_queue, self.busy_time, self.bytes_offered,
         self.bytes_delivered, self.bytes_dropped, flows,
         self.window_width, windows) = state
        self.flows = defaultdict(FlowAccount,
                                 {flow_id: FlowAccount(*counts)
                                  for flow_id, counts in flows.items()})
        self.windows = defaultdict(_empty_window,
                                   {index: [busy, volume]
                                    for index, (busy, volume) in windows.items()})


def _flow_id_of(packet):
    """The flow id a packet carries, looking through encapsulation."""
    return packet.innermost().meta.get("flow_id")


class Link:
    """A simplex link from ``src_interface`` to ``dst_interface``.

    Parameters
    ----------
    sim:
        The simulator.
    delay:
        One-way propagation delay in seconds.
    rate_bps:
        Transmission rate in bits/second; ``None`` means infinite (zero
        serialisation delay), which most control-plane experiments use so
        that latency is dominated by propagation as in the paper's formulas.
    queue_capacity:
        Maximum packets waiting behind the one being serialised.
    util_window:
        Width (simulated seconds) of the utilization windows busy time and
        offered bytes are bucketed into.
    """

    def __init__(self, sim, src_interface, dst_interface, delay=0.001, rate_bps=None,
                 queue_capacity=1000, name=None, util_window=1.0):
        if delay < 0:
            raise ValueError(f"negative link delay {delay}")
        self.sim = sim
        self.src_interface = src_interface
        self.dst_interface = dst_interface
        self.delay = delay
        self.rate_bps = rate_bps
        self.queue_capacity = queue_capacity
        self.name = name or f"{src_interface}->{dst_interface}"
        self.stats = LinkStats(window_width=util_window)
        self._queue = deque()
        self._busy = False
        self.up = True

    def __str__(self):
        return self.name

    def send(self, packet):
        """Accept *packet* for transmission; returns False on tail drop."""
        size = packet.size_bytes
        flow_id = _flow_id_of(packet)
        self.stats.account_offered(size, flow_id)
        if not self.up:
            self.stats.drops += 1
            self.stats.account_dropped(size, flow_id)
            self.sim.trace.record(self.sim.now, self.name, "link.drop", reason="down",
                                  uid=packet.uid)
            return False
        if self._busy and len(self._queue) >= self.queue_capacity:
            self.stats.drops += 1
            self.stats.account_dropped(size, flow_id)
            self.sim.trace.record(self.sim.now, self.name, "link.drop", reason="queue-full",
                                  uid=packet.uid)
            return False
        if self._busy:
            self._queue.append(packet)
            self.stats.max_queue = max(self.stats.max_queue, len(self._queue))
            return True
        self._transmit(packet)
        return True

    def _serialisation_time(self, packet):
        if self.rate_bps is None:
            return 0.0
        return packet.size_bytes * 8.0 / self.rate_bps

    def _transmit(self, packet):
        self._busy = True
        size = packet.size_bytes
        tx_time = self._serialisation_time(packet)
        self.stats.busy_time += tx_time
        self.stats.tx_packets += 1
        self.stats.tx_bytes += size
        self.stats.account_transmission(self.sim.now, tx_time, size)
        self.sim.call_in(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet):
        # Propagation starts once the last bit is on the wire.
        self.sim.call_in(self.delay, self._deliver, packet)
        if self._queue:
            self._transmit(self._queue.popleft())
        else:
            self._busy = False

    def _deliver(self, packet):
        size = packet.size_bytes
        meta = packet.innermost().meta
        flow_id = meta.get("flow_id")
        if not self.up:
            self.stats.drops += 1
            self.stats.account_dropped(size, flow_id)
            return
        self.stats.account_delivered(size, flow_id)
        probe = meta.get("fluid_probe")
        if probe is not None:
            # A fluid flow's path-discovery packet: record the traversal so
            # the sender can post subsequent chunks to the same links.
            probe["links"].append(self)
        self.dst_interface.node.receive(packet, self.dst_interface)

    def post_fluid(self, size, flow_id, duration):
        """Advance *size* fluid bytes across this link over *duration* seconds.

        The fluid fast path: offered/delivered/dropped ledgers, the flow's
        :class:`FlowAccount`, busy time and utilization windows are all
        updated synchronously — a fluid chunk is never in flight.  Capacity
        is shared with concurrent packet traffic through the utilization
        windows (see :meth:`LinkStats.book_fluid`); whatever the covered
        windows cannot grant, and everything offered while the link is
        down, is recorded as dropped.  Returns the bytes delivered.
        """
        stats = self.stats
        stats.bytes_offered += size
        if not self.up:
            delivered = 0
        elif self.rate_bps is None:
            # Infinite rate: grant everything, book volume only (inlined
            # from book_fluid — this is the megaflow hot path).
            delivered = size
            stats.windows[int(self.sim.now / stats.window_width)][1] += size
            stats.tx_bytes += size
            stats.fluid_bytes += size
        else:
            delivered = stats.book_fluid(self.sim.now, duration, size,
                                         self.rate_bps)
        stats.bytes_delivered += delivered
        stats.bytes_dropped += size - delivered
        if flow_id is not None:
            account = stats.flows[flow_id]
            account.offered += size
            account.delivered += delivered
            account.dropped += size - delivered
        return delivered

    @property
    def queue_length(self):
        """Packets currently waiting (excluding the one in serialisation)."""
        return len(self._queue)

    #: Construction-time topology and configuration, immutable after wiring.
    _SNAPSHOT_EXEMPT = ("sim", "src_interface", "dst_interface", "delay",
                        "rate_bps", "queue_capacity", "name")

    def snapshot_state(self):
        return (self.up, self._busy, self.stats.snapshot_state())

    def restore_state(self, state):
        self.up, self._busy, stats_state = state
        self.stats.restore_state(stats_state)
        self._queue.clear()


def connect(sim, iface_a, iface_b, delay=0.001, rate_bps=None, queue_capacity=1000,
            util_window=1.0):
    """Create a full-duplex connection (two simplex links) between interfaces.

    Returns the (a->b, b->a) link pair and attaches each link to the sending
    interface.
    """
    forward = Link(sim, iface_a, iface_b, delay=delay, rate_bps=rate_bps,
                   queue_capacity=queue_capacity, util_window=util_window,
                   name=f"{iface_a.name}->{iface_b.name}")
    backward = Link(sim, iface_b, iface_a, delay=delay, rate_bps=rate_bps,
                    queue_capacity=queue_capacity, util_window=util_window,
                    name=f"{iface_b.name}->{iface_a.name}")
    iface_a.attach_link(forward)
    iface_b.attach_link(backward)
    return forward, backward
