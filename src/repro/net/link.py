"""Point-to-point links with delay, bandwidth and finite FIFO queues.

A :class:`Link` is simplex; :func:`connect` wires two interfaces with a pair
of opposite simplex links (full duplex).  Transmission of a packet occupies
the link for ``size * 8 / rate`` seconds; packets arriving while the
transmitter is busy queue up to ``queue_capacity`` packets, beyond which they
are tail-dropped.  Propagation delay is added after serialisation.
"""

from collections import deque


class LinkStats:
    """Counters accumulated by a link over its lifetime."""

    __slots__ = ("tx_packets", "tx_bytes", "drops", "max_queue", "busy_time")

    def __init__(self):
        self.tx_packets = 0
        self.tx_bytes = 0
        self.drops = 0
        self.max_queue = 0
        self.busy_time = 0.0

    def utilization(self, elapsed):
        """Fraction of *elapsed* time the transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Link:
    """A simplex link from ``src_interface`` to ``dst_interface``.

    Parameters
    ----------
    sim:
        The simulator.
    delay:
        One-way propagation delay in seconds.
    rate_bps:
        Transmission rate in bits/second; ``None`` means infinite (zero
        serialisation delay), which most control-plane experiments use so
        that latency is dominated by propagation as in the paper's formulas.
    queue_capacity:
        Maximum packets waiting behind the one being serialised.
    """

    def __init__(self, sim, src_interface, dst_interface, delay=0.001, rate_bps=None,
                 queue_capacity=1000, name=None):
        if delay < 0:
            raise ValueError(f"negative link delay {delay}")
        self.sim = sim
        self.src_interface = src_interface
        self.dst_interface = dst_interface
        self.delay = delay
        self.rate_bps = rate_bps
        self.queue_capacity = queue_capacity
        self.name = name or f"{src_interface}->{dst_interface}"
        self.stats = LinkStats()
        self._queue = deque()
        self._busy = False
        self.up = True

    def __str__(self):
        return self.name

    def send(self, packet):
        """Accept *packet* for transmission; returns False on tail drop."""
        if not self.up:
            self.stats.drops += 1
            self.sim.trace.record(self.sim.now, self.name, "link.drop", reason="down",
                                  uid=packet.uid)
            return False
        if self._busy and len(self._queue) >= self.queue_capacity:
            self.stats.drops += 1
            self.sim.trace.record(self.sim.now, self.name, "link.drop", reason="queue-full",
                                  uid=packet.uid)
            return False
        if self._busy:
            self._queue.append(packet)
            self.stats.max_queue = max(self.stats.max_queue, len(self._queue))
            return True
        self._transmit(packet)
        return True

    def _serialisation_time(self, packet):
        if self.rate_bps is None:
            return 0.0
        return packet.size_bytes * 8.0 / self.rate_bps

    def _transmit(self, packet):
        self._busy = True
        tx_time = self._serialisation_time(packet)
        self.stats.busy_time += tx_time
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size_bytes
        self.sim.call_in(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet):
        # Propagation starts once the last bit is on the wire.
        self.sim.call_in(self.delay, self._deliver, packet)
        if self._queue:
            self._transmit(self._queue.popleft())
        else:
            self._busy = False

    def _deliver(self, packet):
        if not self.up:
            self.stats.drops += 1
            return
        self.dst_interface.node.receive(packet, self.dst_interface)

    @property
    def queue_length(self):
        """Packets currently waiting (excluding the one in serialisation)."""
        return len(self._queue)

    def snapshot_state(self):
        stats = self.stats
        return (self.up, self._busy, stats.tx_packets, stats.tx_bytes,
                stats.drops, stats.max_queue, stats.busy_time)

    def restore_state(self, state):
        stats = self.stats
        (self.up, self._busy, stats.tx_packets, stats.tx_bytes,
         stats.drops, stats.max_queue, stats.busy_time) = state
        self._queue.clear()


def connect(sim, iface_a, iface_b, delay=0.001, rate_bps=None, queue_capacity=1000):
    """Create a full-duplex connection (two simplex links) between interfaces.

    Returns the (a->b, b->a) link pair and attaches each link to the sending
    interface.
    """
    forward = Link(sim, iface_a, iface_b, delay=delay, rate_bps=rate_bps,
                   queue_capacity=queue_capacity, name=f"{iface_a.name}->{iface_b.name}")
    backward = Link(sim, iface_b, iface_a, delay=delay, rate_bps=rate_bps,
                    queue_capacity=queue_capacity, name=f"{iface_b.name}->{iface_a.name}")
    iface_a.attach_link(forward)
    iface_b.attach_link(backward)
    return forward, backward
