"""Forwarding Information Base: a binary radix trie with longest-prefix match."""

from dataclasses import dataclass

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.errors import NoRouteError


@dataclass
class FibEntry:
    """A routing entry: where packets matching *prefix* should go.

    ``interface`` is the egress :class:`~repro.net.node.Interface`;
    ``next_hop`` is informational (point-to-point links need no ARP).
    ``metric`` breaks ties when replacing entries for the same prefix.
    """

    prefix: IPv4Prefix
    interface: object
    next_hop: object = None
    metric: float = 0.0

    def __str__(self):
        via = f" via {self.next_hop}" if self.next_hop is not None else ""
        return f"{self.prefix} -> {getattr(self.interface, 'name', self.interface)}{via}"


#: Distinguishes "no default supplied" from an explicit ``default=None``
#: (callers such as the map-cache want None back on a miss).
_NO_DEFAULT = object()


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self):
        self.children = [None, None]
        self.entry = None


class Fib:
    """Longest-prefix-match table.

    >>> fib = Fib()
    >>> fib.insert(FibEntry(IPv4Prefix('10.0.0.0/8'), 'if0'))
    >>> fib.insert(FibEntry(IPv4Prefix('10.1.0.0/16'), 'if1'))
    >>> fib.lookup('10.1.2.3').interface
    'if1'
    >>> fib.lookup('10.2.0.1').interface
    'if0'
    """

    def __init__(self):
        self._root = _TrieNode()
        self._size = 0
        #: Bumped on every mutation; lets checkpoint restores skip tables
        #: that were never touched (provider FIBs during a workload run).
        self.version = 0

    def __len__(self):
        return self._size

    @staticmethod
    def _bits(prefix):
        value = prefix.network.value
        for position in range(prefix.length):
            yield (value >> (31 - position)) & 1

    def insert(self, entry):
        """Insert *entry*, replacing any existing entry for the same prefix."""
        node = self._root
        for bit in self._bits(entry.prefix):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.entry is None:
            self._size += 1
        node.entry = entry
        self.version += 1

    def add(self, prefix, interface, next_hop=None, metric=0.0):
        """Shorthand for :meth:`insert`."""
        self.insert(FibEntry(IPv4Prefix(prefix), interface, next_hop, metric))

    def remove(self, prefix):
        """Remove the entry for exactly *prefix*; returns it (or None).

        Branches left empty by the removal are pruned on the way back up, so
        repeated install/expire churn (map-cache TTL aging) keeps the trie at
        O(live entries) nodes instead of accumulating dead chains forever.
        """
        prefix = IPv4Prefix(prefix)
        node = self._root
        path = []
        for bit in self._bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            path.append((node, bit))
            node = child
        entry, node.entry = node.entry, None
        if entry is not None:
            self._size -= 1
            self.version += 1
            for parent, bit in reversed(path):
                child = parent.children[bit]
                if child.entry is not None or child.children[0] is not None \
                        or child.children[1] is not None:
                    break
                parent.children[bit] = None
        return entry

    def lookup(self, address, default=_NO_DEFAULT):
        """Most-specific entry matching *address*; *default* if none.

        Raises :class:`NoRouteError` when no entry matches and no default is
        provided.  An explicit ``default=None`` returns None on a miss.
        """
        value = IPv4Address(address).value
        node = self._root
        best = node.entry
        for position in range(32):
            bit = (value >> (31 - position)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.entry is not None:
                best = node.entry
        if best is not None:
            return best
        if default is not _NO_DEFAULT:
            return default
        raise NoRouteError(f"no route to {IPv4Address(address)}")

    def lookup_exact(self, prefix):
        """Entry stored for exactly *prefix*, or None."""
        prefix = IPv4Prefix(prefix)
        node = self._root
        for bit in self._bits(prefix):
            if node.children[bit] is None:
                return None
            node = node.children[bit]
        return node.entry

    def entries(self):
        """All entries, in prefix order."""
        collected = []

        def walk(node):
            if node is None:
                return
            if node.entry is not None:
                collected.append(node.entry)
            walk(node.children[0])
            walk(node.children[1])

        walk(self._root)
        collected.sort(key=lambda entry: (entry.prefix.network.value, entry.prefix.length))
        return collected

    def node_count(self):
        """Number of allocated trie nodes (memory diagnostic; root included)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if node.children[0] is not None:
                stack.append(node.children[0])
            if node.children[1] is not None:
                stack.append(node.children[1])
        return count

    def clear(self):
        self._root = _TrieNode()
        self._size = 0
        self.version += 1

    def snapshot_state(self):
        """Checkpoint: the mutation version plus the full entry list."""
        return (self.version, tuple(self.entries()))

    def restore_state(self, state):
        """Rebuild from a checkpoint; no-op when the table never changed."""
        version, entries = state
        if self.version == version:
            return
        self._root = _TrieNode()
        self._size = 0
        for entry in entries:
            self.insert(entry)
        self.version = version
