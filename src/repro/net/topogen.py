"""Topology families: declarative specs and internet-shaped generators.

Every world used to be the paper's Fig. 1 flat mesh — a handful of provider
routers in a random-delay clique with stub sites multihomed onto them.  This
module generalizes construction behind one declarative entry point::

    spec = TopologySpec(family="tiered", num_sites=1000)
    topology = build(sim, spec)

Families
--------
- ``"flat"``  — the historical full provider mesh (all-pairs clique).
- ``"fig1"``  — the exact Fig. 1 scenario: two sites, providers A/B and X/Y.
- ``"tiered"`` — a tiered internet: a tier-0 full-mesh clique (the
  default-free core), tier-1 and tier-2 transit ASes multihomed to parents
  in the tier above, internet-exchange routers where transit providers
  peer, and stub sites multihomed to tier-2 (or, when homed at an IX, to
  providers that peer there).  Routing is hierarchical
  (:class:`~repro.net.routing.HierarchicalRoutingPlan`): no all-pairs
  Dijkstra over the provider set, so worldbuild stays sub-quadratic at
  thousands of sites.
- ``"caida"`` — the tiered generator with a CAIDA-like skew preset:
  provider degree follows a power law (low-numbered providers in each tier
  act as megaproviders attracting most customers and IX seats).

Address plan extension
----------------------
Transit providers keep the flat plan: provider ``p`` (any tier) owns
``(10+p).0.0.0/8``, capping the transit population at 245 ASes.  IX routers
are pure switching points addressed from ``9.0.0.0/8`` (one /32 each, never
routed — nothing addresses packets *to* an exchange).  Site EID and
infrastructure prefixes are unchanged (see :mod:`repro.net.topology`).
"""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.addresses import IPv4Prefix
from repro.net.fib import FibEntry
from repro.net.host import Host
from repro.net.link import connect
from repro.net.router import Router
from repro.net.routing import (DEFAULT_PREFIX, IxMember, IxPoint, TierLayout,
                               TransitUplink)
from repro.net.topology import (DNS_PCE_DELAY, HOST_HUB_DELAY, PCE_HUB_DELAY,
                                XTR_HUB_DELAY, Site, Topology, eid_prefix_for,
                                infra_prefix_for, provider_prefix_for,
                                rloc_for)

FAMILIES = ("fig1", "flat", "tiered", "caida")

#: Provider ``p`` owns ``(10+p).0.0.0/8``; ``10 + p`` must stay <= 255.
MAX_PROVIDERS = 245

#: IX routers take one /32 each out of this block (never globally routed).
IX_PREFIX = IPv4Prefix("9.0.0.0/8")


@dataclass(frozen=True)
class TopologySpec:
    """Everything that defines a topology, declaratively.

    Replaces ``build_topology``'s grown-past-its-limit kwarg signature.
    Specs are frozen, hashable and ``astuple``-friendly, so they can ride
    inside ``ScenarioConfig`` world keys.  Fields irrelevant to a family
    are ignored (e.g. ``tier0`` for ``"flat"``, ``num_providers`` for
    ``"tiered"``/``"caida"``, where tier sizes rule).
    """

    family: str = "flat"
    num_sites: int = 2
    #: Mesh size for ``flat``/``fig1``; tiered families derive their own.
    num_providers: int = 4
    providers_per_site: int = 2
    hosts_per_site: int = 2
    #: Tier sizes for ``tiered``/``caida``; 0 derives from ``num_sites``.
    tier0: int = 0
    tier1: int = 0
    tier2: int = 0
    #: Internet exchanges; 0 derives from the transit population.
    num_ixps: int = 0
    #: Providers peering at each IX (clipped to the transit population).
    ix_degree: int = 4
    #: Fraction of stub sites homed *at an IX*: all their providers are
    #: drawn from a single exchange's membership.
    ix_site_fraction: float = 0.25
    #: Power-law exponent skewing provider popularity (customer and IX-seat
    #: attraction).  ``None`` picks the family default: 0.0 for ``tiered``
    #: (uniform), 1.2 for ``caida``.
    stub_attach_bias: Optional[float] = None
    #: Link delay ranges in seconds: core clique, transit uplinks,
    #: provider<->IX legs, site access links.
    wan_delay_range: tuple = (0.010, 0.040)
    transit_delay_range: tuple = (0.004, 0.015)
    ix_delay_range: tuple = (0.001, 0.004)
    access_delay_range: tuple = (0.001, 0.005)
    access_rate_bps: Optional[float] = None
    eids_globally_routable: bool = False
    #: ``flat``/``fig1`` only: per-site provider-id tuples overriding the
    #: default rotation.
    provider_assignment: Optional[tuple] = None
    rng_stream: str = "topology"

    def __post_init__(self):
        # Normalize sequence fields so specs coming from old list-passing
        # call sites stay hashable (world keys, memo dicts).
        for name in ("wan_delay_range", "transit_delay_range",
                     "ix_delay_range", "access_delay_range"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if self.provider_assignment is not None:
            object.__setattr__(self, "provider_assignment", tuple(
                tuple(site) for site in self.provider_assignment))
        if self.family not in FAMILIES:
            raise ValueError(f"unknown topology family {self.family!r}")

    def effective_bias(self):
        if self.stub_attach_bias is not None:
            return self.stub_attach_bias
        return 1.2 if self.family == "caida" else 0.0


def build(sim, spec):
    """Build the world described by *spec* (the single topology entry point)."""
    if spec.family == "fig1":
        fig1 = replace(spec, num_sites=2,
                       provider_assignment=(spec.provider_assignment
                                            or ((0, 1), (2, 3))))
        topology = _build_flat(sim, fig1)
        topology.site_s = topology.sites[0]
        topology.site_d = topology.sites[1]
        return topology
    if spec.family == "flat":
        return _build_flat(sim, spec)
    return _build_tiered(sim, spec)


# --------------------------------------------------------------------------- #
# Flat family (the historical full mesh)
# --------------------------------------------------------------------------- #

def _build_flat(sim, spec):
    if spec.providers_per_site > spec.num_providers:
        raise ValueError("providers_per_site exceeds num_providers")
    if spec.num_providers > MAX_PROVIDERS:
        raise ValueError(f"num_providers exceeds {MAX_PROVIDERS}")
    rng = sim.rng.stream(spec.rng_stream)

    providers = []
    provider_prefixes = []
    for p in range(spec.num_providers):
        router = Router(sim, f"prov{p}")
        router.add_address(provider_prefix_for(p).address_at(1))
        providers.append(router)
        provider_prefixes.append(provider_prefix_for(p))
    for a in range(spec.num_providers):
        for b in range(a + 1, spec.num_providers):
            delay = rng.uniform(*spec.wan_delay_range)
            iface_a = providers[a].add_interface(f"to-prov{b}")
            iface_b = providers[b].add_interface(f"to-prov{a}")
            connect(sim, iface_a, iface_b, delay=delay)

    topology = Topology(sim=sim, providers=providers,
                        provider_prefixes=provider_prefixes, sites=[],
                        eids_globally_routable=spec.eids_globally_routable)
    for p, router in enumerate(providers):
        topology.attachments.append((provider_prefixes[p], router, None))

    for s in range(spec.num_sites):
        assigned = (spec.provider_assignment[s]
                    if spec.provider_assignment is not None else None)
        site = _build_site(sim, topology, s, spec.providers_per_site,
                           spec.hosts_per_site, spec.access_delay_range, rng,
                           assigned_providers=assigned,
                           access_rate_bps=spec.access_rate_bps)
        topology.sites.append(site)

    topology.install_global_routes()
    return topology


# --------------------------------------------------------------------------- #
# Tiered families
# --------------------------------------------------------------------------- #

def _tier_sizes(spec):
    """Tier populations: explicit spec values, else derived from num_sites.

    The derivation keeps the transit population within the /8 address-plan
    cap while growing each tier sublinearly in the site count (CAIDA-style:
    a small dense core, a modest tier-1, a broad tier-2 edge).
    """
    n = max(1, spec.num_sites)
    t0 = spec.tier0 or min(8, max(2, round(n ** 0.25)))
    t1 = spec.tier1 or min(24, max(3, round(n ** 0.5 / 2) + 1))
    t2 = spec.tier2 or min(160, max(4, spec.providers_per_site, round(n / 25)))
    if t0 + t1 + t2 > MAX_PROVIDERS:
        raise ValueError(
            f"tier sizes {t0}+{t1}+{t2} exceed the {MAX_PROVIDERS}-provider "
            "address plan (provider /8s start at 10.0.0.0/8)")
    return t0, t1, t2


def _rank_weights(count, bias):
    """Popularity weights by rank (rank 0 = most attractive provider)."""
    if bias <= 0.0:
        return [1.0] * count
    return [1.0 / (rank + 1) ** bias for rank in range(count)]


def _weighted_sample(rng, population, weights, k):
    """Weighted sample without replacement, deterministic under *rng*."""
    pool = list(population)
    pool_weights = list(weights)
    chosen = []
    for _ in range(min(k, len(pool))):
        total = sum(pool_weights)
        pick = rng.random() * total
        cumulative = 0.0
        index = len(pool) - 1
        for i, weight in enumerate(pool_weights):
            cumulative += weight
            if pick < cumulative:
                index = i
                break
        chosen.append(pool.pop(index))
        pool_weights.pop(index)
    return chosen


def _build_tiered(sim, spec):
    t0, t1, t2 = _tier_sizes(spec)
    if spec.providers_per_site > t1 + t2:
        raise ValueError("providers_per_site exceeds the transit population")
    rng = sim.rng.stream(spec.rng_stream)
    bias = spec.effective_bias()
    num_providers = t0 + t1 + t2
    tiers = (tuple(range(t0)), tuple(range(t0, t0 + t1)),
             tuple(range(t0 + t1, num_providers)))

    providers = []
    provider_prefixes = []
    for p in range(num_providers):
        router = Router(sim, f"prov{p}")
        router.add_address(provider_prefix_for(p).address_at(1))
        providers.append(router)
        provider_prefixes.append(provider_prefix_for(p))

    # Tier-0 clique: the default-free core, long-haul delays.
    for a in tiers[0]:
        for b in tiers[0]:
            if b <= a:
                continue
            delay = rng.uniform(*spec.wan_delay_range)
            iface_a = providers[a].add_interface(f"to-prov{b}")
            iface_b = providers[b].add_interface(f"to-prov{a}")
            connect(sim, iface_a, iface_b, delay=delay)

    # Transit uplinks: every T1/T2 AS multihomes to 1-2 parents above it,
    # megaprovider-weighted under the caida preset.
    uplinks = {}
    for tier in (1, 2):
        parent_ids = tiers[tier - 1]
        parent_weights = _rank_weights(len(parent_ids), bias)
        for pid in tiers[tier]:
            fanout = min(len(parent_ids), 1 + (1 if rng.random() < 0.5 else 0))
            parents = _weighted_sample(rng, parent_ids, parent_weights, fanout)
            records = []
            for parent_id in parents:
                delay = rng.uniform(*spec.transit_delay_range)
                up_iface = providers[pid].add_interface(f"to-prov{parent_id}")
                down_iface = providers[parent_id].add_interface(f"to-prov{pid}")
                connect(sim, down_iface, up_iface, delay=delay)
                records.append(TransitUplink(parent_id=parent_id, delay=delay,
                                             up_iface=up_iface,
                                             down_iface=down_iface))
            uplinks[pid] = tuple(records)

    # Internet exchanges: neutral routers where transit providers peer.
    transit_ids = list(tiers[1]) + list(tiers[2])
    transit_weights = _rank_weights(len(transit_ids), bias)
    num_ixps = spec.num_ixps or max(1, len(transit_ids) // 8)
    ix_degree = max(2, min(spec.ix_degree, len(transit_ids)))
    ix_routers = []
    ixps = []
    for i in range(num_ixps):
        ix_router = Router(sim, f"ix{i}")
        ix_router.add_address(IX_PREFIX.address_at(i * 256 + 1))
        member_ids = _weighted_sample(rng, transit_ids, transit_weights,
                                      ix_degree)
        members = []
        for pid in member_ids:
            delay = rng.uniform(*spec.ix_delay_range)
            provider_iface = providers[pid].add_interface(f"to-ix{i}")
            ix_iface = ix_router.add_interface(f"to-prov{pid}")
            connect(sim, provider_iface, ix_iface, delay=delay)
            members.append(IxMember(provider_id=pid,
                                    provider_iface=provider_iface,
                                    ix_iface=ix_iface, delay=delay))
        ix_routers.append(ix_router)
        ixps.append(IxPoint(index=i, router=ix_router, members=tuple(members)))

    layout = TierLayout(tiers=tiers, uplinks=uplinks, ixps=tuple(ixps),
                        aggregates={p: provider_prefixes[p]
                                    for p in range(num_providers)})
    topology = Topology(sim=sim, providers=providers,
                        provider_prefixes=provider_prefixes, sites=[],
                        eids_globally_routable=spec.eids_globally_routable,
                        tier_layout=layout, ix_routers=ix_routers)
    for p, router in enumerate(providers):
        topology.attachments.append((provider_prefixes[p], router, None))

    # Stub sites home to the tier-2 edge (tier-1 joins the pool only when
    # the edge is too small), or to a single IX's membership when IX-homed.
    pool = list(tiers[2]) if t2 >= spec.providers_per_site else transit_ids
    pool_weights = _rank_weights(len(pool), bias)
    weight_of = dict(zip(pool, pool_weights))
    eligible_ixps = [ix for ix in ixps
                     if len([m for m in ix.members if m.provider_id in weight_of])
                     >= spec.providers_per_site]
    for s in range(spec.num_sites):
        ix_homed = (eligible_ixps and rng.random() < spec.ix_site_fraction)
        if ix_homed:
            ix = eligible_ixps[rng.randrange(len(eligible_ixps))]
            candidates = [m.provider_id for m in ix.members
                          if m.provider_id in weight_of]
        else:
            candidates = pool
        chosen = _weighted_sample(rng, candidates,
                                  [weight_of[pid] for pid in candidates],
                                  spec.providers_per_site)
        site = _build_site(sim, topology, s, spec.providers_per_site,
                           spec.hosts_per_site, spec.access_delay_range, rng,
                           assigned_providers=chosen,
                           access_rate_bps=spec.access_rate_bps)
        topology.sites.append(site)

    topology.install_global_routes()
    return topology


# --------------------------------------------------------------------------- #
# Site construction (shared by every family)
# --------------------------------------------------------------------------- #

def _build_site(sim, topology, s, providers_per_site, hosts_per_site,
                access_delay_range, rng, assigned_providers=None,
                access_rate_bps=None):
    name = f"site{s}"
    eid_prefix = eid_prefix_for(s)
    infra_prefix = infra_prefix_for(s)
    num_providers = len(topology.providers)

    hub = Router(sim, f"{name}-hub")
    hub.add_address(eid_prefix.address_at(1))
    dns_node = Host(sim, f"{name}-dns", address=infra_prefix.address_at(10))
    pce_node = Router(sim, f"{name}-pce")
    pce_node.add_address(infra_prefix.address_at(20))

    site = Site(index=s, name=name, eid_prefix=eid_prefix, infra_prefix=infra_prefix,
                hub=hub, dns_node=dns_node, pce_node=pce_node)

    if assigned_providers is not None:
        chosen = list(assigned_providers)
    else:
        # Deterministic but varied provider assignment: rotate through the
        # mesh.  When gcd(stride, num_providers) > 1 the rotation only visits
        # a subgroup, so complete the candidate order with the remaining
        # providers instead of cycling forever.
        first = s % num_providers
        stride = 1 + (s // num_providers) % max(1, num_providers - 1)
        order = []
        p = first
        for _ in range(num_providers):
            if p not in order:
                order.append(p)
            p = (p + stride) % num_providers
        for p in range(num_providers):
            if p not in order:
                order.append(p)
        chosen = order[:providers_per_site]
    site.provider_ids = chosen

    # Hosts on the hub.
    for i in range(hosts_per_site):
        host = Host(sim, f"{name}-host{i}", address=eid_prefix.address_at(10 + i))
        host_iface = host.add_interface("up")
        hub_iface = hub.add_interface(f"to-host{i}")
        connect(sim, hub_iface, host_iface, delay=HOST_HUB_DELAY)
        host.fib.insert(FibEntry(DEFAULT_PREFIX, host_iface))
        hub.fib.insert(FibEntry(IPv4Prefix(int(host.address), 32), hub_iface))
        site.hosts.append(host)

    # DNS behind PCE: dns -- pce -- hub.
    dns_iface = dns_node.add_interface("up")
    pce_dns_iface = pce_node.add_interface("to-dns")
    connect(sim, pce_dns_iface, dns_iface, delay=DNS_PCE_DELAY)
    dns_node.fib.insert(FibEntry(DEFAULT_PREFIX, dns_iface))

    pce_hub_iface = pce_node.add_interface("to-hub")
    hub_pce_iface = hub.add_interface("to-pce")
    connect(sim, hub_pce_iface, pce_hub_iface, delay=PCE_HUB_DELAY)
    pce_node.fib.insert(FibEntry(IPv4Prefix(int(site.dns_address), 32), pce_dns_iface))
    pce_node.fib.insert(FibEntry(DEFAULT_PREFIX, pce_hub_iface))
    hub.fib.insert(FibEntry(IPv4Prefix(int(site.dns_address), 32), hub_pce_iface))
    hub.fib.insert(FibEntry(IPv4Prefix(int(site.pce_address), 32), hub_pce_iface))

    # xTRs: one per provider.
    for b, p in enumerate(site.provider_ids):
        xtr = Router(sim, f"{name}-xtr{b}")
        rloc = rloc_for(p, s, b)
        xtr.add_address(rloc)
        xtr.add_address(site.xtr_control_address(b))
        xtr.register_service("rloc", rloc)
        xtr.register_service("site", site)
        xtr.register_service("provider_id", p)

        xtr_hub_iface = xtr.add_interface("to-hub")
        hub_xtr_iface = hub.add_interface(f"to-xtr{b}")
        connect(sim, hub_xtr_iface, xtr_hub_iface, delay=XTR_HUB_DELAY)

        provider = topology.providers[p]
        access_delay = rng.uniform(*access_delay_range)
        xtr_up_iface = xtr.add_interface("up", address=rloc)
        provider_iface = provider.add_interface(f"to-{name}-xtr{b}")
        downlink, uplink = connect(sim, provider_iface, xtr_up_iface, delay=access_delay,
                                   rate_bps=access_rate_bps)
        site.access_links.append({"uplink": uplink, "downlink": downlink})
        site.hub_links.append({"hub_iface": hub_xtr_iface})

        # xTR routing: site prefixes inward, everything else to the provider.
        xtr.fib.insert(FibEntry(site.eid_prefix, xtr_hub_iface))
        xtr.fib.insert(FibEntry(site.infra_prefix, xtr_hub_iface))
        xtr.fib.insert(FibEntry(DEFAULT_PREFIX, xtr_up_iface))

        # Hub can reach each xTR's control address.
        hub.fib.insert(FibEntry(IPv4Prefix(int(site.xtr_control_address(b)), 32),
                                hub_xtr_iface))
        # Provider can deliver to the xTR's RLOC.
        topology.attachments.append((IPv4Prefix(int(rloc), 32), provider, provider_iface))

        site.xtrs.append(xtr)
        site.access_delays.append(access_delay)

        if b == 0:
            # Home attachment: the site's infrastructure prefix (and its EID
            # prefix, in plain-IP mode) is reachable via xtr0.
            topology.attachments.append((site.infra_prefix, provider, provider_iface))
            if topology.eids_globally_routable:
                topology.attachments.append((site.eid_prefix, provider, provider_iface))

    # Hub default: out via xtr0 (TE may override per destination later).
    hub.fib.insert(FibEntry(DEFAULT_PREFIX, hub.interfaces["to-xtr0"]))
    return site
