"""Route computation for the provider core.

The global routing domain consists of the provider routers, connected in a
random-delay full mesh (built in :mod:`repro.net.topology`).  Site prefixes
(infrastructure and, optionally, EID space) are *attached* to a home
provider; this module computes shortest paths over the mesh and installs,
in every provider router's FIB:

- each provider's own /8 locator block,
- every attachment's prefix, pointing toward the home provider and, at the
  home provider itself, out of the access interface.

The heavy lifting lives in :class:`RoutingPlan`: per-provider shortest-path
tables computed **once** per mesh, memoized against a topology fingerprint,
and reused both for incremental attachment installs (insert routes for new
prefixes without re-running Dijkstra) and for O(1) pairwise delay queries
(:meth:`RoutingPlan.delay`), which the IRC engine hits per site pair during
every topology build.

Intra-site routing is installed explicitly by the topology builder — sites
are stubs and must never transit traffic, which a blind shortest-path
computation over the full node set would allow.
"""

import heapq

from repro.net.fib import FibEntry


def shortest_path_next_hops(adjacency, source):
    """Dijkstra over ``adjacency[u] -> [(v, delay, iface), ...]``.

    Returns ``{dest: (first_hop_iface, total_delay)}`` for every reachable
    destination from *source*.  Pure-Python implementation so the routing
    layer has no third-party dependency.
    """
    distances = {source: 0.0}
    first_hop = {}
    heap = [(0.0, 0, source, None)]
    counter = 0
    visited = set()
    while heap:
        dist, _tie, node, via = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if via is not None:
            first_hop[node] = (via, dist)
        for neighbour, delay, iface in adjacency.get(node, ()):
            candidate = dist + delay
            if neighbour not in distances or candidate < distances[neighbour]:
                distances[neighbour] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbour,
                                      via if via is not None else iface))
    return first_hop


def build_adjacency(routers):
    """Adjacency restricted to links whose both ends are in *routers*."""
    member = set(routers)
    adjacency = {router: [] for router in routers}
    for router in routers:
        for iface in router.interfaces.values():
            link = iface.link
            if link is None:
                continue
            peer = link.dst_interface.node
            if peer in member:
                adjacency[router].append((peer, link.delay, iface))
    return adjacency


def mesh_fingerprint(routers):
    """A hashable digest of the mesh topology among *routers*.

    Two fingerprints are equal iff the routers, their mesh links and the
    link delays are identical — the exact conditions under which a
    :class:`RoutingPlan`'s shortest-path tables stay valid.  Access links
    toward sites and infrastructure hosts do not participate (their peers
    are not mesh members), so attaching new sites never invalidates a plan.
    """
    adjacency = build_adjacency(routers)
    return tuple(
        (router.name,
         tuple(sorted((peer.name, delay, iface.name)
                      for peer, delay, iface in edges)))
        for router, edges in adjacency.items())


class RoutingPlan:
    """Shortest-path tables over the provider mesh, computed once.

    The plan runs one Dijkstra per provider at construction and answers
    every later question from the tables:

    - :meth:`install` inserts FIB routes for a batch of attachments without
      recomputing anything, which is what makes attachment installs
      incremental (the old ``install_mesh_routes`` re-ran the all-pairs
      computation for every batch);
    - :meth:`delay` / :meth:`next_hop` are O(1) dict lookups.

    ``fingerprint`` captures the mesh the tables were computed over;
    holders (see :meth:`~repro.net.topology.Topology.routing_plan`) compare
    it against :func:`mesh_fingerprint` to decide whether a cached plan is
    still valid.
    """

    def __init__(self, providers, fingerprint=None):
        self.providers = list(providers)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else mesh_fingerprint(self.providers))
        adjacency = build_adjacency(self.providers)
        self._next_hops = {router: shortest_path_next_hops(adjacency, router)
                           for router in self.providers}

    def next_hop(self, router, owner):
        """``(first_hop_iface, total_delay)`` from *router* toward *owner*.

        None when *owner* is unreachable (or is *router* itself).
        """
        return self._next_hops[router].get(owner)

    def delay(self, source, destination):
        """Shortest-path delay between two mesh routers (None if unreachable)."""
        if source is destination:
            return 0.0
        entry = self._next_hops[source].get(destination)
        return entry[1] if entry is not None else None

    def install(self, owned_prefixes):
        """Install FIB routes for *owned_prefixes* using the cached tables.

        ``owned_prefixes`` is ``[(prefix, owner_router, local_iface_or_None)]``
        with the same semantics as :func:`install_mesh_routes`.  Re-installing
        a prefix replaces the previous entry, so calls are idempotent.
        """
        for prefix, owner, local_iface in owned_prefixes:
            hops_to_owner = self._next_hops
            for router in self.providers:
                if router is owner:
                    if local_iface is not None:
                        router.fib.insert(FibEntry(prefix, local_iface))
                    continue
                hop = hops_to_owner[router].get(owner)
                if hop is None:
                    continue
                iface, distance = hop
                router.fib.insert(FibEntry(prefix, iface, next_hop=owner,
                                           metric=distance))


def install_mesh_routes(providers, owned_prefixes):
    """Install routes among provider routers (from-scratch computation).

    Kept as the reference implementation: builds a fresh
    :class:`RoutingPlan` and installs every attachment through it.  Callers
    on the hot path should hold a plan and use :meth:`RoutingPlan.install`
    incrementally instead.
    """
    RoutingPlan(providers).install(owned_prefixes)


def path_delay(adjacency, source, destination):
    """Total shortest-path delay between two routers (None if unreachable).

    Note: runs a full Dijkstra from *source* per call.  Repeated pairwise
    queries should go through :meth:`RoutingPlan.delay`, which answers from
    the precomputed tables (see ``Topology.provider_mesh_delay``).
    """
    if source is destination:
        return 0.0
    hops = shortest_path_next_hops(adjacency, source)
    entry = hops.get(destination)
    return entry[1] if entry is not None else None
