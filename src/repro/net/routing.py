"""Route computation for the provider core.

The global routing domain consists of the provider routers, connected in a
random-delay full mesh (built in :mod:`repro.net.topology`).  Site prefixes
(infrastructure and, optionally, EID space) are *attached* to a home
provider; this module computes shortest paths over the mesh and installs,
in every provider router's FIB:

- each provider's own /8 locator block,
- every attachment's prefix, pointing toward the home provider and, at the
  home provider itself, out of the access interface.

Intra-site routing is installed explicitly by the topology builder — sites
are stubs and must never transit traffic, which a blind shortest-path
computation over the full node set would allow.
"""

import heapq

from repro.net.fib import FibEntry


def shortest_path_next_hops(adjacency, source):
    """Dijkstra over ``adjacency[u] -> [(v, delay, iface), ...]``.

    Returns ``{dest: (first_hop_iface, total_delay)}`` for every reachable
    destination from *source*.  Pure-Python implementation so the routing
    layer has no third-party dependency.
    """
    distances = {source: 0.0}
    first_hop = {}
    heap = [(0.0, 0, source, None)]
    counter = 0
    visited = set()
    while heap:
        dist, _tie, node, via = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if via is not None:
            first_hop[node] = (via, dist)
        for neighbour, delay, iface in adjacency.get(node, ()):
            candidate = dist + delay
            if neighbour not in distances or candidate < distances[neighbour]:
                distances[neighbour] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbour,
                                      via if via is not None else iface))
    return first_hop


def build_adjacency(routers):
    """Adjacency restricted to links whose both ends are in *routers*."""
    member = set(routers)
    adjacency = {router: [] for router in routers}
    for router in routers:
        for iface in router.interfaces.values():
            link = iface.link
            if link is None:
                continue
            peer = link.dst_interface.node
            if peer in member:
                adjacency[router].append((peer, link.delay, iface))
    return adjacency


def install_mesh_routes(providers, owned_prefixes):
    """Install routes among provider routers.

    Parameters
    ----------
    providers:
        The provider edge routers (the global routing domain).
    owned_prefixes:
        ``[(prefix, owner_router, local_iface_or_None)]``.  At the owner,
        the route points out of *local_iface* (toward the attachment); at
        every other provider it points toward the owner across the mesh.
    """
    adjacency = build_adjacency(providers)
    next_hops = {router: shortest_path_next_hops(adjacency, router) for router in providers}
    for prefix, owner, local_iface in owned_prefixes:
        for router in providers:
            if router is owner:
                if local_iface is not None:
                    router.fib.insert(FibEntry(prefix, local_iface))
                continue
            hop = next_hops[router].get(owner)
            if hop is None:
                continue
            iface, distance = hop
            router.fib.insert(FibEntry(prefix, iface, next_hop=owner, metric=distance))


def path_delay(adjacency, source, destination):
    """Total shortest-path delay between two routers (None if unreachable)."""
    if source is destination:
        return 0.0
    hops = shortest_path_next_hops(adjacency, source)
    entry = hops.get(destination)
    return entry[1] if entry is not None else None
