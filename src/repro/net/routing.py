"""Route computation for the provider core.

The global routing domain consists of the provider routers, connected in a
random-delay full mesh (built in :mod:`repro.net.topology`).  Site prefixes
(infrastructure and, optionally, EID space) are *attached* to a home
provider; this module computes shortest paths over the mesh and installs,
in every provider router's FIB:

- each provider's own /8 locator block,
- every attachment's prefix, pointing toward the home provider and, at the
  home provider itself, out of the access interface.

The heavy lifting lives in :class:`RoutingPlan`: per-provider shortest-path
tables computed **once** per mesh, memoized against a topology fingerprint,
and reused both for incremental attachment installs (insert routes for new
prefixes without re-running Dijkstra) and for O(1) pairwise delay queries
(:meth:`RoutingPlan.delay`), which the IRC engine hits per site pair during
every topology build.

Tiered internets (see :mod:`repro.net.topogen`) do not run all-pairs
Dijkstra at all: :class:`HierarchicalRoutingPlan` keeps shortest-path
tables only for the tier-0 clique (the default-free core), gives every
lower-tier provider a default route up its cheapest transit chain, and
aggregates at tier boundaries — a stub's locator /32s collapse into its
transit provider's /8 aggregate above the boundary, so per-attachment
install cost is O(chain depth + |core|) instead of O(|providers|).  Both
plan classes share the fingerprint / ``install`` / ``delay`` contracts, so
``Topology.install_global_routes`` and ``provider_mesh_delay`` work
unchanged on either.

Intra-site routing is installed explicitly by the topology builder — sites
are stubs and must never transit traffic, which a blind shortest-path
computation over the full node set would allow.
"""

import heapq
from dataclasses import dataclass, field

from repro.net.addresses import IPv4Prefix
from repro.net.fib import FibEntry

#: The match-everything prefix (default routes point up the transit chain).
DEFAULT_PREFIX = IPv4Prefix("0.0.0.0/0")


def shortest_path_next_hops(adjacency, source):
    """Dijkstra over ``adjacency[u] -> [(v, delay, iface), ...]``.

    Returns ``{dest: (first_hop_iface, total_delay)}`` for every reachable
    destination from *source*.  Pure-Python implementation so the routing
    layer has no third-party dependency.
    """
    distances = {source: 0.0}
    first_hop = {}
    heap = [(0.0, 0, source, None)]
    counter = 0
    visited = set()
    while heap:
        dist, _tie, node, via = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if via is not None:
            first_hop[node] = (via, dist)
        for neighbour, delay, iface in adjacency.get(node, ()):
            candidate = dist + delay
            if neighbour not in distances or candidate < distances[neighbour]:
                distances[neighbour] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbour,
                                      via if via is not None else iface))
    return first_hop


def build_adjacency(routers):
    """Adjacency restricted to links whose both ends are in *routers*."""
    member = set(routers)
    adjacency = {router: [] for router in routers}
    for router in routers:
        for iface in router.interfaces.values():
            link = iface.link
            if link is None:
                continue
            peer = link.dst_interface.node
            if peer in member:
                adjacency[router].append((peer, link.delay, iface))
    return adjacency


def mesh_fingerprint(routers):
    """A hashable digest of the mesh topology among *routers*.

    Two fingerprints are equal iff the routers, their mesh links and the
    link delays are identical — the exact conditions under which a
    :class:`RoutingPlan`'s shortest-path tables stay valid.  Access links
    toward sites and infrastructure hosts do not participate (their peers
    are not mesh members), so attaching new sites never invalidates a plan.
    """
    adjacency = build_adjacency(routers)
    return tuple(
        (router.name,
         tuple(sorted((peer.name, delay, iface.name)
                      for peer, delay, iface in edges)))
        for router, edges in adjacency.items())


class RoutingPlan:
    """Shortest-path tables over the provider mesh, computed once.

    The plan runs one Dijkstra per provider at construction and answers
    every later question from the tables:

    - :meth:`install` inserts FIB routes for a batch of attachments without
      recomputing anything, which is what makes attachment installs
      incremental (the old ``install_mesh_routes`` re-ran the all-pairs
      computation for every batch);
    - :meth:`delay` / :meth:`next_hop` are O(1) dict lookups.

    ``fingerprint`` captures the mesh the tables were computed over;
    holders (see :meth:`~repro.net.topology.Topology.routing_plan`) compare
    it against :func:`mesh_fingerprint` to decide whether a cached plan is
    still valid.
    """

    def __init__(self, providers, fingerprint=None):
        self.providers = list(providers)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else mesh_fingerprint(self.providers))
        adjacency = build_adjacency(self.providers)
        self._next_hops = {router: shortest_path_next_hops(adjacency, router)
                           for router in self.providers}

    def next_hop(self, router, owner):
        """``(first_hop_iface, total_delay)`` from *router* toward *owner*.

        None when *owner* is unreachable (or is *router* itself).
        """
        return self._next_hops[router].get(owner)

    def delay(self, source, destination):
        """Shortest-path delay between two mesh routers (None if unreachable)."""
        if source is destination:
            return 0.0
        entry = self._next_hops[source].get(destination)
        return entry[1] if entry is not None else None

    def install(self, owned_prefixes):
        """Install FIB routes for *owned_prefixes* using the cached tables.

        ``owned_prefixes`` is ``[(prefix, owner_router, local_iface_or_None)]``
        with the same semantics as :func:`install_mesh_routes`.  Re-installing
        a prefix replaces the previous entry, so calls are idempotent.
        """
        for prefix, owner, local_iface in owned_prefixes:
            hops_to_owner = self._next_hops
            for router in self.providers:
                if router is owner:
                    if local_iface is not None:
                        router.fib.insert(FibEntry(prefix, local_iface))
                    continue
                hop = hops_to_owner[router].get(owner)
                if hop is None:
                    continue
                iface, distance = hop
                router.fib.insert(FibEntry(prefix, iface, next_hop=owner,
                                           metric=distance))


@dataclass(frozen=True)
class TransitUplink:
    """One customer->provider link in a tiered internet.

    ``up_iface`` sits on the customer router, ``down_iface`` on the parent;
    both ends of the same physical link (see ``topogen``).
    """

    parent_id: int
    delay: float
    up_iface: object
    down_iface: object


@dataclass(frozen=True)
class IxMember:
    """One provider's presence at an internet exchange."""

    provider_id: int
    provider_iface: object   # on the provider, toward the IX router
    ix_iface: object         # on the IX router, toward the provider
    delay: float             # one-way provider<->IX link delay


@dataclass(frozen=True)
class IxPoint:
    """An internet-exchange router and the providers peering across it."""

    index: int
    router: object
    members: tuple


@dataclass
class TierLayout:
    """The transit structure of a tiered internet, consumed by the plan.

    ``tiers`` lists provider ids per tier, tier 0 (the default-free clique)
    first.  ``uplinks`` maps each non-core provider id to its candidate
    :class:`TransitUplink` records; ``aggregates`` maps provider ids to the
    /8 locator block each provider announces upward on behalf of its
    customer cone.
    """

    tiers: tuple
    uplinks: dict = field(default_factory=dict)
    ixps: tuple = ()
    aggregates: dict = field(default_factory=dict)


class HierarchicalRoutingPlan:
    """Tiered routing: core tables + default-up chains + aggregation.

    Drop-in alternative to :class:`RoutingPlan` for topologies carrying a
    :class:`TierLayout`.  Construction computes:

    - all-pairs shortest paths restricted to the **tier-0 clique** (the
      default-free core) — never over the full provider set;
    - for every lower-tier provider, the cheapest uplink toward the core
      (ties broken by parent name), yielding a memoized *transit chain*
      ``provider -> parent -> ... -> core gateway``;
    - each provider's *customer cone* (its /8 aggregate plus every
      best-parent descendant's), used for IX peering routes.

    Static routes installed at construction: a default route up each
    provider's best uplink, and — at every IX — each participant's routes
    for the other participants' customer-cone aggregates (valley-free
    peering: cones only, never a full table).

    :meth:`install` then handles attachments with the aggregation rule: a
    prefix covered by its owner's /8 aggregate (an xTR locator /32) is
    installed **only at the owner** — everywhere else the aggregate already
    delivers toward it.  Non-aggregatable prefixes (site infrastructure
    /24s, /32s outside locator space) walk the owner's chain installing
    descent routes at each ancestor, then spread across the core, whose
    members as the default-free zone carry every such prefix.

    With a single tier (every provider in tier 0, no uplinks, no IXPs) the
    installed FIBs and the :meth:`delay` answers are identical to the flat
    :class:`RoutingPlan` — the equivalence the worldbuild tests pin down.
    """

    def __init__(self, providers, layout, fingerprint=None):
        self.providers = list(providers)
        self.layout = layout
        members = self.providers + [ix.router for ix in layout.ixps]
        self.fingerprint = (fingerprint if fingerprint is not None
                            else mesh_fingerprint(members))

        self._core = [self.providers[pid] for pid in layout.tiers[0]]
        adjacency = build_adjacency(self._core)
        self._core_hops = {router: shortest_path_next_hops(adjacency, router)
                           for router in self._core}
        self._tier_of = {}
        for tier, ids in enumerate(layout.tiers):
            for pid in ids:
                self._tier_of[self.providers[pid]] = tier
        self._aggregate = {self.providers[pid]: prefix
                           for pid, prefix in layout.aggregates.items()}

        # Best uplink per non-core provider, resolved top tier down so each
        # parent's chain exists before its customers pick among parents.
        self._up = {}     # router -> (parent, up_iface, down_iface, delay)
        self._chain = {router: ((router, 0.0),) for router in self._core}
        for tier in range(1, len(layout.tiers)):
            for pid in layout.tiers[tier]:
                router = self.providers[pid]
                best = None
                for uplink in layout.uplinks.get(pid, ()):
                    parent = self.providers[uplink.parent_id]
                    chain = self._chain.get(parent)
                    if chain is None:
                        continue
                    key = (uplink.delay + chain[-1][1], parent.name)
                    if best is None or key < best[0]:
                        best = (key, uplink, parent)
                if best is None:
                    raise ValueError(
                        f"provider {router.name} has no uplink to the core")
                _, uplink, parent = best
                self._up[router] = (parent, uplink.up_iface,
                                    uplink.down_iface, uplink.delay)
                self._chain[router] = ((router, 0.0),) + tuple(
                    (node, dist + uplink.delay)
                    for node, dist in self._chain[parent])

        # Customer cones over the best-parent tree, leaves first.
        children = {router: [] for router in self.providers}
        for child, (parent, _up, _down, _delay) in self._up.items():
            children[parent].append(child)
        self._cone = {}
        for tier in range(len(layout.tiers) - 1, -1, -1):
            for pid in layout.tiers[tier]:
                router = self.providers[pid]
                prefixes = [self._aggregate[router]]
                for child in children[router]:
                    prefixes.extend(self._cone[child])
                self._cone[router] = tuple(prefixes)

        # IX shortcut table for delay(): router -> ((peer, through_delay), ...)
        ix_peers = {}
        for ix in layout.ixps:
            for member in ix.members:
                router = self.providers[member.provider_id]
                for other in ix.members:
                    if other is member:
                        continue
                    peer = self.providers[other.provider_id]
                    ix_peers.setdefault(router, []).append(
                        (peer, member.delay + other.delay))
        self._ix_peers = {router: tuple(peers)
                          for router, peers in ix_peers.items()}

        self._install_static_routes()

    def _install_static_routes(self):
        # IX peering routes first: where a peer also sits in the owner's
        # transit chain, the later descent/default installs win.
        for ix in self.layout.ixps:
            for member in ix.members:
                provider = self.providers[member.provider_id]
                for prefix in self._cone[provider]:
                    ix.router.fib.insert(FibEntry(
                        prefix, member.ix_iface, next_hop=provider,
                        metric=member.delay))
            for member in ix.members:
                provider = self.providers[member.provider_id]
                own_cone = set(self._cone[provider])
                for other in ix.members:
                    if other is member:
                        continue
                    peer = self.providers[other.provider_id]
                    through = member.delay + other.delay
                    for prefix in self._cone[peer]:
                        if prefix in own_cone:
                            continue  # never route own customers via a peer
                        provider.fib.insert(FibEntry(
                            prefix, member.provider_iface, next_hop=peer,
                            metric=through))
        for router, (parent, up_iface, _down, delay) in self._up.items():
            router.fib.insert(FibEntry(DEFAULT_PREFIX, up_iface,
                                       next_hop=parent, metric=delay))

    def next_hop(self, router, owner):
        """``(first_hop_iface, delay_estimate)`` from *router* toward *owner*."""
        if router is owner:
            return None
        chain = self._chain[owner]
        for i in range(1, len(chain)):
            ancestor, dist = chain[i]
            if ancestor is router:
                child = chain[i - 1][0]
                return (self._up[child][2], dist)
        total = self.delay(router, owner)
        if total is None:
            return None
        up = self._up.get(router)
        if up is not None:
            return (up[1], total)
        hop = self._core_hops[router].get(chain[-1][0])
        if hop is None:
            return None
        return (hop[0], total)

    def delay(self, source, destination):
        """Route-following delay estimate between two mesh providers.

        Minimum over the meeting points the installed routes can use: the
        first common ancestor of the two transit chains, any IX shortcut
        between chain members, and the cross-core path between the two
        gateways.  For a single-tier layout this degenerates to the flat
        plan's shortest-path answer.  O(chain depth) per query.
        """
        if source is destination:
            return 0.0
        chain_b = self._chain[destination]
        dist_b = {router: dist for router, dist in chain_b}
        best = None
        for router, dist_a in self._chain[source]:
            via_common = dist_b.get(router)
            if via_common is not None:
                candidate = dist_a + via_common
                if best is None or candidate < best:
                    best = candidate
            for peer, through in self._ix_peers.get(router, ()):
                via_peer = dist_b.get(peer)
                if via_peer is not None:
                    candidate = dist_a + through + via_peer
                    if best is None or candidate < best:
                        best = candidate
        gateway_a, up_a = self._chain[source][-1]
        gateway_b, up_b = chain_b[-1]
        if gateway_a is not gateway_b:
            hop = self._core_hops[gateway_a].get(gateway_b)
            if hop is not None:
                candidate = up_a + hop[1] + up_b
                if best is None or candidate < best:
                    best = candidate
        return best

    def install(self, owned_prefixes):
        """Install FIB routes for attachments, aggregating at tier boundaries.

        Same signature and idempotence as :meth:`RoutingPlan.install`.
        Prefixes covered by the owner's /8 aggregate collapse into it above
        the owner; everything else is installed along the owner's transit
        chain and across the core.
        """
        for prefix, owner, local_iface in owned_prefixes:
            if local_iface is not None:
                owner.fib.insert(FibEntry(prefix, local_iface))
            if owner not in self._tier_of:
                raise ValueError(f"{owner.name} is not a transit provider")
            aggregate = self._aggregate.get(owner)
            if (owner not in self._core and aggregate is not None
                    and prefix != aggregate and aggregate.contains(prefix)):
                continue  # collapsed into the aggregate above the owner
            chain = self._chain[owner]
            for i in range(1, len(chain)):
                ancestor, dist = chain[i]
                child = chain[i - 1][0]
                down_iface = self._up[child][2]
                ancestor.fib.insert(FibEntry(prefix, down_iface,
                                             next_hop=owner, metric=dist))
            gateway, gateway_dist = chain[-1]
            for router in self._core:
                if router is gateway:
                    continue
                hop = self._core_hops[router].get(gateway)
                if hop is None:
                    continue
                iface, distance = hop
                router.fib.insert(FibEntry(prefix, iface, next_hop=owner,
                                           metric=distance + gateway_dist))


def install_mesh_routes(providers, owned_prefixes):
    """Install routes among provider routers (from-scratch computation).

    Kept as the reference implementation: builds a fresh
    :class:`RoutingPlan` and installs every attachment through it.  Callers
    on the hot path should hold a plan and use :meth:`RoutingPlan.install`
    incrementally instead.
    """
    RoutingPlan(providers).install(owned_prefixes)


def path_delay(adjacency, source, destination):
    """Total shortest-path delay between two routers (None if unreachable).

    Note: runs a full Dijkstra from *source* per call.  Repeated pairwise
    queries should go through :meth:`RoutingPlan.delay`, which answers from
    the precomputed tables (see ``Topology.provider_mesh_delay``).
    """
    if source is destination:
        return 0.0
    hops = shortest_path_next_hops(adjacency, source)
    entry = hops.get(destination)
    return entry[1] if entry is not None else None
