"""IPv4 addresses and prefixes, implemented from scratch.

The simulator uses its own integer-backed address types rather than the
stdlib ``ipaddress`` module so the FIB trie and the LISP mapping records can
operate directly on (value, mask-length) integers, and so address arithmetic
stays explicit and cheap.
"""

from functools import total_ordering

from repro.net.errors import AddressError

_MAX32 = (1 << 32) - 1


def _parse_dotted_quad(text):
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"bad IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"bad IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"bad IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


@total_ordering
class IPv4Address:
    """A single IPv4 address (immutable, hashable, totally ordered)."""

    __slots__ = ("_value",)

    def __init__(self, value):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= _MAX32:
                raise AddressError(f"address out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        else:
            raise AddressError(f"cannot build IPv4Address from {value!r}")

    def __int__(self):
        return self._value

    def __str__(self):
        value = self._value
        return f"{value >> 24 & 255}.{value >> 16 & 255}.{value >> 8 & 255}.{value & 255}"

    def __repr__(self):
        return f"IPv4Address('{self}')"

    def __eq__(self, other):
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, (int, str)):
            return self._value == IPv4Address(other)._value
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self):
        return hash(("IPv4Address", self._value))

    def __add__(self, offset):
        return IPv4Address(self._value + int(offset))

    @property
    def value(self):
        """The 32-bit integer value."""
        return self._value

    def in_prefix(self, prefix):
        """True if this address lies within *prefix*."""
        return prefix.contains(self)

    def to_bytes(self):
        """Big-endian 4-byte encoding (used by the wire formats)."""
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data):
        if len(data) != 4:
            raise AddressError(f"need 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))


@total_ordering
class IPv4Prefix:
    """An IPv4 network prefix (address + mask length).

    The host bits of the supplied address must be zero; use
    :meth:`containing` to derive the enclosing prefix of an arbitrary
    address instead.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network, length=None):
        if isinstance(network, IPv4Prefix):
            self._network, self._length = network._network, network._length
            return
        if isinstance(network, str) and length is None:
            if "/" not in network:
                raise AddressError(f"prefix needs a /length: {network!r}")
            addr_text, _, length_text = network.partition("/")
            network = addr_text
            try:
                length = int(length_text)
            except ValueError:
                raise AddressError(f"bad prefix length in {network!r}") from None
        if length is None:
            raise AddressError("prefix length required")
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        base = IPv4Address(network).value
        mask = self._mask_for(length)
        if base & ~mask & _MAX32:
            raise AddressError(
                f"host bits set in prefix {IPv4Address(base)}/{length}"
            )
        self._network = base
        self._length = length

    @staticmethod
    def _mask_for(length):
        return (_MAX32 << (32 - length)) & _MAX32 if length else 0

    @classmethod
    def containing(cls, address, length):
        """The /*length* prefix that contains *address*."""
        base = IPv4Address(address).value & cls._mask_for(length)
        return cls(base, length)

    @property
    def network(self):
        """The network address as :class:`IPv4Address`."""
        return IPv4Address(self._network)

    @property
    def length(self):
        """The mask length (0-32)."""
        return self._length

    @property
    def mask(self):
        """The netmask as a 32-bit integer."""
        return self._mask_for(self._length)

    @property
    def num_addresses(self):
        """Number of addresses covered."""
        return 1 << (32 - self._length)

    def __str__(self):
        return f"{self.network}/{self._length}"

    def __repr__(self):
        return f"IPv4Prefix('{self}')"

    def __eq__(self, other):
        if isinstance(other, IPv4Prefix):
            return (self._network, self._length) == (other._network, other._length)
        if isinstance(other, str):
            return self == IPv4Prefix(other)
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, IPv4Prefix):
            return (self._network, self._length) < (other._network, other._length)
        return NotImplemented

    def __hash__(self):
        return hash(("IPv4Prefix", self._network, self._length))

    def contains(self, address):
        """True if *address* (or the whole prefix *address*) lies within self."""
        if isinstance(address, IPv4Prefix):
            return address._length >= self._length and self.contains(address.network)
        value = IPv4Address(address).value
        return value & self.mask == self._network

    def overlaps(self, other):
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def address_at(self, offset):
        """The address *offset* positions into the prefix (bounds-checked)."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(f"offset {offset} outside {self}")
        return IPv4Address(self._network + offset)

    def subnets(self, new_length):
        """Iterate the sub-prefixes of mask length *new_length*."""
        if new_length < self._length or new_length > 32:
            raise AddressError(f"cannot split {self} into /{new_length}")
        step = 1 << (32 - new_length)
        for base in range(self._network, self._network + self.num_addresses, step):
            yield IPv4Prefix(base, new_length)

    def hosts(self, count=None):
        """Iterate usable host addresses (network address skipped for /<31)."""
        start = 1 if self._length < 31 else 0
        limit = self.num_addresses if count is None else min(start + count, self.num_addresses)
        for offset in range(start, limit):
            yield IPv4Address(self._network + offset)
