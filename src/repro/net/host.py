"""End hosts: the sources and sinks of application traffic.

Hosts expose a tiny socket-like API: :meth:`Host.open_udp` returns a
:class:`UdpSocket` whose :meth:`~UdpSocket.request` method implements the
send-and-await-reply pattern used by DNS lookups, with timeout and retry.
"""

from repro.net.addresses import IPv4Address
from repro.net.node import Node
from repro.net.packet import udp_packet


class RequestTimeout(Exception):
    """A :meth:`UdpSocket.request` exceeded its timeout (after retries)."""


class UdpSocket:
    """An ephemeral UDP endpoint bound to a host port."""

    def __init__(self, host, port):
        self.host = host
        self.port = port
        self._waiters = []
        self.on_datagram = None
        host.bind_udp(port, self._deliver)

    def _deliver(self, packet, _node):
        if self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed(packet)
                return
        if self.on_datagram is not None:
            self.on_datagram(packet)

    def send(self, dst, dport, payload=None, payload_bytes=0, meta=None):
        """Fire-and-forget datagram."""
        packet = udp_packet(self.host.address, IPv4Address(dst), self.port, dport,
                            payload=payload, payload_bytes=payload_bytes, meta=meta)
        self.host.send(packet)
        return packet

    def request(self, dst, dport, payload=None, payload_bytes=0, timeout=2.0, retries=2):
        """Process: send and wait for the next datagram on this socket.

        Retries up to *retries* extra times on timeout, then raises
        :class:`RequestTimeout` inside the calling process.
        """
        sim = self.host.sim

        def _request():
            attempts = retries + 1
            for _attempt in range(attempts):
                self.send(dst, dport, payload=payload, payload_bytes=payload_bytes)
                waiter = sim.event(name=f"udp:{self.host.name}:{self.port}")
                self._waiters.append(waiter)
                deadline = sim.timeout(timeout)
                outcome = yield sim.any_of([waiter, deadline])
                if waiter in outcome:
                    return outcome[waiter]
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
            raise RequestTimeout(f"{self.host.name}:{self.port} -> {dst}:{dport}")

        return sim.process(_request())

    def close(self):
        self.host.unbind_udp(self.port)


class Host(Node):
    """An end host with a single address and simple socket API."""

    def __init__(self, sim, name, address=None):
        super().__init__(sim, name)
        self._address = IPv4Address(address) if address is not None else None
        if self._address is not None:
            self.add_address(self._address)
        self._next_ephemeral = 49152

    @property
    def address(self):
        """The host's primary address."""
        return self._address if self._address is not None else self.primary_address()

    @address.setter
    def address(self, value):
        self._address = IPv4Address(value)
        self.add_address(self._address)

    _state_attrs = (*Node._state_attrs, "_next_ephemeral")

    def ephemeral_port(self):
        """Allocate the next ephemeral port (wraps within the IANA range)."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        return port

    def open_udp(self, port=None):
        """Open a UDP socket (ephemeral port when *port* is None)."""
        if port is None:
            port = self.ephemeral_port()
        return UdpSocket(self, port)
