"""Packet model: header stacks, encapsulation, sizing.

Packets carry a list of headers (outermost first) plus a payload, which may
be raw ``bytes``, an application-level message object (e.g. a DNS message),
or another :class:`Packet` — the latter is how IP-in-IP / LISP encapsulation
is modelled.  Sizes are tracked in bytes so links can compute serialisation
delay and queues can account occupancy.
"""

from dataclasses import dataclass, field, replace
from itertools import count

from repro.net.addresses import IPv4Address

PROTO_ICMP = 1
PROTO_IPIP = 4
PROTO_TCP = 6
PROTO_UDP = 17

IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20

_packet_ids = count(1)


@dataclass(slots=True)
class IPv4Header:
    """The fields of an IPv4 header the simulator cares about."""

    src: IPv4Address
    dst: IPv4Address
    proto: int
    ttl: int = 64
    tos: int = 0

    def __post_init__(self):
        self.src = IPv4Address(self.src)
        self.dst = IPv4Address(self.dst)

    @property
    def size_bytes(self):
        return IPV4_HEADER_BYTES

    def __str__(self):
        return f"IP({self.src}->{self.dst} proto={self.proto} ttl={self.ttl})"


@dataclass(slots=True)
class UDPHeader:
    """UDP source/destination ports."""

    sport: int
    dport: int

    @property
    def size_bytes(self):
        return UDP_HEADER_BYTES

    def __str__(self):
        return f"UDP({self.sport}->{self.dport})"


# TCP flag bits.
TCP_SYN = 0x02
TCP_ACK = 0x10
TCP_FIN = 0x01
TCP_RST = 0x04


@dataclass(slots=True)
class TCPHeader:
    """A minimal TCP header: ports, flags, sequence numbers."""

    sport: int
    dport: int
    flags: int = 0
    seq: int = 0
    ack: int = 0

    @property
    def size_bytes(self):
        return TCP_HEADER_BYTES

    @property
    def is_syn(self):
        return bool(self.flags & TCP_SYN) and not self.flags & TCP_ACK

    @property
    def is_synack(self):
        return bool(self.flags & TCP_SYN) and bool(self.flags & TCP_ACK)

    @property
    def is_ack(self):
        return bool(self.flags & TCP_ACK) and not self.flags & TCP_SYN

    def __str__(self):
        names = []
        for bit, name in ((TCP_SYN, "SYN"), (TCP_ACK, "ACK"), (TCP_FIN, "FIN"), (TCP_RST, "RST")):
            if self.flags & bit:
                names.append(name)
        return f"TCP({self.sport}->{self.dport} {'|'.join(names) or '-'})"


@dataclass(slots=True)
class Packet:
    """A packet in flight.

    Attributes
    ----------
    headers:
        Outermost-first list of header objects (each exposing ``size_bytes``).
    payload:
        ``bytes``, an application message (exposing ``size_bytes`` or
        encodable), or another :class:`Packet` (encapsulation).
    payload_bytes:
        Explicit payload size; required when the payload object does not
        expose one.
    meta:
        Free-form annotations (flow id, creation time, hop count...).  Meta
        survives :meth:`copy` so experiments can follow a packet end-to-end.
    """

    headers: list
    payload: object = None
    payload_bytes: int = 0
    meta: dict = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bytes(self):
        """Total on-wire size: all header bytes plus the payload size."""
        total = sum(header.size_bytes for header in self.headers)
        return total + self._payload_size()

    def _payload_size(self):
        if self.payload is None:
            return self.payload_bytes
        if isinstance(self.payload, Packet):
            return self.payload.size_bytes
        if isinstance(self.payload, (bytes, bytearray)):
            return len(self.payload)
        size = getattr(self.payload, "size_bytes", None)
        if size is not None:
            return size
        return self.payload_bytes

    @property
    def ip(self):
        """The outermost IPv4 header (or None)."""
        return self.find(IPv4Header)

    @property
    def udp(self):
        """The outermost UDP header (or None)."""
        return self.find(UDPHeader)

    @property
    def tcp(self):
        """The outermost TCP header (or None)."""
        return self.find(TCPHeader)

    def find(self, header_type):
        """First header of *header_type* in this packet's own stack."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    @property
    def inner(self):
        """The encapsulated packet, if the payload is a packet."""
        return self.payload if isinstance(self.payload, Packet) else None

    def innermost(self):
        """Follow encapsulation down to the innermost packet."""
        packet = self
        while packet.inner is not None:
            packet = packet.inner
        return packet

    def copy(self):
        """Deep-enough copy: headers and meta copied, payload shared.

        Header objects are replaced (dataclass ``replace``) so in-flight TTL
        mutation on one copy never affects another.
        """
        cloned_payload = self.payload.copy() if isinstance(self.payload, Packet) else self.payload
        return Packet(
            headers=[replace(header) for header in self.headers],
            payload=cloned_payload,
            payload_bytes=self.payload_bytes,
            meta=dict(self.meta),
        )

    def __str__(self):
        stack = " / ".join(str(header) for header in self.headers)
        if self.inner is not None:
            return f"[{stack} | {self.inner}]"
        return f"[{stack} len={self.size_bytes}]"


def udp_packet(src, dst, sport, dport, payload=None, payload_bytes=0, ttl=64, meta=None):
    """Convenience constructor for a UDP datagram."""
    return Packet(
        headers=[IPv4Header(src=src, dst=dst, proto=PROTO_UDP, ttl=ttl), UDPHeader(sport, dport)],
        payload=payload,
        payload_bytes=payload_bytes,
        meta=meta or {},
    )


def tcp_packet(src, dst, sport, dport, flags=0, seq=0, ack=0, payload_bytes=0, ttl=64, meta=None):
    """Convenience constructor for a TCP segment."""
    return Packet(
        headers=[
            IPv4Header(src=src, dst=dst, proto=PROTO_TCP, ttl=ttl),
            TCPHeader(sport, dport, flags=flags, seq=seq, ack=ack),
        ],
        payload_bytes=payload_bytes,
        meta=meta or {},
    )
