"""Exceptions raised by the network substrate."""


class NetworkError(Exception):
    """Base class for network-layer errors."""


class AddressError(NetworkError, ValueError):
    """Malformed address or prefix."""


class NoRouteError(NetworkError):
    """A FIB lookup found no matching entry."""


class PortInUseError(NetworkError):
    """A UDP/TCP port was bound twice on the same node."""
