"""Nodes and interfaces: the forwarding and demultiplexing machinery.

A :class:`Node` owns interfaces, a FIB, and a registry of protocol and UDP
port handlers.  Higher layers (DNS servers, LISP tunnel routers, PCEs) are
implemented as *services*: objects that bind handlers on a node rather than
subclassing it, so one physical node can host several roles, exactly like
the paper's co-located DNS + PCE.
"""

from repro.net.addresses import IPv4Address
from repro.net.errors import NoRouteError, PortInUseError
from repro.net.fib import Fib
from repro.net.packet import PROTO_UDP, Packet, UDPHeader
from repro.sim.state import restore_attrs, snapshot_attrs


class Interface:
    """A network attachment point on a node."""

    __slots__ = ("node", "name", "address", "link")

    def __init__(self, node, name, address=None):
        self.node = node
        self.name = f"{node.name}.{name}"
        self.address = IPv4Address(address) if address is not None else None
        self.link = None

    def attach_link(self, link):
        self.link = link

    @property
    def peer(self):
        """The interface at the other end of the attached link."""
        return self.link.dst_interface if self.link is not None else None

    def __str__(self):
        return self.name


class Node:
    """A network element with interfaces, a FIB, and protocol handlers."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.interfaces = {}
        self.fib = Fib()
        self.extra_addresses = set()
        self.services = {}
        self._proto_handlers = {}
        self._udp_ports = {}
        self.forward_taps = []
        self.rx_packets = 0
        self.tx_packets = 0
        self.dropped_packets = 0

    def __str__(self):
        return self.name

    def __repr__(self):
        return f"<{self.__class__.__name__} {self.name}>"

    # ------------------------------------------------------------------ #
    # Interfaces and addressing
    # ------------------------------------------------------------------ #

    def add_interface(self, name, address=None):
        """Create and register an interface; returns it."""
        if name in self.interfaces:
            raise ValueError(f"{self.name} already has interface {name}")
        interface = Interface(self, name, address)
        self.interfaces[name] = interface
        return interface

    def add_address(self, address):
        """Register an additional local address (e.g. a loopback/service IP)."""
        self.extra_addresses.add(IPv4Address(address))

    def addresses(self):
        """All addresses considered local to this node."""
        local = set(self.extra_addresses)
        for interface in self.interfaces.values():
            if interface.address is not None:
                local.add(interface.address)
        return local

    def primary_address(self):
        """A deterministic 'main' address for this node (lowest local)."""
        local = self.addresses()
        if not local:
            raise NoRouteError(f"{self.name} has no addresses")
        return min(local)

    def is_local(self, address):
        return IPv4Address(address) in self.addresses()

    # ------------------------------------------------------------------ #
    # Handler registration (services plug in here)
    # ------------------------------------------------------------------ #

    def register_service(self, name, service):
        """Attach a named service object for later lookup."""
        self.services[name] = service
        return service

    def register_protocol(self, proto, handler):
        """Handle locally-delivered packets of IP protocol *proto*."""
        self._proto_handlers[proto] = handler

    def bind_udp(self, port, handler):
        """Handle locally-delivered UDP datagrams to *port*.

        *handler(packet, node)* is called with the full packet.
        """
        if port in self._udp_ports:
            raise PortInUseError(f"{self.name} UDP port {port} already bound")
        self._udp_ports[port] = handler

    def unbind_udp(self, port):
        self._udp_ports.pop(port, None)

    def add_forward_tap(self, tap):
        """Register *tap(packet, node) -> bool* run on forwarded packets.

        A tap returning True consumes the packet (normal forwarding stops).
        This is how the PCE observes DNS traffic transiting through it
        without being the packet's IP destination (Steps 2-6 of Fig. 1).
        """
        self.forward_taps.append(tap)

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def receive(self, packet, interface=None):
        """Entry point for packets arriving from a link (or injected)."""
        self.rx_packets += 1
        ip = packet.ip
        if ip is None:
            self.dropped_packets += 1
            return
        if self.is_local(ip.dst):
            self.deliver_local(packet)
        else:
            self.forward(packet, interface)

    def deliver_local(self, packet):
        """Dispatch a packet addressed to this node."""
        ip = packet.ip
        if ip.proto == PROTO_UDP:
            udp = packet.udp
            handler = self._udp_ports.get(udp.dport) if udp is not None else None
            if handler is not None:
                handler(packet, self)
                return
        handler = self._proto_handlers.get(ip.proto)
        if handler is not None:
            handler(packet, self)
            return
        self.dropped_packets += 1
        self.sim.trace.record(self.sim.now, self.name, "node.unclaimed",
                              proto=ip.proto, dst=str(ip.dst), uid=packet.uid)

    def forward(self, packet, interface=None):
        """Base nodes do not forward; see :class:`~repro.net.router.Router`."""
        self.dropped_packets += 1
        self.sim.trace.record(self.sim.now, self.name, "node.no-forward",
                              dst=str(packet.ip.dst), uid=packet.uid)

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #

    def send(self, packet):
        """Route *packet* via the FIB and put it on the egress link.

        Returns True if the packet was accepted by a link.
        """
        ip = packet.ip
        if ip is None:
            raise ValueError("packet has no IP header")
        if self.is_local(ip.dst):
            # Local-to-local delivery without touching the wire.
            self.sim.call_in(0.0, self.deliver_local, packet)
            return True
        try:
            entry = self.fib.lookup(ip.dst)
        except NoRouteError:
            self.dropped_packets += 1
            self.sim.trace.record(self.sim.now, self.name, "node.no-route",
                                  dst=str(ip.dst), uid=packet.uid)
            return False
        interface = entry.interface
        if interface is None or interface.link is None:
            self.dropped_packets += 1
            return False
        self.tx_packets += 1
        return interface.link.send(packet)

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: Mutable attributes captured by snapshot_state (subclasses extend).
    _state_attrs = ("rx_packets", "tx_packets", "dropped_packets",
                    "extra_addresses", "services", "_proto_handlers",
                    "_udp_ports", "forward_taps")

    #: Construction-time identity and wiring: interfaces are created during
    #: topology build and never change during a run.
    _SNAPSHOT_EXEMPT = ("sim", "name", "interfaces")

    def snapshot_state(self):
        state = snapshot_attrs(self, self._state_attrs)
        state["fib"] = self.fib.snapshot_state()
        return state

    def restore_state(self, state):
        self.fib.restore_state(state["fib"])
        restore_attrs(self, {name: value for name, value in state.items()
                             if name != "fib"})

    def send_udp(self, src, dst, sport, dport, payload=None, payload_bytes=0, meta=None):
        """Build and send a UDP datagram from this node."""
        from repro.net.packet import IPv4Header  # local import to avoid cycle noise

        packet = Packet(
            headers=[IPv4Header(src=src, dst=dst, proto=PROTO_UDP),
                     UDPHeader(sport, dport)],
            payload=payload,
            payload_bytes=payload_bytes,
            meta=meta or {},
        )
        self.send(packet)
        return packet
