"""Network substrate: addresses, packets, links, nodes, forwarding, topology.

This package models the IP layer the paper's architecture runs over.  It is a
packet-level model: every packet traverses links with configurable delay,
bandwidth and finite FIFO queues, and every node forwards via a radix-trie
FIB with longest-prefix-match semantics.

The LISP split between identifiers and locators is expressed here purely in
terms of *which prefixes are installed in which FIBs*: EID prefixes live only
in site-internal FIBs, RLOC and infrastructure prefixes are installed
globally (see :mod:`repro.net.routing` and :mod:`repro.net.topology`).
"""

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.fib import Fib, FibEntry
from repro.net.link import Link
from repro.net.node import Interface, Node
from repro.net.packet import (
    PROTO_ICMP,
    PROTO_IPIP,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Header,
    Packet,
    TCPHeader,
    UDPHeader,
)
from repro.net.router import Router
from repro.net.host import Host

__all__ = [
    "Fib",
    "FibEntry",
    "Host",
    "IPv4Address",
    "IPv4Header",
    "IPv4Prefix",
    "Interface",
    "Link",
    "Node",
    "PROTO_ICMP",
    "PROTO_IPIP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "Router",
    "TCPHeader",
    "UDPHeader",
]
