"""The checker framework behind ``repro analyze``.

The reproduction rests on two contracts that runtime tests can only probe
where they happen to look: simulations must be bit-deterministic for a
given seed (sweep digests are gated on worker-count independence), and
every stateful component must checkpoint/restore *completely* (world reuse
restores components in place; a forgotten attribute silently leaks one
run's state into the next).  This package makes those contracts
machine-checked: each rule is an AST pass over the source tree, findings
carry ``file:line``, a rule id and a fix hint, and the CLI exits nonzero
when anything fires — cheap enough to run on every commit.

Rules register themselves in :data:`REGISTRY` via :func:`register`; the
rule modules under :mod:`repro.analysis.rules` are imported for their
registration side effect by :func:`load_default_rules`.  A checker is an
object with ``rule_id``, ``description`` and ``hint`` attributes and a
``check(module)`` generator yielding :class:`Finding` objects.

Suppressions
------------

A finding can be silenced at its exact line with a pragma comment::

    value = random.Random(reproducible_seed)  # repro: allow=DET01

``allow=*`` silences every rule on the line.  Class-shaped escape hatches
(the ``_SNAPSHOT_EXEMPT`` attribute consumed by SNAP01) live with the rule
that defines them.
"""

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: rule id -> checker instance (registration order preserved).
REGISTRY = {}

_PRAGMA = re.compile(r"#\s*repro:\s*allow=([A-Za-z0-9*,\s]+)")


def register(cls):
    """Class decorator: instantiate *cls* and add it to :data:`REGISTRY`."""
    checker = cls()
    if checker.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {checker.rule_id}")
    REGISTRY[checker.rule_id] = checker
    return cls


def load_default_rules():
    """Import the bundled rule modules (idempotent); returns the registry."""
    from repro.analysis import rules  # noqa: F401  (import registers rules)

    return REGISTRY


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str
    hint: str = ""

    def render(self):
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self):
        return {"rule": self.rule_id, "path": self.path, "line": self.line,
                "message": self.message, "hint": self.hint}


@dataclass
class ModuleInfo:
    """A parsed source module handed to every checker.

    ``allowed`` maps line numbers to the set of rule ids suppressed there
    (``{"*"}`` suppresses everything on the line).
    """

    path: str
    source: str
    tree: ast.AST
    allowed: dict = field(default_factory=dict)

    def finding(self, checker, node, message, hint=None):
        """Build a :class:`Finding` anchored at *node* (or an int line)."""
        line = node if isinstance(node, int) else node.lineno
        return Finding(rule_id=checker.rule_id, path=self.path, line=line,
                       message=message,
                       hint=checker.hint if hint is None else hint)

    def is_allowed(self, rule_id, line):
        allowed = self.allowed.get(line, ())
        return "*" in allowed or rule_id in allowed


def _collect_pragmas(source):
    """line -> set of rule ids allowed there, from ``# repro: allow=`` comments.

    Comments are found with the tokenizer, not a per-line regex, so pragma
    text inside string literals does not suppress anything.
    """
    allowed = {}
    lines = source.splitlines(keepends=True)
    try:
        tokens = tokenize.generate_tokens(iter(lines).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                allowed.setdefault(token.start[0], set()).update(
                    rule for rule in rules if rule)
    except tokenize.TokenError:
        pass
    return allowed


def parse_module(path, display_path=None):
    """Parse *path* into a :class:`ModuleInfo`, or None on syntax errors.

    Unparseable files are a job for the interpreter/linter, not the
    contract checkers; they are skipped rather than reported.
    """
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return ModuleInfo(path=str(display_path or path), source=source, tree=tree,
                      allowed=_collect_pragmas(source))


def iter_python_files(paths):
    """Every ``.py`` file under *paths* (files given directly are kept).

    A path that does not exist raises :class:`ValueError` — a typo'd tree
    silently reporting "0 findings" would defeat the CI gate.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ValueError(f"no such file or directory: {path}")
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths, rules=None):
    """Run *rules* (default: every registered rule) over *paths*.

    Returns a list of :class:`Finding` objects sorted by (path, line,
    rule); pragma-suppressed findings are dropped.
    """
    load_default_rules()
    if rules is None:
        checkers = list(REGISTRY.values())
    else:
        unknown = sorted(set(rules) - set(REGISTRY))
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(unknown)} "
                             f"(available: {', '.join(sorted(REGISTRY))})")
        checkers = [REGISTRY[rule_id] for rule_id in rules]
    findings = []
    for file_path in iter_python_files(paths):
        module = parse_module(file_path)
        if module is None:
            continue
        for checker in checkers:
            for finding in checker.check(module):
                if not module.is_allowed(finding.rule_id, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings
