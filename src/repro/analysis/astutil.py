"""Shared AST spelunking helpers for the contract checkers."""

import ast


def class_methods(class_def):
    """name -> FunctionDef for the *direct* methods of *class_def*."""
    return {node.name: node for node in class_def.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def iter_class_defs(tree):
    """Every ClassDef in *tree*, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def self_attr_stores(func_def):
    """attr name -> first assignment line for ``self.attr = ...`` targets."""
    stores = {}

    def record(target):
        if isinstance(target, ast.Attribute) and is_self(target.value):
            stores.setdefault(target.attr, target.lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record(element)
        elif isinstance(target, ast.Starred):
            record(target.value)

    for node in ast.walk(func_def):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            record(node.target)
    return stores


def is_self(node):
    return isinstance(node, ast.Name) and node.id == "self"


def self_attr_names(*func_defs):
    """Every attribute name touched as ``self.<attr>`` in the given bodies."""
    names = set()
    for func_def in func_defs:
        if func_def is None:
            continue
        for node in ast.walk(func_def):
            if isinstance(node, ast.Attribute) and is_self(node.value):
                names.add(node.attr)
    return names


def string_constants(*func_defs):
    """Every string literal appearing in the given bodies (docstrings too)."""
    values = set()
    for func_def in func_defs:
        if func_def is None:
            continue
        for node in ast.walk(func_def):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                values.add(node.value)
    return values


def class_string_tuples(class_def):
    """name -> tuple of strings, for class-level str-sequence constants.

    Covers the ``_state_attrs = ("a", "b")`` idiom (plain or annotated
    assignment of a tuple/list/set of string literals).
    """
    constants = {}
    for node in class_def.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        strings = constant_string_seq(value)
        if strings is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = strings
    return constants


def constant_string_seq(node):
    """The tuple of strings *node* spells, or None if it is anything else."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        strings = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            strings.append(element.value)
        return tuple(strings)
    return None


def referenced_names(*func_defs):
    """Every bare Name referenced in the given bodies."""
    names = set()
    for func_def in func_defs:
        if func_def is None:
            continue
        for node in ast.walk(func_def):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def call_name(node):
    """The trailing name of a call target: ``f(...)`` -> f, ``a.b.f(...)`` -> f."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_root(node):
    """The root Name of an attribute chain (``a.b.c`` -> ``a``), or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_truthy_constant(node):
    return isinstance(node, ast.Constant) and bool(node.value)


def contains_yield(node):
    """True when *node*'s body yields without descending into nested defs."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if contains_yield(child):
            return True
    return False
