"""AST-based invariant checkers for the determinism & snapshot contracts.

Run as ``repro analyze [paths...]`` (or ``python -m repro analyze``); see
:mod:`repro.analysis.core` for the framework and docs/contracts.md for the
contracts themselves.
"""

from repro.analysis.core import (
    REGISTRY,
    Finding,
    analyze_paths,
    load_default_rules,
    register,
)

__all__ = ["REGISTRY", "Finding", "analyze_paths", "load_default_rules",
           "register"]
