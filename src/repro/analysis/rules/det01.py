"""DET01: sim-path code must not touch ambient entropy or wall clocks.

Simulations are bit-deterministic for a given seed: sweep digests are
asserted equal across worker counts, and restored worlds must replay the
exact draws a fresh build would make.  Any ambient entropy source breaks
that silently — the run still "works", the digests just stop matching.

Banned:

- module-level :mod:`random` usage (``random.random()``, ``from random
  import choice`` ...).  Constructing an explicitly *seeded*
  ``random.Random(seed)`` is the one sanctioned use — that is how the
  engine's named-stream factory (:mod:`repro.sim.rng`) derives its
  streams; an argument-less ``random.Random()`` seeds from the OS and is
  banned;
- wall clocks: ``time.time``/``time.time_ns``/``time.monotonic``/
  ``time.perf_counter`` and ``datetime.now``/``utcnow``/``today``;
- OS entropy: ``os.urandom``, ``secrets.*``, ``uuid.uuid1``/``uuid4``;
- ``id()`` as a sort key (``sorted(x, key=id)`` or a lambda returning
  ``id(...)``): CPython ids are allocation addresses, so the order varies
  run to run.

Simulated time lives at ``sim.now``; entropy comes from
``sim.rng.stream(name)``.
"""

import ast

from repro.analysis import astutil
from repro.analysis.core import register

#: module name -> banned attributes (``None`` = every attribute).
_BANNED_ATTRS = {
    "random": None,  # except seeded random.Random(...), special-cased below
    "secrets": None,
    "time": ("time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "clock"),
    "datetime": ("now", "utcnow", "today"),
    "date": ("today",),
    "os": ("urandom", "getrandom"),
    "uuid": ("uuid1", "uuid4"),
}

_SORT_CALLS = {"sorted", "sort", "min", "max", "nsmallest", "nlargest"}


def _is_seeded_random_ctor(node, parents):
    """True for ``random.Random(<at least one argument>)``."""
    if not (isinstance(node, ast.Attribute) and node.attr == "Random"):
        return False
    call = parents.get(id(node))
    return (isinstance(call, ast.Call) and call.func is node
            and bool(call.args or call.keywords))


def _build_parents(tree):
    parents = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


@register
class Det01:
    rule_id = "DET01"
    description = ("ban ambient entropy and wall clocks in sim-path code "
                   "(module-level random, time.time, datetime.now, "
                   "os.urandom, uuid4, id() sort keys)")
    hint = ("draw randomness from sim.rng.stream(name) and time from "
            "sim.now; the seeded streams in repro.sim.rng are the only "
            "sanctioned entropy")

    def check(self, module):
        parents = _build_parents(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(module, node, parents)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_sort_key(module, node)

    def _check_attribute(self, module, node, parents):
        root = node.value
        if not isinstance(root, ast.Name):
            # Also catch datetime.datetime.now() / datetime.date.today().
            if astutil.dotted_root(node) in ("datetime", "date") \
                    and node.attr in _BANNED_ATTRS["datetime"]:
                yield module.finding(
                    self, node,
                    f"wall-clock call {ast.unparse(node)} is nondeterministic")
            return
        banned = _BANNED_ATTRS.get(root.id)
        if banned is None and root.id not in _BANNED_ATTRS:
            return
        if banned is not None and node.attr not in banned:
            return
        if root.id == "random" and _is_seeded_random_ctor(node, parents):
            return
        yield module.finding(
            self, node,
            f"{root.id}.{node.attr} is an ambient entropy/wall-clock "
            f"source banned in sim-path code")

    def _check_import_from(self, module, node):
        banned = _BANNED_ATTRS.get(node.module)
        if node.module not in _BANNED_ATTRS:
            return
        for alias in node.names:
            if node.module == "random" and alias.name == "Random":
                continue  # seeded-constructor use is checked at call sites
            if banned is None or alias.name in banned:
                yield module.finding(
                    self, node,
                    f"from {node.module} import {alias.name} pulls an "
                    f"ambient entropy/wall-clock source into sim-path code")

    def _check_sort_key(self, module, node):
        if astutil.call_name(node) not in _SORT_CALLS:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id == "id":
                yield module.finding(
                    self, node,
                    "id() used as a sort key: object ids are allocation "
                    "addresses and vary run to run")
            elif isinstance(value, ast.Lambda) \
                    and isinstance(value.body, ast.Call) \
                    and isinstance(value.body.func, ast.Name) \
                    and value.body.func.id == "id":
                yield module.finding(
                    self, node,
                    "id() used as a sort key: object ids are allocation "
                    "addresses and vary run to run")
