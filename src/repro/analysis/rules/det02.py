"""DET02: set iteration that feeds ordered work must go through sorted().

``set`` iteration order depends on insertion history and element hashes —
and for strings, on ``PYTHONHASHSEED``, which differs between the sweep's
worker processes.  A set iterated into event scheduling, a digest, or an
ordered aggregate therefore produces different event interleavings (or
bytes) in different processes while every individual run still "works".
Dict iteration is insertion-ordered and deterministic, so it is fine.

The rule flags iteration over *statically recognisable* set expressions —
``set(...)``/``frozenset(...)`` calls, set literals and comprehensions,
``.union()``-style set-returning method calls, and local names bound to
one of those — when the results feed ordered work:

- a ``for`` loop whose body calls a scheduling, digest or aggregation
  sink (``call_in``, ``timeout``, ``process``, ``send``, ``update``,
  ``append`` ...);
- materialisation into an ordered container: ``list(s)``, ``tuple(s)``, a
  list comprehension, ``"".join(s)`` or ``*s`` unpacking.

Wrapping the set in ``sorted(...)`` resolves the finding; order-insensitive
consumers (``len``, ``min``, ``max``, ``any``, ``all``, ``set``, ``sum``,
membership tests) are never flagged.
"""

import ast

from repro.analysis import astutil
from repro.analysis.core import register

#: Calls inside a loop body that make iteration order observable.
_ORDER_SINKS = {
    # event scheduling
    "call_in", "call_at", "timeout", "process", "periodic", "schedule",
    "start", "succeed", "send", "send_udp", "request",
    # digests / serialisation
    "update", "record", "write", "dumps", "encode",
    # ordered aggregation
    "append", "extend", "insert", "put", "install", "push", "add_row",
}

#: Set-returning methods: calling one *builds* a set, so iterating the
#: result is hash-ordered even though we cannot see the receiver's type.
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

_SET_BUILTINS = {"set", "frozenset"}

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_set_expr(node, set_locals):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


def _walk_scope(scope):
    """Walk *scope*'s own nodes, not descending into nested def scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _set_locals(scope):
    """This scope's names bound to set expressions (and nothing else)."""
    bound, poisoned = set(), set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, bound):
                        bound.add(target.id)
                    else:
                        poisoned.add(target.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) \
                and isinstance(node.target, ast.Name):
            poisoned.add(node.target.id)
    return bound - poisoned


def _loop_sink(loop):
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            name = astutil.call_name(node)
            if name in _ORDER_SINKS:
                return name
    return None


@register
class Det02:
    rule_id = "DET02"
    description = ("set iteration feeding event scheduling, digests or "
                   "ordered aggregation must be wrapped in sorted()")
    hint = ("iterate sorted(<set>) so every process sees the same order "
            "(set order depends on PYTHONHASHSEED across sweep workers)")

    def check(self, module):
        yield from self._check_one_scope(module, module.tree)

    def _check_one_scope(self, module, scope):
        set_locals = _set_locals(scope)
        for node in _walk_scope(scope):
            yield from self._check_node(module, node, set_locals)
        for node in ast.walk(scope):
            if node is not scope and isinstance(node, _SCOPE_NODES):
                # Nested scopes resolve their own locals; walking them all
                # here (rather than recursing) visits each exactly once
                # because _walk_scope stops at scope boundaries.
                yield from self._check_nested(module, node)

    def _check_nested(self, module, scope):
        set_locals = _set_locals(scope)
        for node in _walk_scope(scope):
            yield from self._check_node(module, node, set_locals)

    def _check_node(self, module, node, set_locals):
        if isinstance(node, (ast.For, ast.AsyncFor)) \
                and _is_set_expr(node.iter, set_locals):
            sink = _loop_sink(node)
            if sink:
                yield module.finding(
                    self, node,
                    f"loop iterates a set in hash order and feeds "
                    f"'{sink}(...)' — the order is observable")
        elif isinstance(node, ast.ListComp):
            # A generator expression inherits its consumer's sensitivity
            # (sum/any/set.update are order-insensitive), so only the call
            # branch below flags those; a list comprehension *is* ordered.
            for comp in node.generators:
                if _is_set_expr(comp.iter, set_locals):
                    yield module.finding(
                        self, node,
                        "list comprehension materialises a set's hash "
                        "order into an ordered sequence")
        elif isinstance(node, ast.Call):
            name = astutil.call_name(node)
            if name in ("list", "tuple", "join") and node.args \
                    and self._arg_in_set_order(node.args[0], set_locals):
                yield module.finding(
                    self, node,
                    f"{name}(...) materialises a set's hash order into an "
                    f"ordered sequence")
        elif isinstance(node, ast.Starred) \
                and _is_set_expr(node.value, set_locals):
            yield module.finding(
                self, node, "*-unpacking a set materialises its hash order")

    @staticmethod
    def _arg_in_set_order(arg, set_locals):
        """True when *arg* yields elements in a set's hash order."""
        if _is_set_expr(arg, set_locals):
            return True
        return isinstance(arg, ast.GeneratorExp) and any(
            _is_set_expr(comp.iter, set_locals) for comp in arg.generators)
