"""SNAP01: ``__init__`` attributes must be captured by the checkpoint.

World reuse restores components in place: the worldbuild layer snapshots
every stateful component right after the build and restores those
snapshots before each reuse.  An attribute assigned in ``__init__`` but
invisible to ``snapshot_state``/``restore_state`` carries one run's state
into the next — the exact bug class that corrupts world-cache digests
without any test noticing.

An attribute counts as *captured* when either checkpoint method mentions
it: a ``self.<attr>`` access (tuple snapshots, in-place restores such as
``self._queue.clear()``), the attribute's name as a string literal (dict
snapshots, ``state["attr"]`` reads), or membership in a class-level tuple
of strings referenced by a checkpoint method (the ``snapshot_attrs(self,
self._state_attrs)`` idiom).  Genuinely immutable construction-time
attributes — the owning sim, wiring, config knobs — are declared once in
a ``_SNAPSHOT_EXEMPT`` class attribute instead.
"""

from repro.analysis import astutil
from repro.analysis.core import register

#: Class attribute naming the deliberate exemptions.
EXEMPT_ATTR = "_SNAPSHOT_EXEMPT"


@register
class Snap01:
    rule_id = "SNAP01"
    description = ("classes defining snapshot_state must capture every "
                   "__init__ attribute or list it in _SNAPSHOT_EXEMPT")
    hint = ("capture the attribute in snapshot_state/restore_state, or add "
            "it to the class's _SNAPSHOT_EXEMPT tuple if it is immutable "
            "after construction")

    def check(self, module):
        classes = {cls.name: cls for cls in astutil.iter_class_defs(module.tree)}
        for class_def in classes.values():
            methods = astutil.class_methods(class_def)
            snapshot = methods.get("snapshot_state")
            init = methods.get("__init__")
            if snapshot is None or init is None:
                continue
            restore = methods.get("restore_state")
            assigned = astutil.self_attr_stores(init)
            captured = astutil.self_attr_names(snapshot, restore)
            captured |= astutil.string_constants(snapshot, restore)
            captured |= self._expanded_tuples(class_def, classes, snapshot,
                                              restore)
            exempt = self._exemptions(class_def, classes)
            for attr, line in sorted(assigned.items(), key=lambda kv: kv[1]):
                if attr in captured or attr in exempt:
                    continue
                yield module.finding(
                    self, line,
                    f"{class_def.name}.__init__ assigns self.{attr} but "
                    f"snapshot_state/restore_state never captures it")

    def _expanded_tuples(self, class_def, classes, snapshot, restore):
        """Strings from class-level tuples a checkpoint method references."""
        constants = {}
        for base in self._mro_in_module(class_def, classes):
            for name, strings in astutil.class_string_tuples(base).items():
                constants.setdefault(name, strings)
        referenced = (astutil.self_attr_names(snapshot, restore)
                      | astutil.referenced_names(snapshot, restore))
        expanded = set()
        for name in referenced:
            expanded.update(constants.get(name, ()))
        return expanded

    def _exemptions(self, class_def, classes):
        exempt = set()
        for base in self._mro_in_module(class_def, classes):
            for name, strings in astutil.class_string_tuples(base).items():
                if name == EXEMPT_ATTR:
                    exempt.update(strings)
        return exempt

    def _mro_in_module(self, class_def, classes, _seen=None):
        """*class_def* plus any base classes defined in the same module."""
        seen = _seen if _seen is not None else set()
        if class_def.name in seen:
            return []
        seen.add(class_def.name)
        order = [class_def]
        for base in class_def.bases:
            base_def = classes.get(getattr(base, "id", None))
            if base_def is not None:
                order.extend(self._mro_in_module(base_def, classes, seen))
        return order
