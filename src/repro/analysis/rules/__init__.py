"""Bundled contract checkers; importing this package registers them all.

Each module defines one rule (its id is the module name, uppercased) and
registers it with :func:`repro.analysis.core.register`.  Adding a rule is:
drop a module here, import it below, add a fixture module plus a test in
``tests/test_analysis.py`` (see docs/contracts.md).
"""

from repro.analysis.rules import det01, det02, per01, snap01, snap02

__all__ = ["snap01", "snap02", "det01", "det02", "per01"]
