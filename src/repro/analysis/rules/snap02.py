"""SNAP02: dict-shaped checkpoints must read the keys they write.

A ``snapshot_state`` that returns a dict and a ``restore_state`` that
consumes one must agree on the key set: a key written but never read is
state that silently fails to restore; a key read but never written is a
``KeyError`` waiting for the first world reuse (or a ``.get`` default
quietly masking it).

Keys *written* are string keys of dict literals / ``dict(key=...)``
keywords / ``state["key"] = ...`` subscript stores inside
``snapshot_state``.  Keys *read* are ``state["key"]`` subscript loads and
``.get("key")`` / ``.pop("key")`` calls inside ``restore_state``.  Either
side may also handle keys generically — ``snapshot_attrs`` /
``restore_attrs``, ``**`` spreads, ``.update(...)`` calls or iteration
over ``.items()``/``.keys()``/``.values()`` — in which case only the
opposite direction is checked.  Tuple-shaped checkpoints (no string keys
on either side) are out of scope.
"""

import ast

from repro.analysis import astutil
from repro.analysis.core import register

#: Calls that mean "this method handles arbitrary keys" on the write side.
_WILDCARD_WRITERS = {"snapshot_attrs", "update"}
#: ... and on the read side.
_WILDCARD_READERS = {"restore_attrs", "update", "items", "keys", "values"}


def _written_keys(func_def):
    """(keys -> line) written by *func_def*, plus a wildcard flag."""
    keys, wildcard = {}, False
    for node in ast.walk(func_def):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is None:  # ``{**other}`` spread
                    wildcard = True
                elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                keys.setdefault(index.value, node.lineno)
        elif isinstance(node, ast.Call):
            name = astutil.call_name(node)
            if name in _WILDCARD_WRITERS:
                wildcard = True
            elif name == "dict":
                if node.args:
                    wildcard = True
                for keyword in node.keywords:
                    if keyword.arg is None:
                        wildcard = True
                    else:
                        keys.setdefault(keyword.arg, node.lineno)
    return keys, wildcard


def _read_keys(func_def):
    """(keys -> line) consumed by *func_def*, plus a wildcard flag."""
    keys, wildcard = {}, False
    for node in ast.walk(func_def):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                keys.setdefault(index.value, node.lineno)
        elif isinstance(node, ast.Call):
            name = astutil.call_name(node)
            if name in _WILDCARD_READERS:
                wildcard = True
            if name in ("get", "pop") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    keys.setdefault(first.value, node.lineno)
    return keys, wildcard


@register
class Snap02:
    rule_id = "SNAP02"
    description = ("snapshot_state dict keys must be symmetric with the "
                   "keys restore_state consumes")
    hint = ("write and read the same key set: restore every key the "
            "snapshot captures, and never read a key the snapshot does "
            "not write")

    def check(self, module):
        for class_def in astutil.iter_class_defs(module.tree):
            methods = astutil.class_methods(class_def)
            snapshot = methods.get("snapshot_state")
            restore = methods.get("restore_state")
            if snapshot is None or restore is None:
                continue
            written, any_write = _written_keys(snapshot)
            read, any_read = _read_keys(restore)
            if not written and not read:
                continue  # tuple-shaped checkpoint
            if not any_read:
                for key in sorted(set(written) - set(read)):
                    yield module.finding(
                        self, written[key],
                        f"{class_def.name}.snapshot_state writes key "
                        f"{key!r} but restore_state never reads it")
            if not any_write:
                for key in sorted(set(read) - set(written)):
                    yield module.finding(
                        self, read[key],
                        f"{class_def.name}.restore_state reads key {key!r} "
                        f"but snapshot_state never writes it")
