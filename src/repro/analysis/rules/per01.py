"""PER01: perpetual yield-wait loops must be PeriodicTask instead.

A ``while True: work(); yield sim.timeout(period)`` generator keeps the
event queue non-empty forever, so a world running one can never settle and
be checkpointed, and the loop's position lives in an opaque generator
frame that no snapshot can capture.  PR 3 replaced every such loop with an
engine-owned :class:`~repro.sim.periodic.PeriodicTask`, whose timer state
is plain data: registered tasks, next-fire times and tick counters ride
the engine checkpoint and re-arm identically on restore.

The rule flags any ``while`` loop with a constant-true test whose body
yields (directly, not in a nested function).  Bounded loops
(``for _ in range(n)``) and non-yielding ``while True`` parsers are fine.
"""

import ast

from repro.analysis import astutil
from repro.analysis.core import register


@register
class Per01:
    rule_id = "PER01"
    description = ("perpetual while-True yield loops in sim processes must "
                   "use Simulator.periodic (PeriodicTask)")
    hint = ("replace the loop with sim.periodic(callback, period).start(): "
            "periodic-task timers are engine state, checkpointable and "
            "settle-able; generator loops are neither")

    def check(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            if not astutil.is_truthy_constant(node.test):
                continue
            if any(astutil.contains_yield(stmt) or
                   isinstance(stmt, (ast.Yield, ast.YieldFrom))
                   for stmt in node.body):
                yield module.finding(
                    self, node,
                    "while True loop yields: a perpetual generator keeps "
                    "the world un-settleable and its position cannot be "
                    "checkpointed")
