"""The ``repro analyze`` subcommand: run the contract checkers on a tree.

Exit status is the contract: 0 when the tree is clean, 1 when any finding
survives (CI fails the commit), 2 on usage errors.
"""

import argparse
import json
import sys

from repro.analysis.core import REGISTRY, analyze_paths, load_default_rules


def add_arguments(parser):
    """Attach the analyze arguments to *parser* (shared with repro.cli)."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all registered rules)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="findings output format (default: text)")
    return parser


def run(args):
    """Execute the analyze command for parsed *args*; returns exit status."""
    load_default_rules()
    if args.list_rules:
        for rule_id, checker in sorted(REGISTRY.items()):
            print(f"{rule_id}  {checker.description}")
        return 0
    rules = None
    if args.rules is not None:
        rules = [rule.strip().upper() for rule in args.rules.split(",")
                 if rule.strip()]
    try:
        findings = analyze_paths(args.paths, rules=rules)
    except ValueError as error:
        print(f"analyze error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([finding.as_dict() for finding in findings],
                         indent=2))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        checked = "all rules" if rules is None else ", ".join(rules)
        print(f"repro analyze: {len(findings)} {noun} ({checked})")
    return 1 if findings else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST-based determinism & snapshot contract checkers")
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
