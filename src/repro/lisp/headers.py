"""LISP headers and control messages.

The data-plane encapsulation follows draft-farinacci-lisp-08: the inner
packet is wrapped in ``outer IP | UDP(dport 4341) | 8-byte LISP header``.
Control messages (Map-Request / Map-Reply) are modelled as objects with
accurate wire sizes; the experiments account their bytes but never need to
bit-pack them.
"""

from dataclasses import dataclass
from itertools import count

from repro.net.addresses import IPv4Address
from repro.net.packet import IPv4Header, Packet, PROTO_UDP, UDPHeader

LISP_DATA_PORT = 4341
LISP_CONTROL_PORT = 4342
LISP_HEADER_BYTES = 8

_nonces = count(1)


def next_nonce():
    return next(_nonces)


@dataclass
class LispHeader:
    """The 8-byte LISP data-plane shim header."""

    nonce: int = 0
    instance_id: int = 0
    locator_status_bits: int = 0

    @property
    def size_bytes(self):
        return LISP_HEADER_BYTES

    def __str__(self):
        return f"LISP(nonce={self.nonce})"


@dataclass
class MapRequest:
    """A Map-Request for *eid*, answered toward *itr_rloc*."""

    nonce: int
    eid: IPv4Address
    itr_rloc: IPv4Address
    source_eid: IPv4Address = None

    def __post_init__(self):
        self.eid = IPv4Address(self.eid)
        self.itr_rloc = IPv4Address(self.itr_rloc)
        if self.source_eid is not None:
            self.source_eid = IPv4Address(self.source_eid)

    @property
    def size_bytes(self):
        # draft-08 Map-Request: 24B fixed + ITR-RLOC + EID record.
        return 24 + 8 + 8

    def __str__(self):
        return f"MapRequest(eid={self.eid} nonce={self.nonce})"


@dataclass
class MapReply:
    """A Map-Reply carrying one mapping record."""

    nonce: int
    mapping: object

    @property
    def size_bytes(self):
        return 12 + self.mapping.size_bytes

    def __str__(self):
        return f"MapReply(nonce={self.nonce} {self.mapping})"


def encapsulate(inner, source_rloc, destination_rloc, nonce=None):
    """Wrap *inner* in a LISP data-plane envelope."""
    header = LispHeader(nonce=next_nonce() if nonce is None else nonce)
    return Packet(
        headers=[
            IPv4Header(src=source_rloc, dst=destination_rloc, proto=PROTO_UDP),
            UDPHeader(sport=LISP_DATA_PORT, dport=LISP_DATA_PORT),
            header,
        ],
        payload=inner,
        meta=dict(inner.meta),
    )


def decapsulate(packet):
    """Return (inner_packet, outer_ip_header, lisp_header) of a LISP packet."""
    inner = packet.inner
    if inner is None:
        raise ValueError("not a LISP data packet: no inner packet")
    lisp = packet.find(LispHeader)
    return inner, packet.ip, lisp
