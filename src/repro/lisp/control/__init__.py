"""Baseline LISP mapping systems: ALT, CONS and NERD.

These are the control planes the paper's §1 names and criticises.  Each is
driven by real packets across the simulated WAN, so resolution latency is
an emergent property of topology and overlay layout, and each accounts the
control messages, bytes and per-router state that experiment E5 compares.
"""

from repro.lisp.control.base import ControlStats, MappingRegistry, MappingSystem
from repro.lisp.control.alt import AltMappingSystem
from repro.lisp.control.cons import ConsMappingSystem
from repro.lisp.control.nerd import NerdMappingSystem

__all__ = [
    "AltMappingSystem",
    "ConsMappingSystem",
    "ControlStats",
    "MappingRegistry",
    "MappingSystem",
    "NerdMappingSystem",
]
