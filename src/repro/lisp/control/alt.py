"""LISP+ALT: a BGP-like overlay that routes Map-Requests hop by hop.

Each site's first border router (xtr0) doubles as its ALT router.  ALT
routers form a ring with chord shortcuts; every site's EID prefix is
announced into the overlay, and each ALT router holds a next-hop table
toward every prefix (hop-count shortest paths, like BGP over the GRE mesh
the ALT draft describes).

A Map-Request from an ITR enters the overlay at its own site's ALT router
and is forwarded *as real UDP packets* across the WAN until it reaches the
destination site, whose router answers with a Map-Reply sent natively
(outside the overlay) straight to the requesting ITR's RLOC — exactly ALT's
asymmetric request/reply pattern.  Resolution latency therefore emerges
from overlay stretch, which is what makes ALT the paper's slowest baseline.
"""

from collections import deque

from repro.lisp.control.base import MappingSystem
from repro.lisp.headers import LISP_CONTROL_PORT, MapReply, MapRequest, next_nonce
from repro.net.addresses import IPv4Address


class _AltDataEnvelope:
    """A data packet carried over the ALT overlay (CpDataPolicy)."""

    __slots__ = ("inner", "eid")

    def __init__(self, inner, eid):
        self.inner = inner
        self.eid = IPv4Address(eid)

    @property
    def size_bytes(self):
        return 8 + self.inner.size_bytes


class AltMappingSystem(MappingSystem):
    """The ALT overlay mapping system."""

    name = "alt"
    _state_attrs = ("_pending",)

    def __init__(self, sim, chord_stride=None, hop_processing_delay=0.0005,
                 request_timeout=1.0, retries=1, max_overlay_hops=64):
        super().__init__(sim)
        self.chord_stride = chord_stride
        self.hop_processing_delay = hop_processing_delay
        self.request_timeout = request_timeout
        self.retries = retries
        self.max_overlay_hops = max_overlay_hops
        self.sites = []
        self._pending = {}
        self._alt_nodes = {}      # site index -> alt node (xtr0's Node)
        self._alt_address = {}    # site index -> control address of alt node
        self._rib = {}            # node name -> {prefix: next-hop address}
        self._site_of_node = {}   # node name -> site
        self._xtr_of_node = {}    # node name -> TunnelRouter
        self.overlay_edges = []

    # -- wiring ---------------------------------------------------------- #

    def register_site(self, site, mapping):
        super().register_site(site, mapping)
        self.sites.append(site)

    def attach_xtr(self, xtr):
        super().attach_xtr(xtr)
        self._xtr_of_node[xtr.node.name] = xtr
        xtr.node.bind_udp(LISP_CONTROL_PORT, self._on_control)

    def finalize(self):
        """Build the overlay ring + chords and compute per-prefix next hops."""
        order = sorted(self.sites, key=lambda site: site.index)
        n = len(order)
        if n == 0:
            return
        for site in order:
            self._alt_nodes[site.index] = site.xtrs[0]
            self._alt_address[site.index] = site.xtr_control_address(0)
            self._site_of_node[site.xtrs[0].name] = site
        stride = self.chord_stride
        if stride is None:
            stride = max(2, int(n ** 0.5))
        adjacency = {site.index: set() for site in order}
        for position, site in enumerate(order):
            successor = order[(position + 1) % n]
            if successor.index != site.index:
                adjacency[site.index].add(successor.index)
                adjacency[successor.index].add(site.index)
            if n > 3:
                chord = order[(position + stride) % n]
                if chord.index != site.index:
                    adjacency[site.index].add(chord.index)
                    adjacency[chord.index].add(site.index)
        self.overlay_edges = sorted(
            {tuple(sorted((a, b))) for a, neighbours in adjacency.items()
             for b in neighbours})

        # Hop-count shortest paths from every node toward every origin site.
        for origin in order:
            parents = self._bfs_parents(adjacency, origin.index)
            prefix = origin.eid_prefix
            for site in order:
                node_name = self._alt_nodes[site.index].name
                rib = self._rib.setdefault(node_name, {})
                if site.index == origin.index:
                    continue
                next_index = parents.get(site.index)
                if next_index is not None:
                    rib[prefix] = self._alt_address[next_index]

    @staticmethod
    def _bfs_parents(adjacency, origin):
        """BFS tree rooted at *origin*: {node: its parent}.

        Forwarding from a node toward the origin goes to its parent.
        """
        toward = {}
        visited = {origin}
        frontier = deque([origin])
        while frontier:
            current = frontier.popleft()
            for neighbour in sorted(adjacency[current]):
                if neighbour not in visited:
                    visited.add(neighbour)
                    toward[neighbour] = current
                    frontier.append(neighbour)
        return toward

    # -- resolution ------------------------------------------------------ #

    def resolve(self, xtr, eid):
        def _resolve():
            started = self.sim.now
            for _attempt in range(self.retries + 1):
                nonce = next_nonce()
                waiter = self.sim.event(name=f"alt-nonce-{nonce}")
                self._pending[nonce] = waiter
                request = MapRequest(nonce=nonce, eid=eid, itr_rloc=xtr.rloc)
                self.stats.count("map-request", request.size_bytes)
                entry_address = self._alt_address.get(xtr.site.index)
                if entry_address is None:
                    break
                xtr.node.send_udp(src=xtr.rloc, dst=entry_address,
                                  sport=LISP_CONTROL_PORT, dport=LISP_CONTROL_PORT,
                                  payload=request, meta={"alt_hops": 0})
                deadline = self.sim.timeout(self.request_timeout)
                outcome = yield self.sim.any_of([waiter, deadline])
                if waiter in outcome:
                    mapping = outcome[waiter]
                    self.stats.record_resolution(self.sim.now - started, ok=True)
                    return mapping
                self._pending.pop(nonce, None)
            self.stats.record_resolution(self.sim.now - started, ok=False)
            return None

        return self.sim.process(_resolve(), name=f"alt-resolve-{eid}")

    # -- control-plane packet handling ------------------------------------ #

    def _on_control(self, packet, node):
        payload = packet.payload
        if isinstance(payload, MapRequest):
            self._forward_or_answer(packet, payload, node)
        elif isinstance(payload, MapReply):
            waiter = self._pending.pop(payload.nonce, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(payload.mapping)
        elif isinstance(payload, _AltDataEnvelope):
            self._forward_or_deliver_data(packet, payload, node)

    def _forward_or_answer(self, packet, request, node):
        site = self._site_of_node.get(node.name)
        if site is not None and site.eid_prefix.contains(request.eid):
            mapping = self.registry.lookup(request.eid)
            if mapping is None:
                return
            reply = MapReply(nonce=request.nonce, mapping=mapping)
            self.stats.count("map-reply", reply.size_bytes)

            def answer():
                node.send_udp(src=self._alt_address[site.index], dst=request.itr_rloc,
                              sport=LISP_CONTROL_PORT, dport=LISP_CONTROL_PORT,
                              payload=reply)

            self.sim.call_in(self.hop_processing_delay, answer)
            return
        self._forward_over_overlay(packet, request.eid, node, request,
                                   message_type="map-request-hop")

    def _forward_or_deliver_data(self, packet, envelope, node):
        site = self._site_of_node.get(node.name)
        if site is not None and site.eid_prefix.contains(envelope.eid):
            xtr = self._xtr_of_node.get(node.name)
            if xtr is not None:
                self.sim.call_in(self.hop_processing_delay,
                                 xtr.deliver_into_site, envelope.inner)
            return
        self._forward_over_overlay(packet, envelope.eid, node, envelope,
                                   message_type="cp-data-hop")

    def _forward_over_overlay(self, packet, eid, node, payload, message_type):
        hops = packet.meta.get("alt_hops", 0)
        if hops >= self.max_overlay_hops:
            return
        rib = self._rib.get(node.name, {})
        next_address = None
        best_length = -1
        for prefix, address in rib.items():
            if prefix.contains(eid) and prefix.length > best_length:
                next_address, best_length = address, prefix.length
        if next_address is None:
            return
        self.stats.count(message_type, payload.size_bytes)

        def forward():
            node.send_udp(src=packet.ip.dst, dst=next_address,
                          sport=LISP_CONTROL_PORT, dport=LISP_CONTROL_PORT,
                          payload=payload, meta={"alt_hops": hops + 1})

        self.sim.call_in(self.hop_processing_delay, forward)

    # -- CP data carriage -------------------------------------------------- #

    def carry_data(self, xtr, packet, eid):
        entry_address = self._alt_address.get(xtr.site.index)
        if entry_address is None:
            return False
        envelope = _AltDataEnvelope(packet, eid)
        self.stats.count("cp-data", envelope.size_bytes)
        xtr.node.send_udp(src=xtr.rloc, dst=entry_address, sport=LISP_CONTROL_PORT,
                          dport=LISP_CONTROL_PORT, payload=envelope,
                          meta={"alt_hops": 0})
        return True

    # -- reporting ---------------------------------------------------------- #

    def state_entries_per_router(self):
        return {name: len(rib) for name, rib in self._rib.items()}
