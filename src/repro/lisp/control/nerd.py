"""NERD: Not-so-novel EID-to-RLOC Database — push the whole database.

draft-lear-lisp-nerd distributes the complete, signed mapping database to
every ITR ahead of time.  Resolution never misses (there is nothing to
resolve), which trades the paper's W1/W2 weaknesses for state that grows
with the total number of EID prefixes on every router, plus full-database
churn on updates — the trade-off experiment E5 quantifies.
"""

from dataclasses import dataclass

from repro.lisp.control.base import MappingSystem
from repro.net.addresses import IPv4Address

NERD_PORT = 4346
#: Fixed overhead of a database push message (header + signature).
NERD_HEADER_BYTES = 64
AUTHORITY_ADDRESS = IPv4Address("203.0.113.10")


@dataclass
class _DatabasePush:
    """A full or incremental database transfer."""

    version: int
    mappings: tuple
    full: bool

    @property
    def size_bytes(self):
        return NERD_HEADER_BYTES + sum(m.size_bytes for m in self.mappings)


class NerdMappingSystem(MappingSystem):
    """Central authority pushing the mapping database to every xTR."""

    name = "nerd"
    _state_attrs = ("version", "pushes_sent", "_installed_versions")

    def __init__(self, sim, topology, authority_provider=0):
        super().__init__(sim)
        self.topology = topology
        self.version = 0
        self.pushes_sent = 0
        self.authority = topology.attach_infra_host(
            authority_provider, "nerd-authority", AUTHORITY_ADDRESS)
        topology.install_global_routes()
        self._installed_versions = {}

    def attach_xtr(self, xtr):
        super().attach_xtr(xtr)
        xtr.node.bind_udp(NERD_PORT, self._on_push)

    def finalize(self):
        """Initial full-database push to every attached xTR."""
        self.version += 1
        self._push_to_all(self.registry.all_mappings(), full=True)

    def update_mapping(self, mapping):
        """Authority-side update: register and push the delta everywhere."""
        self.registry.register(mapping)
        self.version += 1
        self._push_to_all([mapping], full=False)

    def _push_to_all(self, mappings, full):
        message = _DatabasePush(version=self.version, mappings=tuple(mappings), full=full)
        for xtr in self.xtrs:
            self.stats.count("db-push-full" if full else "db-push-delta",
                             message.size_bytes)
            self.pushes_sent += 1
            self.authority.send_udp(src=AUTHORITY_ADDRESS,
                                    dst=xtr.site.xtr_control_address(
                                        xtr.site.xtrs.index(xtr.node)),
                                    sport=NERD_PORT, dport=NERD_PORT, payload=message)

    def _on_push(self, packet, node):
        message = packet.payload
        if not isinstance(message, _DatabasePush):
            return
        xtr = node.services.get("xtr-service")
        if xtr is None:
            return
        for mapping in message.mappings:
            if mapping.eid_prefix == xtr.site.eid_prefix:
                continue  # own site: no tunnel needed
            xtr.install_mapping(mapping, origin="nerd-db", ttl=float("inf"))
        self._installed_versions[node.name] = message.version

    def resolve(self, xtr, eid):
        """NERD has no request path: a miss means the database lacks the EID."""

        def _resolve():
            self.stats.record_resolution(0.0, ok=False)
            return None
            yield  # pragma: no cover - makes this a generator

        return self.sim.process(_resolve(), name=f"nerd-resolve-{eid}")

    def state_entries_per_router(self):
        # Every xTR holds the full database (minus its own prefix).
        total = len(self.registry)
        return {xtr.node.name: max(0, total - 1) for xtr in self.xtrs}
