"""Common machinery for mapping systems."""

from collections import defaultdict

from repro.net.addresses import IPv4Address, IPv4Prefix


class ControlStats:
    """Message/byte/state accounting shared by all mapping systems."""

    def __init__(self):
        self.messages = 0
        self.bytes = 0
        self.by_type = defaultdict(int)
        self.resolutions = 0
        self.resolution_failures = 0
        self.resolution_latencies = []

    def count(self, message_type, size_bytes):
        self.messages += 1
        self.bytes += size_bytes
        self.by_type[message_type] += 1

    def record_resolution(self, latency, ok=True):
        self.resolutions += 1
        if ok:
            self.resolution_latencies.append(latency)
        else:
            self.resolution_failures += 1


class MappingRegistry:
    """The authoritative EID-to-RLOC database, keyed by EID prefix."""

    def __init__(self):
        self._by_prefix = {}

    def register(self, mapping):
        self._by_prefix[mapping.eid_prefix] = mapping
        return mapping

    def lookup(self, eid):
        """Most specific registered mapping covering *eid* (linear scan is
        fine at registry sizes used here)."""
        eid = IPv4Address(eid)
        best = None
        for prefix, mapping in self._by_prefix.items():
            if prefix.contains(eid):
                if best is None or prefix.length > best.eid_prefix.length:
                    best = mapping
        return best

    def lookup_prefix(self, prefix):
        return self._by_prefix.get(IPv4Prefix(prefix))

    def all_mappings(self):
        return list(self._by_prefix.values())

    def __len__(self):
        return len(self._by_prefix)


class MappingSystem:
    """Interface all mapping systems implement."""

    name = "base"

    def __init__(self, sim):
        self.sim = sim
        self.stats = ControlStats()
        self.registry = MappingRegistry()
        self.xtrs = []

    def register_site(self, site, mapping):
        """Publish *site*'s authoritative mapping."""
        self.registry.register(mapping)

    def attach_xtr(self, xtr):
        """Called by each TunnelRouter binding itself to this system."""
        self.xtrs.append(xtr)

    def resolve(self, xtr, eid):
        """Process returning the mapping for *eid* (or None).  Subclasses
        must override."""
        raise NotImplementedError

    def carry_data(self, xtr, packet, eid):
        """Ship a data packet over the control plane (CpDataPolicy).

        Returns True if the system accepted the packet.  Default: refuse.
        """
        return False

    def state_entries_per_router(self):
        """{node_name: number of control-plane state entries} for E5."""
        return {}

    def finalize(self):
        """Hook run after all sites are registered (overlay builds, pushes)."""
