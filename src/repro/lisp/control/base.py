"""Common machinery for mapping systems."""

from collections import defaultdict

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.fib import Fib, FibEntry
from repro.sim.state import state_copy


class ControlStats:
    """Message/byte/state accounting shared by all mapping systems."""

    def __init__(self):
        self.messages = 0
        self.bytes = 0
        self.by_type = defaultdict(int)
        self.resolutions = 0
        self.resolution_failures = 0
        self.resolution_latencies = []

    def count(self, message_type, size_bytes):
        self.messages += 1
        self.bytes += size_bytes
        self.by_type[message_type] += 1

    def record_resolution(self, latency, ok=True):
        self.resolutions += 1
        if ok:
            self.resolution_latencies.append(latency)
        else:
            self.resolution_failures += 1

    def snapshot_state(self):
        return (self.messages, self.bytes, state_copy(self.by_type),
                self.resolutions, self.resolution_failures,
                list(self.resolution_latencies))

    def restore_state(self, state):
        (self.messages, self.bytes, by_type, self.resolutions,
         self.resolution_failures, latencies) = state
        self.by_type = state_copy(by_type)
        self.resolution_latencies = list(latencies)


class MappingRegistry:
    """The authoritative EID-to-RLOC database, keyed by EID prefix.

    Longest-prefix lookup is served by a radix trie, so a per-cache-miss
    query stays O(prefix length) even with hundreds of registered sites
    (the sweep engine's large-scale presets).
    """

    def __init__(self):
        self._by_prefix = {}
        self._fib = Fib()

    def register(self, mapping):
        self._by_prefix[mapping.eid_prefix] = mapping
        self._fib.insert(FibEntry(mapping.eid_prefix, mapping))
        return mapping

    def lookup(self, eid):
        """Most specific registered mapping covering *eid* (or None)."""
        entry = self._fib.lookup(IPv4Address(eid), default=None)
        return entry.interface if entry is not None else None

    def covering_prefix(self, eid):
        """The registered EID prefix covering *eid* (None if unregistered)."""
        mapping = self.lookup(eid)
        return mapping.eid_prefix if mapping is not None else None

    def lookup_prefix(self, prefix):
        return self._by_prefix.get(IPv4Prefix(prefix))

    def all_mappings(self):
        return list(self._by_prefix.values())

    def __len__(self):
        return len(self._by_prefix)

    def snapshot_state(self):
        return (dict(self._by_prefix), self._fib.snapshot_state())

    def restore_state(self, state):
        by_prefix, fib_state = state
        self._by_prefix = dict(by_prefix)
        self._fib.restore_state(fib_state)


class MappingSystem:
    """Interface all mapping systems implement."""

    name = "base"

    def __init__(self, sim):
        self.sim = sim
        self.stats = ControlStats()
        self.registry = MappingRegistry()
        self.xtrs = []

    def register_site(self, site, mapping):
        """Publish *site*'s authoritative mapping."""
        self.registry.register(mapping)

    def attach_xtr(self, xtr):
        """Called by each TunnelRouter binding itself to this system."""
        self.xtrs.append(xtr)

    def covering_prefix(self, eid):
        """The authoritative EID prefix covering *eid* (None if unknown).

        ITRs use this to key in-flight-resolution dedup at true site
        granularity rather than a hardcoded /24 guess.
        """
        return self.registry.covering_prefix(eid)

    def resolve(self, xtr, eid):
        """Process returning the mapping for *eid* (or None).  Subclasses
        must override."""
        raise NotImplementedError

    def carry_data(self, xtr, packet, eid):
        """Ship a data packet over the control plane (CpDataPolicy).

        Returns True if the system accepted the packet.  Default: refuse.
        """
        return False

    def state_entries_per_router(self):
        """{node_name: number of control-plane state entries} for E5."""
        return {}

    def finalize(self):
        """Hook run after all sites are registered (overlay builds, pushes)."""

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: Extra mutable attributes subclasses want captured (shallow-copied
    #: containers; see repro.sim.state.state_copy).
    _state_attrs = ()

    #: Deploy-time wiring: the sim checkpoints itself, and ``xtrs`` only
    #: accumulates during topology construction, never during a run.
    _SNAPSHOT_EXEMPT = ("sim", "xtrs")

    def snapshot_state(self):
        return {
            "stats": self.stats.snapshot_state(),
            "registry": self.registry.snapshot_state(),
            "extra": {name: state_copy(getattr(self, name))
                      for name in self._state_attrs},
        }

    def restore_state(self, state):
        self.stats.restore_state(state["stats"])
        self.registry.restore_state(state["registry"])
        for name, value in state["extra"].items():
            setattr(self, name, state_copy(value))
