"""CONS: a hierarchical content-distribution-like mapping overlay.

Content distribution Overlay Network Service for LISP (draft-meyer-lisp-cons)
organises the mapping space as a tree: CARs (Content Access Routers) sit at
the edge — here, each site's first border router — and CDRs (Content
Distribution Routers) form the interior.  A Map-Request climbs the tree
until an ancestor covers the target EID, descends to the authoritative CAR,
and — unlike ALT — the *reply retraces the overlay path* back to the
requester (CONS keeps both directions inside the secured overlay).

CDRs are real hosts attached to provider routers, so every tree hop crosses
the simulated WAN.
"""

from dataclasses import dataclass, field

from repro.lisp.control.base import MappingSystem
from repro.lisp.headers import LISP_CONTROL_PORT, MapReply, MapRequest, next_nonce
from repro.net.addresses import IPv4Address


@dataclass
class _ConsEnvelope:
    """A Map-Request or Map-Reply travelling the CONS tree."""

    kind: str                  # "request" | "reply"
    request: MapRequest
    path: list = field(default_factory=list)  # addresses ascended so far
    mapping: object = None

    @property
    def size_bytes(self):
        base = self.request.size_bytes + 4 + 8 * len(self.path)
        if self.mapping is not None:
            base += self.mapping.size_bytes
        return base


class _TreeNode:
    __slots__ = ("name", "address", "node", "parent", "children", "site")

    def __init__(self, name, address, node, site=None):
        self.name = name
        self.address = address
        self.node = node
        self.parent = None
        self.children = []
        self.site = site


class ConsMappingSystem(MappingSystem):
    """The CONS tree mapping system."""

    name = "cons"
    _state_attrs = ("_pending",)

    def __init__(self, sim, topology, branching=4, hop_processing_delay=0.0005,
                 request_timeout=2.0, retries=1):
        super().__init__(sim)
        self.topology = topology
        self.branching = max(2, branching)
        self.hop_processing_delay = hop_processing_delay
        self.request_timeout = request_timeout
        self.retries = retries
        self.sites = []
        self._pending = {}
        self._tree_by_address = {}
        self._car_of_site = {}
        self._xtr_of_node = {}
        self._cdr_count = 0
        self.tree_depth = 0

    def register_site(self, site, mapping):
        super().register_site(site, mapping)
        self.sites.append(site)

    def attach_xtr(self, xtr):
        super().attach_xtr(xtr)
        self._xtr_of_node[xtr.node.name] = xtr
        xtr.node.bind_udp(LISP_CONTROL_PORT, self._on_control)

    # -- tree construction -------------------------------------------------- #

    def finalize(self):
        order = sorted(self.sites, key=lambda site: site.index)
        if not order:
            return
        level = []
        for site in order:
            car = _TreeNode(name=f"car-{site.name}", address=site.xtr_control_address(0),
                            node=site.xtrs[0], site=site)
            self._car_of_site[site.index] = car
            self._tree_by_address[car.address] = car
            level.append(car)
        depth = 0
        num_providers = len(self.topology.providers)
        while len(level) > 1:
            depth += 1
            next_level = []
            for start in range(0, len(level), self.branching):
                group = level[start:start + self.branching]
                address = IPv4Address(f"203.0.{113 + depth}.{10 + len(next_level)}")
                host = self.topology.attach_infra_host(
                    self._cdr_count % num_providers, f"cdr-d{depth}-{len(next_level)}",
                    address)
                self._cdr_count += 1
                host.bind_udp(LISP_CONTROL_PORT, self._on_control)
                cdr = _TreeNode(name=host.name, address=address, node=host)
                for child in group:
                    child.parent = cdr
                    cdr.children.append(child)
                self._tree_by_address[address] = cdr
                next_level.append(cdr)
            level = next_level
        self.tree_depth = depth
        self.topology.install_global_routes()

    def _covers(self, tree_node, eid):
        """True if *eid* belongs to a site in this subtree."""
        if tree_node.site is not None:
            return tree_node.site.eid_prefix.contains(eid)
        return any(self._covers(child, eid) for child in tree_node.children)

    def _child_covering(self, tree_node, eid):
        for child in tree_node.children:
            if self._covers(child, eid):
                return child
        return None

    # -- resolution ----------------------------------------------------------- #

    def resolve(self, xtr, eid):
        def _resolve():
            started = self.sim.now
            car = self._car_of_site.get(xtr.site.index)
            if car is None:
                self.stats.record_resolution(0.0, ok=False)
                return None
            for _attempt in range(self.retries + 1):
                nonce = next_nonce()
                waiter = self.sim.event(name=f"cons-nonce-{nonce}")
                self._pending[nonce] = waiter
                request = MapRequest(nonce=nonce, eid=eid, itr_rloc=xtr.rloc)
                envelope = _ConsEnvelope(kind="request", request=request,
                                         path=[xtr.rloc])
                self.stats.count("map-request", envelope.size_bytes)
                xtr.node.send_udp(src=xtr.rloc, dst=car.address,
                                  sport=LISP_CONTROL_PORT, dport=LISP_CONTROL_PORT,
                                  payload=envelope)
                deadline = self.sim.timeout(self.request_timeout)
                outcome = yield self.sim.any_of([waiter, deadline])
                if waiter in outcome:
                    self.stats.record_resolution(self.sim.now - started, ok=True)
                    return outcome[waiter]
                self._pending.pop(nonce, None)
            self.stats.record_resolution(self.sim.now - started, ok=False)
            return None

        return self.sim.process(_resolve(), name=f"cons-resolve-{eid}")

    # -- overlay message handling ----------------------------------------------- #

    def _on_control(self, packet, node):
        payload = packet.payload
        if isinstance(payload, _ConsEnvelope):
            if payload.kind == "request":
                self._handle_request(packet, payload, node)
            else:
                self._handle_reply(packet, payload, node)
        elif isinstance(payload, MapReply):
            waiter = self._pending.pop(payload.nonce, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(payload.mapping)

    def _handle_request(self, packet, envelope, node):
        me = self._tree_by_address.get(packet.ip.dst)
        if me is None:
            return
        eid = envelope.request.eid
        if me.site is not None and me.site.eid_prefix.contains(eid):
            # Authoritative CAR: answer back along the recorded path.
            mapping = self.registry.lookup(eid)
            if mapping is None:
                return
            reply = _ConsEnvelope(kind="reply", request=envelope.request,
                                  path=list(envelope.path), mapping=mapping)
            self._send_back(node, me.address, reply)
            return
        if self._covers(me, eid):
            target = self._child_covering(me, eid)
        else:
            target = me.parent
        if target is None:
            return
        forward = _ConsEnvelope(kind="request", request=envelope.request,
                                path=[*envelope.path, me.address])
        self.stats.count("map-request-hop", forward.size_bytes)
        self.sim.call_in(self.hop_processing_delay, node.send_udp,
                         me.address, target.address, LISP_CONTROL_PORT,
                         LISP_CONTROL_PORT, forward)

    def _handle_reply(self, packet, envelope, node):
        me = self._tree_by_address.get(packet.ip.dst)
        if me is None:
            return
        self._send_back(node, me.address, envelope)

    def _send_back(self, node, own_address, envelope):
        """Send the reply envelope one step back along its recorded path."""
        if not envelope.path:
            return
        next_address = envelope.path[-1]
        remaining = _ConsEnvelope(kind="reply", request=envelope.request,
                                  path=envelope.path[:-1], mapping=envelope.mapping)
        if not remaining.path:
            # Final hop: deliver a plain MapReply to the waiting ITR.
            reply = MapReply(nonce=envelope.request.nonce, mapping=envelope.mapping)
            self.stats.count("map-reply", reply.size_bytes)
            self.sim.call_in(self.hop_processing_delay, node.send_udp,
                             own_address, next_address, LISP_CONTROL_PORT,
                             LISP_CONTROL_PORT, reply)
            return
        self.stats.count("map-reply-hop", remaining.size_bytes)
        self.sim.call_in(self.hop_processing_delay, node.send_udp,
                         own_address, next_address, LISP_CONTROL_PORT,
                         LISP_CONTROL_PORT, remaining)

    # -- reporting ----------------------------------------------------------- #

    def state_entries_per_router(self):
        entries = {}
        for tree_node in self._tree_by_address.values():
            if tree_node.site is not None:
                entries[tree_node.node.name] = 1 + (1 if tree_node.parent else 0)
            else:
                entries[tree_node.node.name] = len(tree_node.children) + \
                    (1 if tree_node.parent else 0)
        return entries
