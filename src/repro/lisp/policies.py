"""ITR cache-miss policies: what happens to packets while a mapping resolves.

These are the behaviours the paper's §1 criticises:

- :class:`DropPolicy` — the draft's default: initial packets are lost.
- :class:`QueuePolicy` — a "debatable feature added to border routers":
  buffer packets until the mapping arrives (bounded buffer).
- :class:`CpDataPolicy` — "the undesirable effect of using the control
  plane to transport data": ship the packet along the mapping-resolution
  path, with its extra latency, so it is not lost but loads the CP.

Each policy records per-packet fates so experiment E1 can report drops,
queue delays and CP-carried bytes.
"""


class MissPolicyStats:
    __slots__ = ("dropped", "queued", "flushed", "queue_overflow", "cp_carried",
                 "cp_bytes", "queue_delays")

    def __init__(self):
        self.dropped = 0
        self.queued = 0
        self.flushed = 0
        self.queue_overflow = 0
        self.cp_carried = 0
        self.cp_bytes = 0
        self.queue_delays = []

    def snapshot_state(self):
        return (self.dropped, self.queued, self.flushed, self.queue_overflow,
                self.cp_carried, self.cp_bytes, list(self.queue_delays))

    def restore_state(self, state):
        (self.dropped, self.queued, self.flushed, self.queue_overflow,
         self.cp_carried, self.cp_bytes, delays) = state
        self.queue_delays = list(delays)


class DropPolicy:
    """Drop packets that miss the cache (draft default)."""

    name = "drop"

    #: The owning sim checkpoints itself.
    _SNAPSHOT_EXEMPT = ("sim",)

    def __init__(self, sim):
        self.sim = sim
        self.stats = MissPolicyStats()

    def on_miss(self, xtr, packet, eid):
        self.stats.dropped += 1
        mark_fate(packet, "dropped-at-itr")
        self.sim.trace.record(self.sim.now, xtr.node.name, "itr.miss-drop",
                              eid=str(eid), uid=packet.uid)

    def on_resolved(self, xtr, eid, mapping):
        """Nothing buffered, nothing to do."""

    def snapshot_state(self):
        return self.stats.snapshot_state()

    def restore_state(self, state):
        self.stats.restore_state(state)


class QueuePolicy:
    """Buffer packets per-EID until the mapping resolves (bounded)."""

    name = "queue"

    #: The owning sim checkpoints itself; the queue bound is config.
    _SNAPSHOT_EXEMPT = ("sim", "max_queue")

    def __init__(self, sim, max_queue=8):
        self.sim = sim
        self.max_queue = max_queue
        self.stats = MissPolicyStats()
        self._buffers = {}

    def on_miss(self, xtr, packet, eid):
        buffer = self._buffers.setdefault((xtr.node.name, int(eid)), [])
        if len(buffer) >= self.max_queue:
            self.stats.queue_overflow += 1
            self.stats.dropped += 1
            mark_fate(packet, "dropped-queue-overflow")
            return
        buffer.append((self.sim.now, packet))
        self.stats.queued += 1
        mark_fate(packet, "queued-at-itr")

    def on_resolved(self, xtr, eid, mapping):
        # Flush every buffered EID the new mapping covers (a resolution for
        # one EID serves its whole prefix; pushed mappings pass eid=None).
        matching = [key for key in self._buffers
                    if key[0] == xtr.node.name and mapping.eid_prefix.contains(key[1])]
        for key in matching:
            for queued_at, packet in self._buffers.pop(key):
                self.stats.flushed += 1
                self.stats.queue_delays.append(self.sim.now - queued_at)
                mark_fate(packet, "flushed-after-queue")
                xtr.encapsulate_and_send(packet, mapping)

    def snapshot_state(self):
        return self.stats.snapshot_state()

    def restore_state(self, state):
        self.stats.restore_state(state)
        self._buffers.clear()


class CpDataPolicy:
    """Carry missing-mapping packets over the control plane.

    The packet is handed to the mapping system's data-forwarding path,
    which delivers it to the destination site with the control plane's
    latency (and is accounted as control-plane load).
    """

    name = "cp-data"

    #: The owning sim checkpoints itself.
    _SNAPSHOT_EXEMPT = ("sim",)

    def __init__(self, sim):
        self.sim = sim
        self.stats = MissPolicyStats()

    def on_miss(self, xtr, packet, eid):
        carried = xtr.mapping_system is not None and \
            xtr.mapping_system.carry_data(xtr, packet, eid)
        if carried:
            self.stats.cp_carried += 1
            self.stats.cp_bytes += packet.size_bytes
            mark_fate(packet, "carried-over-cp")
        else:
            self.stats.dropped += 1
            mark_fate(packet, "dropped-at-itr")

    def on_resolved(self, xtr, eid, mapping):
        """Packets already forwarded over the CP; nothing buffered."""

    def snapshot_state(self):
        return self.stats.snapshot_state()

    def restore_state(self, state):
        self.stats.restore_state(state)


def mark_fate(packet, fate):
    """Annotate the packet's fate for workload-level accounting."""
    packet.meta.setdefault("fates", []).append(fate)
    sink = packet.meta.get("fate_sink")
    if sink is not None:
        sink(packet, fate)
