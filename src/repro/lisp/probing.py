"""RLOC reachability probing (draft-08 locator reachability).

An ITR cannot tell from its map-cache whether a locator is still usable:
the destination site's access link may have failed.  The prober sends
periodic echo probes to every remote locator present in the map-cache and
tracks replies.  After ``fail_threshold`` consecutive losses a locator is
declared down — the ITR's :attr:`~repro.lisp.xtr.TunnelRouter.rloc_liveness`
predicate then steers traffic to a backup locator in the mapping.  Probing
continues while a locator is down, so recovery is detected automatically.

This implements the substrate for the paper's future-work claim that the
PCE control plane can perform "upstream/downstream TE through the dynamic
management of the mappings": experiment E9 measures the blackhole window
with and without it.
"""

from dataclasses import dataclass

from repro.net.addresses import IPv4Address

#: Dedicated UDP port for RLOC echo probes (4342 belongs to Map-Request).
PROBE_PORT = 4347


@dataclass
class RlocProbe:
    """An echo probe or its reply."""

    nonce: int
    is_reply: bool = False

    @property
    def size_bytes(self):
        return 16


class RlocProber:
    """Probes every remote locator cached by one tunnel router."""

    def __init__(self, sim, xtr, period=0.5, timeout=0.3, fail_threshold=2):
        if timeout >= period:
            # Overlapping rounds would make a full drain (sim.run() with no
            # until) self-sustaining: each tick's probe deadlines are
            # foreground work outliving the period, so the next tick always
            # finds work pending and fires, forever.
            raise ValueError(
                f"probe timeout ({timeout}) must be shorter than the probe "
                f"period ({period}): rounds must not overlap")
        self.sim = sim
        self.xtr = xtr
        self.period = period
        self.timeout = timeout
        self.fail_threshold = fail_threshold
        self.down = set()
        self.probes_sent = 0
        self.replies_received = 0
        self.transitions = []           # (time, rloc, "down"|"up")
        self.on_down = []
        self.on_up = []
        self._consecutive_misses = {}
        self._pending = {}
        self._nonce = 0
        self._task = sim.periodic(self._tick, period,
                                  name=f"prober-{xtr.node.name}")
        xtr.node.bind_udp(PROBE_PORT, self._on_probe)
        xtr.rloc_liveness = self.is_up

    def is_up(self, address):
        return IPv4Address(address) not in self.down

    def targets(self):
        """Distinct remote locators currently in the map-cache."""
        addresses = set()
        for _prefix, mapping in self.xtr.map_cache.entries():
            for entry in mapping.rlocs:
                addresses.add(entry.address)
        # Keep probing locators already marked down (to detect recovery).
        addresses.update(self.down)
        return sorted(addresses)

    def start(self):
        """Arm the periodic probe tick (idempotent).

        The first tick fires one full period from now, not immediately: at
        deploy time the map-cache is empty, so a tick at t=0 would burn a
        probe round on nothing.  Targets are re-read from the map-cache at
        every tick, so mappings installed any time before a tick fires are
        probed by it.
        """
        self._task.start()

    def _tick(self):
        for address in self.targets():
            self.sim.process(self._probe_once(address))

    def _probe_once(self, address):
        self._nonce += 1
        nonce = self._nonce
        waiter = self.sim.event(name=f"probe-{nonce}")
        self._pending[nonce] = waiter
        probe = RlocProbe(nonce=nonce)
        self.probes_sent += 1
        self.xtr.node.send_udp(src=self.xtr.rloc, dst=address,
                               sport=PROBE_PORT, dport=PROBE_PORT, payload=probe)
        deadline = self.sim.timeout(self.timeout)
        outcome = yield self.sim.any_of([waiter, deadline])
        if waiter in outcome:
            self._mark_alive(address)
        else:
            self._pending.pop(nonce, None)
            self._mark_missed(address)

    def _mark_alive(self, address):
        address = IPv4Address(address)
        self._consecutive_misses[address] = 0
        if address in self.down:
            self.down.discard(address)
            self.transitions.append((self.sim.now, address, "up"))
            self.sim.trace.record(self.sim.now, self.xtr.node.name, "probe.rloc-up",
                                  rloc=str(address))
            for callback in self.on_up:
                callback(address)

    def _mark_missed(self, address):
        address = IPv4Address(address)
        misses = self._consecutive_misses.get(address, 0) + 1
        self._consecutive_misses[address] = misses
        if misses >= self.fail_threshold and address not in self.down:
            self.down.add(address)
            self.transitions.append((self.sim.now, address, "down"))
            self.sim.trace.record(self.sim.now, self.xtr.node.name, "probe.rloc-down",
                                  rloc=str(address))
            for callback in self.on_down:
                callback(address)

    def _on_probe(self, packet, node):
        message = packet.payload
        if not isinstance(message, RlocProbe):
            return
        if message.is_reply:
            waiter = self._pending.pop(message.nonce, None)
            if waiter is not None and not waiter.triggered:
                self.replies_received += 1
                waiter.succeed(packet.ip.src)
            return
        reply = RlocProbe(nonce=message.nonce, is_reply=True)
        node.send_udp(src=packet.ip.dst, dst=packet.ip.src, sport=PROBE_PORT,
                      dport=PROBE_PORT, payload=reply)

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: Construction-time wiring and config, immutable after __init__: the
    #: owning sim/xtr, probe timing knobs, and the periodic tick handle
    #: (its armed/next-fire state is engine state, captured by the
    #: simulator's own checkpoint).
    _SNAPSHOT_EXEMPT = ("sim", "xtr", "period", "timeout", "fail_threshold",
                        "_task")

    def snapshot_state(self):
        """Liveness verdicts, miss counters, nonce and transition listeners.

        The periodic tick itself (armed / next-fire time) is engine state,
        captured by the simulator's own checkpoint.  In-flight probes hold
        live waiter events that cannot be replayed; the worldbuild layer
        settles the simulation first, which resolves every pending probe.
        """
        if self._pending:
            raise RuntimeError(
                f"cannot checkpoint prober {self.xtr.node.name} with "
                f"{len(self._pending)} in-flight probes")
        return (frozenset(self.down), dict(self._consecutive_misses),
                self._nonce, self.probes_sent, self.replies_received,
                tuple(self.transitions), list(self.on_down), list(self.on_up))

    def restore_state(self, state):
        (down, misses, nonce, sent, received, transitions,
         on_down, on_up) = state
        self.down = set(down)
        self._consecutive_misses = dict(misses)
        self._nonce = nonce
        self.probes_sent = sent
        self.replies_received = received
        self.transitions = list(transitions)
        self.on_down = list(on_down)
        self.on_up = list(on_up)
        self._pending = {}
