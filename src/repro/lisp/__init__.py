"""LISP data plane and baseline control planes.

Implements the draft-farinacci-lisp-08 machinery the paper builds on:

- mapping records binding an EID prefix to a set of locators with
  priority/weight (:mod:`repro.lisp.mappings`);
- the ITR map-cache with TTL aging and longest-prefix match
  (:mod:`repro.lisp.map_cache`);
- tunnel routers performing encapsulation/decapsulation
  (:mod:`repro.lisp.xtr`) with pluggable cache-miss policies
  (:mod:`repro.lisp.policies`);
- the baseline mapping systems the paper compares against — ALT, CONS and
  NERD (:mod:`repro.lisp.control`).
"""

from repro.net.addresses import IPv4Prefix

#: All EID space used by the reproduction's sites (see repro.net.topology).
EID_SPACE = IPv4Prefix("100.0.0.0/8")

#: LISP data-plane UDP port (draft-08).
LISP_DATA_PORT = 4341
#: LISP control-plane UDP port (draft-08).
LISP_CONTROL_PORT = 4342

from repro.lisp.mappings import MappingRecord, RlocEntry, site_mapping
from repro.lisp.map_cache import MapCache
from repro.lisp.policies import CpDataPolicy, DropPolicy, QueuePolicy
from repro.lisp.xtr import TunnelRouter

__all__ = [
    "CpDataPolicy",
    "DropPolicy",
    "EID_SPACE",
    "LISP_CONTROL_PORT",
    "LISP_DATA_PORT",
    "MapCache",
    "MappingRecord",
    "QueuePolicy",
    "RlocEntry",
    "TunnelRouter",
    "site_mapping",
]
