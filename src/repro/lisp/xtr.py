"""The tunnel router (xTR): ITR and ETR roles on a border router.

ITR role — a forward tap on the border node intercepts packets whose
destination is a *remote* EID, looks the EID up in the map-cache, and either
encapsulates (hit) or invokes the miss policy and triggers resolution
through the attached mapping system (miss).

ETR role — datagrams on UDP 4341 are decapsulated and the inner packet is
forwarded into the site.  Optional *gleaning* learns the reverse mapping
(inner source EID -> outer source RLOC) from arriving packets, which is how
plain LISP avoids a two-way resolution (paper §1, weakness W3).
``decap_listeners`` fire on every decapsulation with a ``first_packet``
flag — the PCE control plane's Step "first data packet reaches the ETR"
hooks in there.
"""

from repro.lisp.headers import decapsulate, encapsulate
from repro.lisp.map_cache import MapCache
from repro.lisp.policies import mark_fate
from repro.net.addresses import IPv4Prefix

from repro.lisp import EID_SPACE, LISP_DATA_PORT

#: TTL for gleaned reverse mappings (short; refreshed by traffic).
GLEANING_TTL = 60.0


class TunnelRouter:
    """xTR service bound to a border-router node."""

    def __init__(self, sim, node, site, miss_policy, mapping_system=None,
                 gleaning=True, cache_ttl_override=None):
        self.sim = sim
        self.node = node
        self.site = site
        self.miss_policy = miss_policy
        self.mapping_system = mapping_system
        self.gleaning = gleaning
        self.rloc = node.services["rloc"]
        #: Optional predicate (address -> bool) from an RLOC prober; dead
        #: locators are skipped at encapsulation time (failover).
        self.rloc_liveness = None
        self.map_cache = MapCache(sim, name=f"{node.name}-map-cache",
                                  ttl_override=cache_ttl_override)
        self.decap_listeners = []
        self.encapsulated = 0
        self.decapsulated = 0
        self.no_rloc_drops = 0
        self.misdelivered = 0
        self.resolutions_started = 0
        self.resolutions_failed = 0
        self._pending = {}
        self._seen_inner_sources = set()
        node.add_forward_tap(self._itr_tap)
        node.bind_udp(LISP_DATA_PORT, self._on_lisp_data)
        node.register_service("xtr-service", self)
        if mapping_system is not None:
            mapping_system.attach_xtr(self)

    def __str__(self):
        return f"xTR({self.node.name} rloc={self.rloc})"

    # ------------------------------------------------------------------ #
    # ITR role
    # ------------------------------------------------------------------ #

    def _itr_tap(self, packet, _node):
        destination = packet.ip.dst
        if not EID_SPACE.contains(destination):
            return False
        if self.site.eid_prefix.contains(destination):
            return False  # inbound to our own EIDs: normal intra-site forwarding
        self.handle_outbound(packet, destination)
        return True

    def handle_outbound(self, packet, eid):
        """Encapsulate toward *eid*, or apply the miss policy."""
        mapping = self.map_cache.lookup(eid)
        if mapping is not None:
            self.encapsulate_and_send(packet, mapping)
            return
        self.sim.trace.record(self.sim.now, self.node.name, "itr.cache-miss",
                              eid=str(eid), uid=packet.uid)
        self.miss_policy.on_miss(self, packet, eid)
        self._maybe_resolve(eid)

    def encapsulate_and_send(self, packet, mapping):
        rloc_entry = mapping.best_rloc(liveness=self.rloc_liveness)
        if rloc_entry is None:
            self.no_rloc_drops += 1
            mark_fate(packet, "dropped-no-rloc")
            return
        source = mapping.source_rloc if mapping.source_rloc is not None else self.rloc
        outer = encapsulate(packet, source, rloc_entry.address)
        self.encapsulated += 1
        mark_fate(packet, "encapsulated")
        self.sim.trace.record(self.sim.now, self.node.name, "itr.encap",
                              eid=str(packet.ip.dst), rloc=str(rloc_entry.address),
                              src_rloc=str(source), uid=packet.uid)
        self.node.send(outer)

    def _resolution_key(self, eid):
        """Dedup key for an in-flight resolution: the covering site prefix.

        Asking the mapping system for the authoritative prefix keeps one
        resolution in flight per *site*, whatever its prefix length — a
        hardcoded /24 would duplicate Map-Requests for coarser sites and
        wrongly suppress them for finer ones.  Unregistered EIDs fall back
        to per-EID (/32) granularity so a doomed resolution for one address
        never masks a resolvable neighbour.
        """
        prefix = self.mapping_system.covering_prefix(eid)
        if prefix is not None:
            return prefix
        return IPv4Prefix(int(eid), 32)

    def _maybe_resolve(self, eid):
        if self.mapping_system is None:
            return
        key = self._resolution_key(eid)
        if key in self._pending:
            return
        self._pending[key] = True
        self.resolutions_started += 1

        def run():
            mapping = yield self.mapping_system.resolve(self, eid)
            self._pending.pop(key, None)
            if mapping is None:
                self.resolutions_failed += 1
                return
            self.map_cache.install(mapping, origin="resolved")
            self.sim.trace.record(self.sim.now, self.node.name, "itr.mapping-resolved",
                                  eid=str(eid), prefix=str(mapping.eid_prefix))
            self.miss_policy.on_resolved(self, eid, mapping)

        self.sim.process(run(), name=f"{self.node.name}-resolve-{eid}")

    def install_mapping(self, mapping, origin="pushed", ttl=None):
        """Install a mapping delivered by push (PCE Step 7b, NERD database)."""
        self.map_cache.install(mapping, origin=origin, ttl=ttl)
        self.sim.trace.record(self.sim.now, self.node.name, "itr.mapping-installed",
                              prefix=str(mapping.eid_prefix), origin=origin)
        self.miss_policy.on_resolved(self, None, mapping)

    # ------------------------------------------------------------------ #
    # ETR role
    # ------------------------------------------------------------------ #

    def _on_lisp_data(self, packet, _node):
        try:
            inner, outer_ip, _lisp = decapsulate(packet)
        except ValueError:
            return
        self.decapsulated += 1
        destination = inner.ip.dst
        if not self.site.eid_prefix.contains(destination):
            self.misdelivered += 1
            self.sim.trace.record(self.sim.now, self.node.name, "etr.misdelivered",
                                  dst=str(destination), uid=packet.uid)
            return
        inner_source = inner.ip.src
        first_packet = False
        if EID_SPACE.contains(inner_source):
            flow_key = (int(inner_source), int(destination))
            if flow_key not in self._seen_inner_sources:
                self._seen_inner_sources.add(flow_key)
                first_packet = True
        if self.gleaning and EID_SPACE.contains(inner_source) \
                and self.map_cache.peek(inner_source) is None:
            gleaned = _gleaned_mapping(inner_source, outer_ip.src)
            self.map_cache.install(gleaned, origin="gleaned", ttl=GLEANING_TTL)
            self.sim.trace.record(self.sim.now, self.node.name, "etr.gleaned",
                                  eid=str(inner_source), rloc=str(outer_ip.src))
        mark_fate(inner, "decapsulated")
        self.sim.trace.record(self.sim.now, self.node.name, "etr.decap",
                              dst=str(destination), uid=packet.uid)
        for listener in self.decap_listeners:
            listener(self, inner, outer_ip, first_packet)
        self.node.send(inner)

    def deliver_into_site(self, inner):
        """Deliver a raw inner packet into the site (CP-carried data path)."""
        mark_fate(inner, "delivered-via-cp")
        self.node.send(inner)

    # ------------------------------------------------------------------ #
    # World-reuse checkpointing
    # ------------------------------------------------------------------ #

    #: Deploy-time wiring, immutable after __init__; the miss policy and
    #: mapping system are independently checkpointed components.
    _SNAPSHOT_EXEMPT = ("sim", "node", "site", "miss_policy",
                        "mapping_system", "gleaning", "rloc")

    def snapshot_state(self):
        return {
            "map_cache": self.map_cache.snapshot_state(),
            "counters": (self.encapsulated, self.decapsulated,
                         self.no_rloc_drops, self.misdelivered,
                         self.resolutions_started, self.resolutions_failed),
            "seen": set(self._seen_inner_sources),
            "listeners": list(self.decap_listeners),
            "rloc_liveness": self.rloc_liveness,
        }

    def restore_state(self, state):
        self.map_cache.restore_state(state["map_cache"])
        (self.encapsulated, self.decapsulated, self.no_rloc_drops,
         self.misdelivered, self.resolutions_started,
         self.resolutions_failed) = state["counters"]
        self._seen_inner_sources = set(state["seen"])
        self.decap_listeners = list(state["listeners"])
        self.rloc_liveness = state["rloc_liveness"]
        self._pending.clear()


def _gleaned_mapping(inner_source, outer_source):
    """A /32 reverse mapping learned from one data packet."""
    from repro.lisp.mappings import MappingRecord, RlocEntry

    return MappingRecord(IPv4Prefix(int(inner_source), 32),
                         (RlocEntry(outer_source),), ttl=GLEANING_TTL)
