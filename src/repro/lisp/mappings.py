"""EID-to-RLOC mapping records.

A mapping binds an EID prefix to one or more routing locators, each with a
priority (lower preferred) and a weight (load share among equal priority),
mirroring draft-farinacci-lisp-08's Map-Reply record format.
"""

from dataclasses import dataclass

from repro.net.addresses import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class RlocEntry:
    """One locator inside a mapping."""

    address: IPv4Address
    priority: int = 1
    weight: int = 50
    reachable: bool = True

    def __post_init__(self):
        object.__setattr__(self, "address", IPv4Address(self.address))

    def __str__(self):
        return f"{self.address} p{self.priority}/w{self.weight}"


@dataclass(frozen=True)
class MappingRecord:
    """An EID prefix and its locator set."""

    eid_prefix: IPv4Prefix
    rlocs: tuple
    ttl: float = 60.0
    source_rloc: IPv4Address = None  # PCE CP: outer source to use (two one-way tunnels)

    def __post_init__(self):
        object.__setattr__(self, "eid_prefix", IPv4Prefix(self.eid_prefix))
        object.__setattr__(self, "rlocs", tuple(self.rlocs))
        if self.source_rloc is not None:
            object.__setattr__(self, "source_rloc", IPv4Address(self.source_rloc))

    def best_rloc(self, liveness=None):
        """The preferred usable locator: lowest priority, highest weight.

        *liveness*, when given, is a predicate (address -> bool) supplied by
        an RLOC prober; locators it reports down are skipped, which is how
        an ITR fails over to a backup locator (draft-08 reachability).
        """
        usable = [r for r in self.rlocs if r.reachable
                  and (liveness is None or liveness(r.address))]
        if not usable:
            return None
        return min(usable, key=lambda r: (r.priority, -r.weight, int(r.address)))

    def with_chosen_rloc(self, address):
        """A copy whose locator set is narrowed to *address* only.

        The PCE control plane uses this to pin a specific ETR for a flow.
        """
        chosen = tuple(r for r in self.rlocs if r.address == IPv4Address(address))
        if not chosen:
            raise ValueError(f"{address} is not a locator of {self.eid_prefix}")
        return MappingRecord(self.eid_prefix, chosen, ttl=self.ttl,
                             source_rloc=self.source_rloc)

    def with_source_rloc(self, address):
        """A copy carrying an explicit outer-source locator."""
        return MappingRecord(self.eid_prefix, self.rlocs, ttl=self.ttl,
                             source_rloc=IPv4Address(address))

    def with_preferred_rloc(self, address):
        """A copy with *address* promoted to priority 0, others demoted.

        Unlike :meth:`with_chosen_rloc`, the remaining locators stay in the
        record as backups — the ITR steers traffic to the preferred one but
        can fail over if a prober reports it down.
        """
        address = IPv4Address(address)
        if all(r.address != address for r in self.rlocs):
            raise ValueError(f"{address} is not a locator of {self.eid_prefix}")
        reordered = tuple(
            RlocEntry(r.address, priority=0 if r.address == address
                      else max(1, r.priority), weight=r.weight,
                      reachable=r.reachable)
            for r in self.rlocs)
        return MappingRecord(self.eid_prefix, reordered, ttl=self.ttl,
                             source_rloc=self.source_rloc)

    @property
    def size_bytes(self):
        """Approximate Map-Reply record size: 12B fixed + 12B per locator."""
        return 12 + 12 * len(self.rlocs)

    def __str__(self):
        locators = ", ".join(str(r) for r in self.rlocs)
        src = f" src={self.source_rloc}" if self.source_rloc is not None else ""
        return f"{self.eid_prefix} -> [{locators}] ttl={self.ttl}{src}"


def site_mapping(site, ttl=60.0, primary=0):
    """The authoritative mapping a site registers for its EID prefix.

    All of the site's RLOCs are included; the *primary* one gets the best
    priority, matching the static preferences a non-PCE site would publish.
    """
    rlocs = []
    for b in range(len(site.xtrs)):
        priority = 1 if b == primary else 2
        rlocs.append(RlocEntry(site.rloc_of(b), priority=priority, weight=50))
    return MappingRecord(site.eid_prefix, tuple(rlocs), ttl=ttl)
