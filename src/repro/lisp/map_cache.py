"""The ITR map-cache: TTL-aged mappings with longest-prefix match.

This is the cache whose misses cause the paper's weakness W1: "a hit might
not necessarily be found, either because the mapping has aged out, or simply
because it was never requested before" (§1).
"""

from repro.net.addresses import IPv4Address
from repro.net.fib import Fib, FibEntry


class _CacheSlot:
    __slots__ = ("mapping", "expires", "installed_at", "origin")

    def __init__(self, mapping, expires, installed_at, origin):
        self.mapping = mapping
        self.expires = expires
        self.installed_at = installed_at
        self.origin = origin


class MapCache:
    """EID-prefix keyed cache of :class:`~repro.lisp.mappings.MappingRecord`.

    Lookup is longest-prefix match, as an ITR's would be; entries expire
    after their record TTL (overridable), and expiry is detected lazily.
    """

    def __init__(self, sim, name="map-cache", ttl_override=None):
        self.sim = sim
        self.name = name
        self.ttl_override = ttl_override
        self._fib = Fib()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.installs = 0

    def install(self, mapping, origin="resolved", ttl=None):
        """Insert/refresh *mapping*; returns the effective TTL used.

        TTL precedence: explicit *ttl* argument, then the cache-wide
        override, then the record's own TTL.  ``float('inf')`` makes the
        entry permanent (NERD's pushed database uses this).
        """
        if ttl is None:
            ttl = self.ttl_override if self.ttl_override is not None else mapping.ttl
        slot = _CacheSlot(mapping, self.sim.now + ttl, self.sim.now, origin)
        self._fib.insert(FibEntry(mapping.eid_prefix, slot))
        self.installs += 1
        return ttl

    def lookup(self, eid):
        """The live mapping covering *eid*, or None (counts hits/misses)."""
        slot = self._live_slot(eid)
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        return slot.mapping

    def peek(self, eid):
        """Like :meth:`lookup` but without counting."""
        slot = self._live_slot(eid)
        return slot.mapping if slot is not None else None

    def _live_slot(self, eid):
        entry = self._fib.lookup(IPv4Address(eid), default=None)
        if entry is None:
            return None
        slot = entry.interface
        if slot.expires <= self.sim.now:
            self._fib.remove(entry.prefix)
            self.expirations += 1
            return None
        return slot

    def invalidate(self, prefix):
        self._fib.remove(prefix)

    def entries(self):
        """Live (prefix, mapping) pairs."""
        now = self.sim.now
        return [(entry.prefix, entry.interface.mapping)
                for entry in self._fib.entries() if entry.interface.expires > now]

    def __len__(self):
        return len(self.entries())

    def node_count(self):
        """Allocated trie nodes backing the cache (memory diagnostic)."""
        return self._fib.node_count()

    @property
    def hit_ratio(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    #: Construction-time config (owning sim, trace label, TTL policy).
    _SNAPSHOT_EXEMPT = ("sim", "name", "ttl_override")

    def snapshot_state(self):
        return (self._fib.snapshot_state(), self.hits, self.misses,
                self.expirations, self.installs)

    def restore_state(self, state):
        fib_state, self.hits, self.misses, self.expirations, self.installs = state
        self._fib.restore_state(fib_state)
