"""Deploy LISP over a built topology: xTRs on border routers + a mapping system."""

from repro.lisp.mappings import site_mapping
from repro.lisp.xtr import TunnelRouter


def deploy_lisp(sim, topology, mapping_system, miss_policy, gleaning=True,
                cache_ttl_override=None, mapping_ttl=60.0):
    """Instantiate a :class:`TunnelRouter` on every border router.

    Registers each site's authoritative mapping with *mapping_system*, then
    calls the system's ``finalize`` hook (overlay construction / database
    push).  The single *miss_policy* instance is shared across xTRs so its
    statistics aggregate over the whole deployment.

    Returns ``{site_index: [TunnelRouter, ...]}``.
    """
    xtrs_by_site = {}
    for site in topology.sites:
        mapping = site_mapping(site, ttl=mapping_ttl)
        mapping_system.register_site(site, mapping)
        routers = []
        for node in site.xtrs:
            routers.append(TunnelRouter(sim, node, site, miss_policy=miss_policy,
                                        mapping_system=mapping_system,
                                        gleaning=gleaning,
                                        cache_ttl_override=cache_ttl_override))
        xtrs_by_site[site.index] = routers
    mapping_system.finalize()
    return xtrs_by_site
