"""Destination popularity, flow-size and flow-pacing models."""

import bisect
import math
from dataclasses import dataclass


class ZipfSampler:
    """Zipf(s) sampler over ``n`` items (rank 1 most popular).

    The paper's weaknesses show up under realistic skew: popular
    destinations keep caches warm while the tail always misses.
    """

    def __init__(self, n, s=1.0, rng=None):
        if n < 1:
            raise ValueError("ZipfSampler needs n >= 1")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    def probability(self, rank):
        """P(item at *rank*), rank counted from 0."""
        if rank == 0:
            return self._cumulative[0]
        return self._cumulative[rank] - self._cumulative[rank - 1]

    def sample(self, rng=None):
        """Draw an item index in [0, n)."""
        generator = rng or self._rng
        if generator is None:
            raise ValueError("no RNG supplied")
        return bisect.bisect_left(self._cumulative, generator.random())

    def sample_many(self, count, rng=None):
        return [self.sample(rng) for _ in range(count)]


#: Supported flow-size distributions.
SIZE_DISTRIBUTIONS = ("constant", "pareto", "lognormal")


class FlowSizeSampler:
    """Flow sizes (in packets) around a target mean: constant or heavy-tailed.

    Internet flow sizes are famously heavy-tailed — most flows are mice, a
    few elephants carry most bytes — and tail behaviour diverges sharply
    from mean behaviour (cf. the scale-free first-passage scaling work in
    PAPERS.md).  Constant sizes keep every cell's cache pressure identical;
    the heavy-tailed variants stress the map-cache tail instead.

    - ``constant``: every flow is exactly ``mean`` packets.  Never draws
      from the RNG, so enabling the sampler with the default distribution
      is byte-identical to not having one.
    - ``pareto``: bounded Pareto(``alpha``) on ``[1, max_factor]``,
      rescaled so the distribution mean equals ``mean``.
    - ``lognormal``: lognormal with E[X] = ``mean`` and shape ``sigma``,
      truncated to ``[1, mean * max_factor]``.
    """

    def __init__(self, dist="constant", mean=5, alpha=1.4, sigma=1.0,
                 max_factor=50.0, rng=None):
        if dist not in SIZE_DISTRIBUTIONS:
            raise ValueError(f"unknown size distribution {dist!r}")
        if mean < 1:
            raise ValueError("mean flow size must be >= 1 packet")
        if dist == "pareto" and alpha <= 0:
            raise ValueError("Pareto alpha must be positive")
        if max_factor < 1:
            raise ValueError("max_factor must be >= 1")
        self.dist = dist
        self.mean = float(mean)
        self.alpha = float(alpha)
        self.sigma = float(sigma)
        self.max_factor = float(max_factor)
        self._rng = rng
        if dist == "pareto":
            self._pareto_span = 1.0 - self.max_factor ** (-self.alpha)
            self._pareto_mean = self._bounded_pareto_mean(
                self.alpha, self.max_factor)
        elif dist == "lognormal":
            self._mu = math.log(self.mean) - self.sigma ** 2 / 2.0

    @staticmethod
    def _bounded_pareto_mean(alpha, high):
        """Mean of Pareto(alpha) truncated to [1, high]."""
        if alpha == 1.0:
            return math.log(high) / (1.0 - 1.0 / high)
        norm = alpha / (1.0 - high ** (-alpha))
        return norm * (1.0 - high ** (1.0 - alpha)) / (alpha - 1.0)

    @property
    def max_packets(self):
        """Largest size the sampler can return."""
        if self.dist == "constant":
            return max(1, round(self.mean))
        if self.dist == "pareto":
            return max(1, round(self.max_factor * self.mean / self._pareto_mean))
        return max(1, round(self.mean * self.max_factor))

    def sample(self, rng=None):
        """Draw one flow size in packets (>= 1)."""
        if self.dist == "constant":
            return max(1, round(self.mean))
        generator = rng or self._rng
        if generator is None:
            raise ValueError("no RNG supplied")
        if self.dist == "pareto":
            uniform = generator.random()
            raw = (1.0 - uniform * self._pareto_span) ** (-1.0 / self.alpha)
            scaled = raw * self.mean / self._pareto_mean
        else:
            scaled = generator.lognormvariate(self._mu, self.sigma)
            scaled = min(scaled, self.mean * self.max_factor)
        return max(1, round(scaled))

    def sample_many(self, count, rng=None):
        return [self.sample(rng) for _ in range(count)]


#: Supported pacing modes: ``constant`` keeps the historical fixed
#: inter-packet spacing for every flow; ``shaped`` sends mice as
#: back-to-back bursts and paces elephants at a target bit rate; ``fluid``
#: additionally advances bulk flows as rate x interval byte chunks posted
#: straight into the link ledgers (no per-packet events).
PACING_MODES = ("constant", "shaped", "fluid")


@dataclass(frozen=True)
class FlowPlan:
    """One flow's byte budget and send schedule.

    ``packets`` datagrams of ``payload_bytes`` each, ``spacing`` seconds
    apart (0.0 means a single back-to-back burst).  ``kind`` records how
    the plan was shaped: ``constant`` (fixed spacing), ``mouse`` (burst),
    ``elephant`` (paced at the shaper's target rate) or ``fluid`` (bulk
    bytes advance as chunks, only the path-discovery packet is real).

    A fluid plan's sender posts ``chunk_packets`` packets' worth of wire
    bytes (payload plus ``overhead_bytes`` of headers) every
    ``chunk_interval`` seconds — the chunking of the shaper's pace rate.
    Both fields are 0 on packet-level plans.
    """

    packets: int
    payload_bytes: int
    spacing: float
    kind: str
    chunk_interval: float = 0.0
    chunk_packets: int = 0
    overhead_bytes: int = 0

    @property
    def byte_budget(self):
        """Application bytes this flow intends to send."""
        return self.packets * self.payload_bytes


class FlowShaper:
    """Turns sampled flow sizes into paced :class:`FlowPlan` objects.

    The size axis (PR 2's :class:`FlowSizeSampler`) decides *how much* a
    flow sends; this decides *when*.  ``constant`` pacing reproduces the
    historical constant-spacing sender exactly — same RNG draws, same
    spacing for every flow — so enabling the shaper with the default mode
    is byte-identical to not having one.  ``shaped`` pacing makes the
    heavy tail temporal: flows at or below ``elephant_threshold`` packets
    are mice and burst back-to-back (``burst_spacing``, default 0.0 —
    their bytes hit the first link in one instant), larger flows are
    elephants and space packets so the flow's wire bytes leave at
    ``pace_rate_bps`` (inter-packet gap = wire bytes per packet * 8 /
    rate).

    ``overhead_bytes`` is the per-packet header tax added to
    ``payload_bytes`` when converting the target bit rate into a gap (28
    for IPv4+UDP).  ``elephant_threshold`` defaults to twice the sampler's
    mean, so constant-size workloads never contain elephants and the
    threshold scales with the size axis.

    ``fluid`` pacing classifies exactly like ``shaped`` but flows above
    ``fluid_threshold`` packets (default: the elephant threshold) become
    ``fluid`` plans: one real path-discovery packet, then the remaining
    bytes advance as chunks of ``chunk_interval`` seconds' worth of the
    pace rate.  Mice — and anything at or below the threshold — stay
    packet-level and event-exact.
    """

    def __init__(self, sizes, payload_bytes, pacing="constant", spacing=0.001,
                 pace_rate_bps=2_000_000.0, elephant_threshold=None,
                 burst_spacing=0.0, overhead_bytes=28,
                 fluid_threshold=None, chunk_interval=0.25):
        if pacing not in PACING_MODES:
            raise ValueError(f"unknown pacing mode {pacing!r}")
        if payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        if pace_rate_bps <= 0:
            raise ValueError("pace_rate_bps must be positive")
        if burst_spacing < 0 or spacing < 0:
            raise ValueError("packet spacings must be >= 0")
        if chunk_interval <= 0:
            raise ValueError("chunk_interval must be positive")
        self.sizes = sizes
        self.payload_bytes = int(payload_bytes)
        self.pacing = pacing
        self.spacing = float(spacing)
        self.pace_rate_bps = float(pace_rate_bps)
        if elephant_threshold is None:
            elephant_threshold = 2.0 * sizes.mean
        if elephant_threshold < 1:
            raise ValueError("elephant_threshold must be >= 1 packet")
        self.elephant_threshold = elephant_threshold
        if fluid_threshold is None:
            fluid_threshold = elephant_threshold
        if fluid_threshold < 1:
            raise ValueError("fluid_threshold must be >= 1 packet")
        self.fluid_threshold = fluid_threshold
        self.burst_spacing = float(burst_spacing)
        self.overhead_bytes = int(overhead_bytes)
        self.chunk_interval = float(chunk_interval)

    @property
    def pace_spacing(self):
        """The elephant inter-packet gap (seconds) at the target rate."""
        wire_bytes = self.payload_bytes + self.overhead_bytes
        return wire_bytes * 8.0 / self.pace_rate_bps

    @property
    def chunk_packets(self):
        """Packets' worth of bytes per fluid chunk at the pace rate."""
        wire_bytes = self.payload_bytes + self.overhead_bytes
        return max(1, round(self.pace_rate_bps * self.chunk_interval
                            / (8.0 * wire_bytes)))

    def plan(self, rng=None):
        """Draw one flow: a size from the sampler, shaped into a plan.

        Consumes exactly the RNG draws the size sampler does (none in
        ``constant`` size mode), so swapping pacing modes never shifts the
        random stream other flows see.
        """
        packets = self.sizes.sample(rng)
        if self.pacing == "constant":
            return FlowPlan(packets=packets, payload_bytes=self.payload_bytes,
                            spacing=self.spacing, kind="constant")
        if self.pacing == "fluid" and packets > self.fluid_threshold:
            return FlowPlan(packets=packets, payload_bytes=self.payload_bytes,
                            spacing=self.pace_spacing, kind="fluid",
                            chunk_interval=self.chunk_interval,
                            chunk_packets=self.chunk_packets,
                            overhead_bytes=self.overhead_bytes)
        if packets > self.elephant_threshold:
            return FlowPlan(packets=packets, payload_bytes=self.payload_bytes,
                            spacing=self.pace_spacing, kind="elephant")
        return FlowPlan(packets=packets, payload_bytes=self.payload_bytes,
                        spacing=self.burst_spacing, kind="mouse")
