"""Destination popularity models."""

import bisect


class ZipfSampler:
    """Zipf(s) sampler over ``n`` items (rank 1 most popular).

    The paper's weaknesses show up under realistic skew: popular
    destinations keep caches warm while the tail always misses.
    """

    def __init__(self, n, s=1.0, rng=None):
        if n < 1:
            raise ValueError("ZipfSampler needs n >= 1")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    def probability(self, rank):
        """P(item at *rank*), rank counted from 0."""
        if rank == 0:
            return self._cumulative[0]
        return self._cumulative[rank] - self._cumulative[rank - 1]

    def sample(self, rng=None):
        """Draw an item index in [0, n)."""
        generator = rng or self._rng
        if generator is None:
            raise ValueError("no RNG supplied")
        return bisect.bisect_left(self._cumulative, generator.random())

    def sample_many(self, count, rng=None):
        return [self.sample(rng) for _ in range(count)]
