"""Destination popularity and flow-size models."""

import bisect
import math


class ZipfSampler:
    """Zipf(s) sampler over ``n`` items (rank 1 most popular).

    The paper's weaknesses show up under realistic skew: popular
    destinations keep caches warm while the tail always misses.
    """

    def __init__(self, n, s=1.0, rng=None):
        if n < 1:
            raise ValueError("ZipfSampler needs n >= 1")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    def probability(self, rank):
        """P(item at *rank*), rank counted from 0."""
        if rank == 0:
            return self._cumulative[0]
        return self._cumulative[rank] - self._cumulative[rank - 1]

    def sample(self, rng=None):
        """Draw an item index in [0, n)."""
        generator = rng or self._rng
        if generator is None:
            raise ValueError("no RNG supplied")
        return bisect.bisect_left(self._cumulative, generator.random())

    def sample_many(self, count, rng=None):
        return [self.sample(rng) for _ in range(count)]


#: Supported flow-size distributions.
SIZE_DISTRIBUTIONS = ("constant", "pareto", "lognormal")


class FlowSizeSampler:
    """Flow sizes (in packets) around a target mean: constant or heavy-tailed.

    Internet flow sizes are famously heavy-tailed — most flows are mice, a
    few elephants carry most bytes — and tail behaviour diverges sharply
    from mean behaviour (cf. the scale-free first-passage scaling work in
    PAPERS.md).  Constant sizes keep every cell's cache pressure identical;
    the heavy-tailed variants stress the map-cache tail instead.

    - ``constant``: every flow is exactly ``mean`` packets.  Never draws
      from the RNG, so enabling the sampler with the default distribution
      is byte-identical to not having one.
    - ``pareto``: bounded Pareto(``alpha``) on ``[1, max_factor]``,
      rescaled so the distribution mean equals ``mean``.
    - ``lognormal``: lognormal with E[X] = ``mean`` and shape ``sigma``,
      truncated to ``[1, mean * max_factor]``.
    """

    def __init__(self, dist="constant", mean=5, alpha=1.4, sigma=1.0,
                 max_factor=50.0, rng=None):
        if dist not in SIZE_DISTRIBUTIONS:
            raise ValueError(f"unknown size distribution {dist!r}")
        if mean < 1:
            raise ValueError("mean flow size must be >= 1 packet")
        if dist == "pareto" and alpha <= 0:
            raise ValueError("Pareto alpha must be positive")
        if max_factor < 1:
            raise ValueError("max_factor must be >= 1")
        self.dist = dist
        self.mean = float(mean)
        self.alpha = float(alpha)
        self.sigma = float(sigma)
        self.max_factor = float(max_factor)
        self._rng = rng
        if dist == "pareto":
            self._pareto_span = 1.0 - self.max_factor ** (-self.alpha)
            self._pareto_mean = self._bounded_pareto_mean(
                self.alpha, self.max_factor)
        elif dist == "lognormal":
            self._mu = math.log(self.mean) - self.sigma ** 2 / 2.0

    @staticmethod
    def _bounded_pareto_mean(alpha, high):
        """Mean of Pareto(alpha) truncated to [1, high]."""
        if alpha == 1.0:
            return math.log(high) / (1.0 - 1.0 / high)
        norm = alpha / (1.0 - high ** (-alpha))
        return norm * (1.0 - high ** (1.0 - alpha)) / (alpha - 1.0)

    @property
    def max_packets(self):
        """Largest size the sampler can return."""
        if self.dist == "constant":
            return max(1, round(self.mean))
        if self.dist == "pareto":
            return max(1, round(self.max_factor * self.mean / self._pareto_mean))
        return max(1, round(self.mean * self.max_factor))

    def sample(self, rng=None):
        """Draw one flow size in packets (>= 1)."""
        if self.dist == "constant":
            return max(1, round(self.mean))
        generator = rng or self._rng
        if generator is None:
            raise ValueError("no RNG supplied")
        if self.dist == "pareto":
            uniform = generator.random()
            raw = (1.0 - uniform * self._pareto_span) ** (-1.0 / self.alpha)
            scaled = raw * self.mean / self._pareto_mean
        else:
            scaled = generator.lognormvariate(self._mu, self.sigma)
            scaled = min(scaled, self.mean * self.max_factor)
        return max(1, round(scaled))

    def sample_many(self, count, rng=None):
        return [self.sample(rng) for _ in range(count)]
