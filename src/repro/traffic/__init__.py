"""Synthetic workloads: flow models, arrival processes, destination popularity."""

from repro.traffic.flows import FlowRecord, TcpStack, UdpSink
from repro.traffic.popularity import ZipfSampler

__all__ = ["FlowRecord", "TcpStack", "UdpSink", "ZipfSampler"]
