"""Flow-level traffic machinery: a minimal TCP model and UDP sinks.

The TCP model covers exactly what the paper's latency formulas need: the
three-way handshake (SYN, SYN+ACK, ACK), with retransmission of lost SYNs
after a retransmission timeout.  A SYN lost at an ITR during mapping
resolution therefore costs a full RTO — the mechanism behind the paper's
connection-setup comparison (§1).
"""

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import IPv4Address
from repro.net.packet import PROTO_TCP, TCP_ACK, TCP_SYN, tcp_packet, udp_packet
from repro.traffic.popularity import FlowPlan

#: Classic initial TCP retransmission timeout (RFC 1122 era: 1 second was
#: common in 2008-vintage stacks; RFC 6298 later said 1 s as well).
DEFAULT_RTO = 1.0

#: Extra path-discovery packets a fluid sender may spend (beyond the first)
#: before declaring the flow failed, and again whenever a whole chunk is
#: lost and the path must be re-learned.
FLUID_PROBE_RETRIES = 2


class FlowIdAllocator:
    """Per-world flow-id sequence.

    Flow ids used to come from a module-level counter, which made them
    depend on how many worlds a worker process had already built — a fresh
    and a restored world would label the same flows differently.  The
    allocator is world state: built with the scenario, handed out through
    :meth:`allocate`, and checkpointed with the rest of the traffic layer
    so fresh and restored worlds assign identical ids.
    """

    __slots__ = ("_next",)

    def __init__(self, start=1):
        self._next = start

    def allocate(self):
        flow_id = self._next
        self._next += 1
        return flow_id

    def snapshot_state(self):
        return self._next

    def restore_state(self, state):
        self._next = state


@dataclass
class FlowRecord:
    """Everything measured about one application flow.

    ``source``/``destination``/``qname`` and the timing fields are
    genuinely :data:`~typing.Optional`: a flow that fails (or is cut off
    at the workload deadline) before DNS completes has ``destination`` and
    ``dns_done_at`` still ``None`` with ``failed`` set — consumers must
    treat these fields as nullable rather than assuming a completed
    resolution.
    """

    flow_id: int
    source: Optional[IPv4Address] = None
    destination: Optional[IPv4Address] = None
    qname: Optional[str] = None
    started_at: float = 0.0
    dns_done_at: Optional[float] = None
    dns_elapsed: Optional[float] = None
    established_at: Optional[float] = None
    setup_elapsed: Optional[float] = None
    syn_retransmissions: int = 0
    #: Real datagrams handed to the host.  For fluid flows these count the
    #: path-discovery packets only; the bulk advances through
    #: ``chunks_sent`` / ``bytes_sent``.
    packets_sent: int = 0
    packets_delivered: int = 0
    #: Application bytes this flow planned to send (packets x payload).
    bytes_budget: int = 0
    #: Application bytes actually handed to the host for sending.
    bytes_sent: int = 0
    #: Fluid chunks posted (0 for packet-level flows).
    chunks_sent: int = 0
    #: When the sender finished (all budget sent, or gave up), None while
    #: still active — the basis of concurrent-flow counts.
    finished_at: Optional[float] = None
    #: Pacing classification ("constant" | "mouse" | "elephant" | "fluid"),
    #: None when the flow never reached its data phase.
    flow_kind: Optional[str] = None
    first_packet_fates: list = field(default_factory=list)
    failed: bool = False

    @property
    def packets_lost(self):
        return self.packets_sent - self.packets_delivered


class TcpStack:
    """Per-host TCP service: listeners answer SYNs, clients track connects."""

    def __init__(self, sim, host):
        self.sim = sim
        self.host = host
        self._listeners = {}
        self._pending = {}
        self.segments_received = 0
        self.data_bytes_received = 0
        host.register_protocol(PROTO_TCP, self._on_segment)
        host.register_service("tcp", self)

    def listen(self, port):
        """Accept connections on *port* (responder role)."""
        self._listeners[port] = True

    def _on_segment(self, packet, _node):
        header = packet.tcp
        if header is None:
            return
        self.segments_received += 1
        if header.is_syn and header.dport in self._listeners:
            reply = tcp_packet(packet.ip.dst, packet.ip.src, header.dport, header.sport,
                               flags=TCP_SYN | TCP_ACK, seq=0, ack=header.seq + 1)
            self.host.send(reply)
            return
        if header.is_synack:
            waiter = self._pending.get(header.dport)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(packet)
            return
        # Anything else is data (or a bare ACK); count its payload.
        self.data_bytes_received += packet.size_bytes

    def connect(self, destination, dport, rto=DEFAULT_RTO, max_retries=5):
        """Process: three-way handshake; returns (elapsed, syn_retries) or None."""
        sim = self.sim
        sport = self.host.ephemeral_port()

        def _connect():
            started = sim.now
            for attempt in range(max_retries + 1):
                syn = tcp_packet(self.host.address, destination, sport, dport,
                                 flags=TCP_SYN, seq=attempt)
                waiter = sim.event(name=f"tcp-connect-{sport}")
                self._pending[sport] = waiter
                self.host.send(syn)
                deadline = sim.timeout(rto * (2 ** attempt))
                outcome = yield sim.any_of([waiter, deadline])
                if waiter in outcome:
                    self._pending.pop(sport, None)
                    ack = tcp_packet(self.host.address, destination, sport, dport,
                                     flags=TCP_ACK, seq=attempt + 1, ack=1)
                    self.host.send(ack)
                    return sim.now - started, attempt
                self._pending.pop(sport, None)
            return None

        return sim.process(_connect(), name=f"{self.host.name}-connect")

    #: Owning sim and host are independently checkpointed.
    _SNAPSHOT_EXEMPT = ("sim", "host")

    def snapshot_state(self):
        return (self.segments_received, self.data_bytes_received,
                dict(self._listeners))

    def restore_state(self, state):
        self.segments_received, self.data_bytes_received, listeners = state
        self._listeners = dict(listeners)
        self._pending.clear()


class UdpSink:
    """Counts datagrams per flow id on one UDP port.

    Fluid flows deliver almost all of their bytes without datagrams:
    :meth:`credit_fluid` books a chunk's surviving wire bytes (``bytes``,
    ``fluid_bytes``, ``fluid_by_flow``) when it reaches the destination,
    while ``received``/``by_flow`` keep counting real packets only.
    """

    def __init__(self, sim, host, port):
        self.sim = sim
        self.host = host
        self.port = port
        self.received = 0
        self.bytes = 0
        self.fluid_bytes = 0
        self.by_flow = defaultdict(int)
        self.fluid_by_flow = defaultdict(int)
        self.arrival_times = []
        host.bind_udp(port, self._on_datagram)

    def _on_datagram(self, packet, _node):
        self.received += 1
        self.bytes += packet.size_bytes
        self.arrival_times.append(self.sim.now)
        meta = packet.meta
        flow_id = meta.get("flow_id")
        if flow_id is not None:
            self.by_flow[flow_id] += 1
        probe = meta.get("fluid_probe")
        if probe is not None:
            # Complete the fluid sender's path discovery.
            probe["sink"] = self

    def credit_fluid(self, flow_id, size):
        """Book *size* fluid wire bytes arriving for *flow_id*."""
        self.bytes += size
        self.fluid_bytes += size
        self.fluid_by_flow[flow_id] += size

    #: Construction-time wiring: sim and host checkpoint themselves, the
    #: bound port never changes.
    _SNAPSHOT_EXEMPT = ("sim", "host", "port")

    def snapshot_state(self):
        return (self.received, self.bytes, self.fluid_bytes,
                dict(self.by_flow), dict(self.fluid_by_flow),
                list(self.arrival_times))

    def restore_state(self, state):
        (self.received, self.bytes, self.fluid_bytes,
         by_flow, fluid_by_flow, arrivals) = state
        self.by_flow = defaultdict(int, by_flow)
        self.fluid_by_flow = defaultdict(int, fluid_by_flow)
        self.arrival_times = list(arrivals)


def send_flow(sim, host, destination, port, record, plan):
    """Process: emit one flow's datagrams on its :class:`FlowPlan` schedule.

    The plan's byte budget and pacing kind are written onto *record*
    (``bytes_budget``, ``flow_kind``) and every handed-off datagram
    advances ``bytes_sent``, so flow-level byte accounting lines up with
    the per-link accounting in :mod:`repro.net.link`.  A zero-spacing plan
    (a shaped mouse) sends its whole burst back-to-back within one event;
    positive spacing yields between packets exactly like the historical
    constant-spacing sender.

    The first packet's fate list ends up in ``record.first_packet_fates``
    so experiment E1 can classify it (dropped / queued / carried over CP /
    encapsulated immediately).

    A ``fluid`` plan dispatches to the chunked sender instead: the first
    packet(s) double as path discovery, then the bulk advances as
    rate x interval chunks posted straight to the discovered links (see
    :meth:`repro.net.link.Link.post_fluid`).
    """
    record.bytes_budget = plan.byte_budget
    record.flow_kind = plan.kind
    if plan.kind == "fluid":
        return _send_fluid(sim, host, destination, port, record, plan)

    def _send():
        for index in range(plan.packets):
            meta = {"flow_id": record.flow_id, "index": index}
            packet = udp_packet(host.address, destination, 5000, port,
                                payload_bytes=plan.payload_bytes, meta=meta)
            if index == 0:
                packet.meta["fates"] = record.first_packet_fates
            record.packets_sent += 1
            record.bytes_sent += plan.payload_bytes
            host.send(packet)
            if index < plan.packets - 1 and plan.spacing > 0.0:
                yield sim.timeout(plan.spacing)
        record.finished_at = sim.now

    return sim.process(_send(), name=f"{host.name}-burst-{record.flow_id}")


def _send_fluid(sim, host, destination, port, record, plan):
    """Process: advance a fluid flow as path-probe packets plus byte chunks.

    The first packet is a normal datagram that carries a ``fluid_probe``
    marker: every link that delivers it appends itself, and the
    destination :class:`UdpSink` stamps itself in on arrival — so one
    event-exact traversal discovers the packet path (E1's first-packet
    fate classification rides it unchanged).  The remaining budget then
    advances without per-packet events: every ``chunk_interval`` the
    sender pushes a chunk of wire bytes through the discovered links —
    each link's :meth:`~repro.net.link.Link.post_fluid` returns what
    survived, which feeds the next hop — and credits the remainder to the
    sink.  A chunk that dies completely triggers re-discovery (the path
    may have failed over); when probing exhausts its retries with budget
    still unsent the flow is marked failed.

    Every probe spends one packet of the flow's own budget, so
    ``bytes_sent`` can never exceed ``bytes_budget``; a completed flow has
    spent its budget exactly.
    """
    payload = plan.payload_bytes
    interval = plan.chunk_interval
    wire_per_packet = payload + plan.overhead_bytes

    def _remaining():
        return (record.bytes_budget - record.bytes_sent) // payload

    def _probe(attempts):
        """Sub-process: discover the path; returns (links, sink) or None."""
        while attempts > 0 and _remaining() > 0:
            attempts -= 1
            probe = {"links": [], "sink": None}
            meta = {"flow_id": record.flow_id, "index": record.packets_sent,
                    "fluid_probe": probe}
            packet = udp_packet(host.address, destination, 5000, port,
                                payload_bytes=payload, meta=meta)
            if record.packets_sent == 0:
                packet.meta["fates"] = record.first_packet_fates
            record.packets_sent += 1
            record.bytes_sent += payload
            host.send(packet)
            yield sim.timeout(interval)
            if probe["sink"] is not None:
                return probe["links"], probe["sink"]
        return None

    def _give_up():
        if record.bytes_sent < record.bytes_budget:
            record.failed = True
        record.finished_at = sim.now

    def _send():
        path = yield from _probe(1 + FLUID_PROBE_RETRIES)
        if path is None:
            _give_up()
            return
        links, sink = path
        remaining = _remaining()
        while remaining > 0:
            chunk = plan.chunk_packets if plan.chunk_packets < remaining else remaining
            delivered = chunk * wire_per_packet
            for link in links:
                if delivered <= 0:
                    break
                delivered = link.post_fluid(delivered, record.flow_id, interval)
            record.bytes_sent += chunk * payload
            record.chunks_sent += 1
            remaining = _remaining()
            if delivered > 0:
                sink.credit_fluid(record.flow_id, delivered)
            elif links and remaining > 0:
                # The whole chunk died mid-path: re-learn the route (the
                # probe loop waits an interval per attempt, so no extra
                # sleep here).
                path = yield from _probe(FLUID_PROBE_RETRIES)
                if path is None:
                    _give_up()
                    return
                links, sink = path
                remaining = _remaining()  # probes spend budget too
                continue
            if remaining > 0:
                yield sim.timeout(interval)
        record.finished_at = sim.now

    return sim.process(_send(), name=f"{host.name}-fluid-{record.flow_id}")


def send_udp_burst(sim, host, destination, port, record, count_packets=5,
                   payload_bytes=1000, spacing=0.001):
    """Process: emit a constant-spacing burst (compat wrapper over
    :func:`send_flow`)."""
    plan = FlowPlan(packets=count_packets, payload_bytes=payload_bytes,
                    spacing=spacing, kind="constant")
    return send_flow(sim, host, destination, port, record, plan)
