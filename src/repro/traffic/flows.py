"""Flow-level traffic machinery: a minimal TCP model and UDP sinks.

The TCP model covers exactly what the paper's latency formulas need: the
three-way handshake (SYN, SYN+ACK, ACK), with retransmission of lost SYNs
after a retransmission timeout.  A SYN lost at an ITR during mapping
resolution therefore costs a full RTO — the mechanism behind the paper's
connection-setup comparison (§1).
"""

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.net.addresses import IPv4Address
from repro.net.packet import PROTO_TCP, TCP_ACK, TCP_SYN, tcp_packet, udp_packet
from repro.traffic.popularity import FlowPlan

#: Classic initial TCP retransmission timeout (RFC 1122 era: 1 second was
#: common in 2008-vintage stacks; RFC 6298 later said 1 s as well).
DEFAULT_RTO = 1.0

_flow_ids = count(1)


@dataclass
class FlowRecord:
    """Everything measured about one application flow.

    ``source``/``destination``/``qname`` and the timing fields are
    genuinely :data:`~typing.Optional`: a flow that fails (or is cut off
    at the workload deadline) before DNS completes has ``destination`` and
    ``dns_done_at`` still ``None`` with ``failed`` set — consumers must
    treat these fields as nullable rather than assuming a completed
    resolution.
    """

    flow_id: int
    source: Optional[IPv4Address] = None
    destination: Optional[IPv4Address] = None
    qname: Optional[str] = None
    started_at: float = 0.0
    dns_done_at: Optional[float] = None
    dns_elapsed: Optional[float] = None
    established_at: Optional[float] = None
    setup_elapsed: Optional[float] = None
    syn_retransmissions: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    #: Application bytes this flow planned to send (packets x payload).
    bytes_budget: int = 0
    #: Application bytes actually handed to the host for sending.
    bytes_sent: int = 0
    #: Pacing classification ("constant" | "mouse" | "elephant"), None when
    #: the flow never reached its data phase.
    flow_kind: Optional[str] = None
    first_packet_fates: list = field(default_factory=list)
    failed: bool = False

    @property
    def packets_lost(self):
        return self.packets_sent - self.packets_delivered


class TcpStack:
    """Per-host TCP service: listeners answer SYNs, clients track connects."""

    def __init__(self, sim, host):
        self.sim = sim
        self.host = host
        self._listeners = {}
        self._pending = {}
        self.segments_received = 0
        self.data_bytes_received = 0
        host.register_protocol(PROTO_TCP, self._on_segment)
        host.register_service("tcp", self)

    def listen(self, port):
        """Accept connections on *port* (responder role)."""
        self._listeners[port] = True

    def _on_segment(self, packet, _node):
        header = packet.tcp
        if header is None:
            return
        self.segments_received += 1
        if header.is_syn and header.dport in self._listeners:
            reply = tcp_packet(packet.ip.dst, packet.ip.src, header.dport, header.sport,
                               flags=TCP_SYN | TCP_ACK, seq=0, ack=header.seq + 1)
            self.host.send(reply)
            return
        if header.is_synack:
            waiter = self._pending.get(header.dport)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(packet)
            return
        # Anything else is data (or a bare ACK); count its payload.
        self.data_bytes_received += packet.size_bytes

    def connect(self, destination, dport, rto=DEFAULT_RTO, max_retries=5):
        """Process: three-way handshake; returns (elapsed, syn_retries) or None."""
        sim = self.sim
        sport = self.host.ephemeral_port()

        def _connect():
            started = sim.now
            for attempt in range(max_retries + 1):
                syn = tcp_packet(self.host.address, destination, sport, dport,
                                 flags=TCP_SYN, seq=attempt)
                waiter = sim.event(name=f"tcp-connect-{sport}")
                self._pending[sport] = waiter
                self.host.send(syn)
                deadline = sim.timeout(rto * (2 ** attempt))
                outcome = yield sim.any_of([waiter, deadline])
                if waiter in outcome:
                    self._pending.pop(sport, None)
                    ack = tcp_packet(self.host.address, destination, sport, dport,
                                     flags=TCP_ACK, seq=attempt + 1, ack=1)
                    self.host.send(ack)
                    return sim.now - started, attempt
                self._pending.pop(sport, None)
            return None

        return sim.process(_connect(), name=f"{self.host.name}-connect")

    #: Owning sim and host are independently checkpointed.
    _SNAPSHOT_EXEMPT = ("sim", "host")

    def snapshot_state(self):
        return (self.segments_received, self.data_bytes_received,
                dict(self._listeners))

    def restore_state(self, state):
        self.segments_received, self.data_bytes_received, listeners = state
        self._listeners = dict(listeners)
        self._pending.clear()


class UdpSink:
    """Counts datagrams per flow id on one UDP port."""

    def __init__(self, sim, host, port):
        self.sim = sim
        self.host = host
        self.port = port
        self.received = 0
        self.bytes = 0
        self.by_flow = {}
        self.arrival_times = []
        host.bind_udp(port, self._on_datagram)

    def _on_datagram(self, packet, _node):
        self.received += 1
        self.bytes += packet.size_bytes
        self.arrival_times.append(self.sim.now)
        flow_id = packet.meta.get("flow_id")
        if flow_id is not None:
            self.by_flow[flow_id] = self.by_flow.get(flow_id, 0) + 1

    #: Construction-time wiring: sim and host checkpoint themselves, the
    #: bound port never changes.
    _SNAPSHOT_EXEMPT = ("sim", "host", "port")

    def snapshot_state(self):
        return (self.received, self.bytes, dict(self.by_flow),
                list(self.arrival_times))

    def restore_state(self, state):
        self.received, self.bytes, by_flow, arrivals = state
        self.by_flow = dict(by_flow)
        self.arrival_times = list(arrivals)


def send_flow(sim, host, destination, port, record, plan):
    """Process: emit one flow's datagrams on its :class:`FlowPlan` schedule.

    The plan's byte budget and pacing kind are written onto *record*
    (``bytes_budget``, ``flow_kind``) and every handed-off datagram
    advances ``bytes_sent``, so flow-level byte accounting lines up with
    the per-link accounting in :mod:`repro.net.link`.  A zero-spacing plan
    (a shaped mouse) sends its whole burst back-to-back within one event;
    positive spacing yields between packets exactly like the historical
    constant-spacing sender.

    The first packet's fate list ends up in ``record.first_packet_fates``
    so experiment E1 can classify it (dropped / queued / carried over CP /
    encapsulated immediately).
    """
    record.bytes_budget = plan.byte_budget
    record.flow_kind = plan.kind

    def _send():
        for index in range(plan.packets):
            meta = {"flow_id": record.flow_id, "index": index}
            packet = udp_packet(host.address, destination, 5000, port,
                                payload_bytes=plan.payload_bytes, meta=meta)
            if index == 0:
                packet.meta["fates"] = record.first_packet_fates
            record.packets_sent += 1
            record.bytes_sent += plan.payload_bytes
            host.send(packet)
            if index < plan.packets - 1 and plan.spacing > 0.0:
                yield sim.timeout(plan.spacing)

    return sim.process(_send(), name=f"{host.name}-burst-{record.flow_id}")


def send_udp_burst(sim, host, destination, port, record, count_packets=5,
                   payload_bytes=1000, spacing=0.001):
    """Process: emit a constant-spacing burst (compat wrapper over
    :func:`send_flow`)."""
    plan = FlowPlan(packets=count_packets, payload_bytes=payload_bytes,
                    spacing=spacing, kind="constant")
    return send_flow(sim, host, destination, port, record, plan)


def next_flow_id():
    return next(_flow_ids)
