"""Regression tests for TtlCache: rejection contract, compaction, bounds."""

from repro.dns.cache import TtlCache
from repro.sim import Simulator


def make_cache(**kwargs):
    sim = Simulator(seed=3)
    return sim, TtlCache(sim, name="test-cache", **kwargs)


def test_put_rejects_non_positive_ttl():
    sim, cache = make_cache()
    assert cache.put("k", "v", 0) is False
    assert cache.put("k", "v", -5) is False
    assert cache.rejected_puts == 2
    assert cache.insertions == 0
    assert cache.get("k") is None
    events = sim.trace.of_kind("cache.put-rejected")
    assert len(events) == 2
    assert events[0].detail["key"] == "k"


def test_put_rejection_drops_stale_entry():
    sim, cache = make_cache()
    assert cache.put("k", "old", 10) is True
    # A zero-TTL re-put must not leave the old value reachable.
    assert cache.put("k", "new", 0) is False
    assert cache.peek("k") is None
    assert cache.get("k") is None
    assert cache.stored_entries == 0


def test_len_is_exact_and_frees_dead_entries():
    sim, cache = make_cache()
    for i in range(10):
        cache.put(i, i, ttl=1.0)
    sim.now = 2.0
    assert cache.stored_entries == 10  # dead but not yet swept
    assert len(cache) == 0             # len compacts...
    assert cache.stored_entries == 0   # ...and frees
    assert cache.expirations == 10


def test_compaction_bounds_memory_under_churn():
    """Keys never re-touched must still be freed (weakness W1 churn)."""
    sim, cache = make_cache()
    for i in range(20_000):
        cache.put(i, i, ttl=0.5)
        sim.now += 0.1  # each entry dies 5 puts later, and is never read
    assert cache.stored_entries < 2 * TtlCache.COMPACT_THRESHOLD


def test_max_entries_evicts_earliest_expiry():
    sim, cache = make_cache(max_entries=3)
    cache.put("a", 1, ttl=10)
    cache.put("b", 2, ttl=5)
    cache.put("c", 3, ttl=20)
    cache.put("d", 4, ttl=15)
    assert cache.evictions == 1
    assert cache.peek("b") is None     # closest to expiry went first
    assert {key for key in ("a", "c", "d") if cache.peek(key) is not None} \
        == {"a", "c", "d"}


def test_max_entries_prefers_compacting_expired():
    sim, cache = make_cache(max_entries=2)
    cache.put("old", 1, ttl=1)
    sim.now = 2.0
    cache.put("x", 2, ttl=10)
    cache.put("y", 3, ttl=10)
    # "old" was already dead, so room was made by compaction, not eviction.
    assert cache.evictions == 0
    assert cache.peek("x") == 2 and cache.peek("y") == 3


def test_hit_miss_counters_unchanged():
    sim, cache = make_cache()
    cache.put("k", "v", ttl=5)
    assert cache.get("k") == "v"
    assert cache.get("missing") is None
    sim.now = 6.0
    assert cache.get("k") is None
    assert (cache.hits, cache.misses, cache.expirations) == (1, 2, 1)
    assert cache.hit_ratio == 1 / 3


def test_put_reports_false_when_new_entry_is_the_victim():
    sim, cache = make_cache(max_entries=1)
    assert cache.put("long", 1, ttl=100) is True
    # The new short-TTL entry is itself closest to expiry, so it loses.
    assert cache.put("short", 2, ttl=1) is False
    assert cache.peek("short") is None
    assert cache.peek("long") == 1
    assert cache.evictions == 1
