"""Tests for links (delay, serialisation, queues, drops) and node dispatch."""

import pytest

from repro.net.errors import PortInUseError
from repro.net.host import Host
from repro.net.link import Link, connect
from repro.net.packet import udp_packet
from repro.net.router import Router
from repro.sim import Simulator


def two_hosts(sim, delay=0.01, rate_bps=None, queue_capacity=1000):
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    iface_a = a.add_interface("eth0")
    iface_b = b.add_interface("eth0")
    connect(sim, iface_a, iface_b, delay=delay, rate_bps=rate_bps,
            queue_capacity=queue_capacity)
    a.fib.add("0.0.0.0/0", iface_a)
    b.fib.add("0.0.0.0/0", iface_b)
    return a, b


def test_packet_arrives_after_propagation_delay():
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.025)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    a.send(udp_packet(a.address, b.address, 1000, 7))
    sim.run()
    assert arrivals == [pytest.approx(0.025)]


def test_serialisation_delay_with_finite_rate():
    sim = Simulator()
    # 1000-byte packet at 1 Mbit/s -> 8 ms serialisation + 1 ms propagation.
    a, b = two_hosts(sim, delay=0.001, rate_bps=1_000_000)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    a.send(udp_packet(a.address, b.address, 1, 7, payload_bytes=1000 - 28))
    sim.run()
    assert arrivals == [pytest.approx(0.009)]


def test_queueing_back_to_back_packets():
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.0, rate_bps=8_000)  # 1 byte per ms
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    for _ in range(3):
        a.send(udp_packet(a.address, b.address, 1, 7, payload_bytes=100 - 28))
    sim.run()
    # Each 100-byte packet takes 100 ms to serialise; they queue in FIFO order.
    assert arrivals == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]


def test_tail_drop_when_queue_full():
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.0, rate_bps=8_000, queue_capacity=1)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    accepted = [a.send(udp_packet(a.address, b.address, 1, 7, payload_bytes=72))
                for _ in range(5)]
    sim.run()
    # One in flight + one queued; the rest tail-dropped.
    assert accepted == [True, True, False, False, False]
    assert len(arrivals) == 2
    link = a.interfaces["eth0"].link
    assert link.stats.drops == 3


def test_link_down_drops():
    sim = Simulator()
    a, b = two_hosts(sim)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    a.interfaces["eth0"].link.up = False
    assert a.send(udp_packet(a.address, b.address, 1, 7)) is False
    sim.run()
    assert arrivals == []


def test_link_stats_accumulate():
    sim = Simulator()
    a, b = two_hosts(sim)
    b.bind_udp(7, lambda packet, node: None)
    for _ in range(4):
        a.send(udp_packet(a.address, b.address, 1, 7, payload_bytes=100))
    sim.run()
    link = a.interfaces["eth0"].link
    assert link.stats.tx_packets == 4
    assert link.stats.tx_bytes == 4 * 128


def _flow_packet(a, b, flow_id, payload=72):
    return udp_packet(a.address, b.address, 5000, 7, payload_bytes=payload,
                      meta={"flow_id": flow_id})


def test_per_flow_byte_accounting_conserves():
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.0, rate_bps=8_000, queue_capacity=1)
    b.bind_udp(7, lambda packet, node: None)
    for _ in range(5):
        a.send(_flow_packet(a, b, flow_id=1))
    a.send(_flow_packet(a, b, flow_id=2))
    sim.run()
    stats = a.interfaces["eth0"].link.stats
    # Flow 1: one in serialisation + one queued accepted; three tail-dropped.
    account = stats.flows[1]
    assert account.offered == 5 * 100
    assert account.delivered == 2 * 100
    assert account.dropped == 3 * 100
    assert account.in_flight == 0
    # Flow 2 arrived after the queue freed nothing: tail-dropped whole.
    assert stats.flows[2].dropped == 100
    # Totals line up with the per-flow accounts (all packets carried ids).
    assert stats.bytes_offered == 6 * 100
    assert stats.bytes_offered == stats.bytes_delivered + stats.bytes_dropped
    assert stats.bytes_in_flight == 0
    assert stats.conservation_violations(drained=True) == []


def test_bytes_in_flight_while_transmitting():
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.0, rate_bps=8_000)
    b.bind_udp(7, lambda packet, node: None)
    a.send(_flow_packet(a, b, flow_id=9))
    link = a.interfaces["eth0"].link
    sim.run(until=0.05)  # mid-serialisation (100 bytes take 100 ms)
    assert link.stats.bytes_in_flight == 100
    assert link.stats.flows[9].in_flight == 100
    assert link.stats.conservation_violations() == []          # legal in flight
    assert link.stats.conservation_violations(drained=True) != []  # not drained
    sim.run()
    assert link.stats.bytes_in_flight == 0


def test_down_link_drop_mid_flight_accounted():
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.05)
    b.bind_udp(7, lambda packet, node: None)
    a.send(_flow_packet(a, b, flow_id=3))
    link = a.interfaces["eth0"].link
    sim.run(until=0.01)      # packet is propagating
    link.up = False          # fails before delivery
    sim.run()
    assert link.stats.flows[3].dropped == 100
    assert link.stats.bytes_in_flight == 0
    assert link.stats.conservation_violations(drained=True) == []


def test_encapsulated_packets_account_to_inner_flow():
    from repro.net.packet import Packet, IPv4Header, PROTO_IPIP

    sim = Simulator()
    a, b = two_hosts(sim)
    inner = _flow_packet(a, b, flow_id=77)
    outer = Packet(headers=[IPv4Header(src=a.address, dst=b.address,
                                       proto=PROTO_IPIP)], payload=inner)
    a.send(outer)
    sim.run()
    stats = a.interfaces["eth0"].link.stats
    assert 77 in stats.flows
    assert stats.flows[77].offered == outer.size_bytes


def test_utilization_windows_split_busy_time():
    sim = Simulator()
    # 8000 bit/s -> a 100-byte packet serialises in 0.1 s.
    a, b = two_hosts(sim, delay=0.0, rate_bps=8_000)
    b.bind_udp(7, lambda packet, node: None)
    link = a.interfaces["eth0"].link
    assert link.stats.window_width == 1.0
    # One packet in window 0, then two back-to-back starting at t=1.95:
    # the second transmission spans the window-1/window-2 boundary.
    a.send(_flow_packet(a, b, flow_id=1))
    sim.call_in(1.95, lambda: (a.send(_flow_packet(a, b, flow_id=1)),
                               a.send(_flow_packet(a, b, flow_id=1))))
    sim.run()
    series = dict((start, (busy, volume)) for start, busy, volume
                  in link.stats.utilization_series())
    assert series[0.0] == (pytest.approx(0.1), 100)
    # First back-to-back packet: bytes land at its 1.95 start, busy splits
    # 0.05 s before the boundary, 0.05 s after; the queued packet starts
    # (and lands its bytes) at 2.05, keeping window 2 busy until 2.15.
    assert series[1.0] == (pytest.approx(0.05), 100)
    assert series[2.0][0] == pytest.approx(0.15)
    assert series[2.0][1] == 100
    assert link.stats.peak_utilization() == pytest.approx(0.15)
    assert link.stats.busy_time == pytest.approx(0.3)


def test_link_stats_snapshot_round_trip():
    """Every stats field — busy time, windows, per-flow accounts — restores."""
    sim = Simulator()
    a, b = two_hosts(sim, delay=0.0, rate_bps=8_000, queue_capacity=1)
    b.bind_udp(7, lambda packet, node: None)
    link = a.interfaces["eth0"].link
    for _ in range(4):                       # includes a tail drop
        a.send(_flow_packet(a, b, flow_id=5))
    sim.run()
    checkpoint = link.snapshot_state()
    frozen = link.stats.snapshot_state()

    for _ in range(3):                       # dirty everything again
        a.send(_flow_packet(a, b, flow_id=6))
    link.up = False
    a.send(_flow_packet(a, b, flow_id=6))
    sim.run()
    assert link.stats.snapshot_state() != frozen

    link.restore_state(checkpoint)
    assert link.stats.snapshot_state() == frozen
    assert link.up is True
    stats = link.stats
    assert 6 not in stats.flows
    # One transmitted + one queued delivered; two tail-dropped.
    assert stats.flows[5].as_tuple() == (400, 200, 200)
    assert stats.busy_time == pytest.approx(0.2)
    assert stats.windows and stats.conservation_violations(drained=True) == []
    # The restored copies are independent: mutating live state must not
    # reach back into the frozen checkpoint.
    stats.flows[5].delivered += 1
    stats.windows[0][1] += 1
    assert link.snapshot_state() != checkpoint


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, None, None, delay=-1.0)


def test_node_local_delivery_without_wire():
    sim = Simulator()
    host = Host(sim, "lonely", address="10.0.0.1")
    seen = []
    host.bind_udp(9, lambda packet, node: seen.append(packet.udp.dport))
    host.send(udp_packet(host.address, host.address, 1, 9))
    sim.run()
    assert seen == [9]


def test_node_no_route_counts_drop():
    sim = Simulator()
    host = Host(sim, "h", address="10.0.0.1")
    assert host.send(udp_packet(host.address, "11.0.0.1", 1, 2)) is False
    assert host.dropped_packets == 1


def test_udp_port_rebind_rejected():
    sim = Simulator()
    host = Host(sim, "h", address="10.0.0.1")
    host.bind_udp(53, lambda packet, node: None)
    with pytest.raises(PortInUseError):
        host.bind_udp(53, lambda packet, node: None)
    host.unbind_udp(53)
    host.bind_udp(53, lambda packet, node: None)


def test_unclaimed_packet_traced():
    sim = Simulator()
    a, b = two_hosts(sim)
    a.send(udp_packet(a.address, b.address, 1, 9999))
    sim.run()
    assert b.dropped_packets == 1
    assert len(sim.trace.of_kind("node.unclaimed")) == 1


def test_base_node_does_not_forward():
    sim = Simulator()
    a, b = two_hosts(sim)
    # Address 10.0.0.3 is not local to b; base nodes refuse to forward.
    a.send(udp_packet(a.address, "10.0.0.3", 1, 7))
    sim.run()
    assert b.dropped_packets == 1
    assert len(sim.trace.of_kind("node.no-forward")) == 1


def router_chain(sim, hops, delay=0.01):
    """a -- r1 -- ... -- rN -- b, with /32 routes end to end."""
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    routers = [Router(sim, f"r{i}") for i in range(hops)]
    chain = [a, *routers, b]
    for left, right in zip(chain, chain[1:], strict=False):
        iface_l = left.add_interface(f"to-{right.name}")
        iface_r = right.add_interface(f"to-{left.name}")
        connect(sim, iface_l, iface_r, delay=delay)
    for i, node in enumerate(chain[:-1]):
        node.fib.add("10.0.0.2/32", node.interfaces[f"to-{chain[i + 1].name}"])
    for i, node in enumerate(chain[1:], start=1):
        node.fib.add("10.0.0.1/32", node.interfaces[f"to-{chain[i - 1].name}"])
    return a, b, routers


def test_router_forwards_across_chain():
    sim = Simulator()
    a, b, _routers = router_chain(sim, hops=3, delay=0.01)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append((sim.now, packet.ip.ttl)))
    a.send(udp_packet(a.address, b.address, 1, 7))
    sim.run()
    when, ttl = arrivals[0]
    assert when == pytest.approx(0.04)  # 4 links x 10 ms
    assert ttl == 64 - 3  # one decrement per router


def test_ttl_expiry_drops_packet():
    sim = Simulator()
    a, b, routers = router_chain(sim, hops=3)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    a.send(udp_packet(a.address, b.address, 1, 7, ttl=2))
    sim.run()
    assert arrivals == []
    assert len(sim.trace.of_kind("router.ttl-expired")) == 1


def test_forward_tap_can_consume():
    sim = Simulator()
    a, b, routers = router_chain(sim, hops=1)
    tapped = []
    routers[0].add_forward_tap(lambda packet, node: tapped.append(packet.uid) or True)
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    a.send(udp_packet(a.address, b.address, 1, 7))
    sim.run()
    assert len(tapped) == 1
    assert arrivals == []  # consumed by the tap


def test_forward_tap_observe_only():
    sim = Simulator()
    a, b, routers = router_chain(sim, hops=1)
    tapped = []
    routers[0].add_forward_tap(lambda packet, node: (tapped.append(packet.uid), False)[1])
    arrivals = []
    b.bind_udp(7, lambda packet, node: arrivals.append(sim.now))
    a.send(udp_packet(a.address, b.address, 1, 7))
    sim.run()
    assert len(tapped) == 1
    assert len(arrivals) == 1
