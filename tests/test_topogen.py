"""Tests for topology families: TopologySpec, tiered generation, addressing."""

import pytest

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.routing import HierarchicalRoutingPlan, RoutingPlan
from repro.net.topogen import IX_PREFIX, MAX_PROVIDERS, TopologySpec, build
from repro.net.topology import build_fig1_topology, build_topology
from repro.sim import Simulator


def _fib_snapshot(router):
    return [(str(entry.prefix), entry.interface.name,
             getattr(entry.next_hop, "name", None), entry.metric)
            for entry in router.fib.entries()]


def _world_snapshot(topology):
    return [(node.name, _fib_snapshot(node)) for node in topology.all_nodes()]


def _tiered(seed=11, **spec_kwargs):
    sim = Simulator(seed=seed, tracing=False)
    spec_kwargs.setdefault("family", "tiered")
    spec_kwargs.setdefault("num_sites", 10)
    return build(sim, TopologySpec(**spec_kwargs))


# --------------------------------------------------------------------- #
# TopologySpec and compat wrappers
# --------------------------------------------------------------------- #

def test_spec_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown topology family"):
        TopologySpec(family="ring")


def test_spec_normalizes_sequences_and_stays_hashable():
    spec = TopologySpec(wan_delay_range=[0.01, 0.02],
                        provider_assignment=[[0, 1], [2, 3]])
    assert spec.wan_delay_range == (0.01, 0.02)
    assert spec.provider_assignment == ((0, 1), (2, 3))
    assert hash(spec)  # frozen spec rides inside memo dicts / world keys


def test_spec_family_defaults_for_attach_bias():
    assert TopologySpec(family="tiered").effective_bias() == 0.0
    assert TopologySpec(family="caida").effective_bias() == 1.2
    assert TopologySpec(family="caida",
                        stub_attach_bias=0.5).effective_bias() == 0.5


def test_build_topology_wrapper_matches_spec_build():
    """The legacy kwarg entry point is a pure veneer over build(spec)."""
    legacy = build_topology(Simulator(seed=7, tracing=False),
                            num_sites=4, num_providers=5)
    spec = TopologySpec(family="flat", num_sites=4, num_providers=5)
    fresh = build(Simulator(seed=7, tracing=False), spec)
    assert _world_snapshot(legacy) == _world_snapshot(fresh)


def test_fig1_wrapper_matches_spec_build():
    legacy = build_fig1_topology(Simulator(seed=7, tracing=False))
    fresh = build(Simulator(seed=7, tracing=False),
                  TopologySpec(family="fig1"))
    assert _world_snapshot(legacy) == _world_snapshot(fresh)
    assert fresh.site_s is fresh.sites[0]
    assert fresh.site_d is fresh.sites[1]
    assert fresh.site_s.provider_ids == [0, 1]
    assert fresh.site_d.provider_ids == [2, 3]


def test_flat_family_has_no_tier_structure():
    sim = Simulator(seed=3, tracing=False)
    topology = build(sim, TopologySpec(family="flat", num_sites=3))
    assert topology.tier_layout is None
    assert topology.ix_routers == []
    assert isinstance(topology.routing_plan(), RoutingPlan)


# --------------------------------------------------------------------- #
# Tiered structure
# --------------------------------------------------------------------- #

def test_tiers_partition_the_providers():
    topology = _tiered()
    layout = topology.tier_layout
    assert len(layout.tiers) == 3
    flattened = [pid for tier in layout.tiers for pid in tier]
    assert sorted(flattened) == list(range(len(topology.providers)))
    assert len(set(flattened)) == len(flattened)


def test_tier0_is_a_full_clique():
    topology = _tiered()
    core = [topology.providers[pid] for pid in topology.tier_layout.tiers[0]]
    for a in core:
        peers = {iface.peer.node
                 for iface in a.interfaces.values() if iface.peer is not None}
        for b in core:
            if b is not a:
                assert b in peers, f"{a.name} not adjacent to {b.name}"


def test_every_transit_provider_multihomes_upward():
    topology = _tiered()
    layout = topology.tier_layout
    for tier_index in (1, 2):
        parent_tier = set(layout.tiers[tier_index - 1])
        for pid in layout.tiers[tier_index]:
            uplinks = layout.uplinks[pid]
            assert 1 <= len(uplinks) <= 2
            for uplink in uplinks:
                assert uplink.parent_id in parent_tier
                assert uplink.up_iface.node is topology.providers[pid]
                assert (uplink.down_iface.node
                        is topology.providers[uplink.parent_id])


def test_ix_routers_connect_transit_members():
    topology = _tiered()
    layout = topology.tier_layout
    transit = set(layout.tiers[1]) | set(layout.tiers[2])
    assert len(layout.ixps) >= 1
    assert len(topology.ix_routers) == len(layout.ixps)
    for ixp in layout.ixps:
        assert len(ixp.members) >= 2
        member_ids = [m.provider_id for m in ixp.members]
        assert len(set(member_ids)) == len(member_ids)
        for member in ixp.members:
            assert member.provider_id in transit
            assert member.ix_iface.node is ixp.router
            assert (member.provider_iface.node
                    is topology.providers[member.provider_id])


def test_stub_sites_multihome_to_the_edge():
    topology = _tiered(num_sites=12, providers_per_site=2)
    transit = (set(topology.tier_layout.tiers[1])
               | set(topology.tier_layout.tiers[2]))
    for site in topology.sites:
        assert len(site.provider_ids) == 2
        assert len(set(site.provider_ids)) == 2
        assert set(site.provider_ids) <= transit  # never homed on the core


def test_ix_homed_sites_pick_providers_from_one_exchange():
    topology = _tiered(num_sites=40, ix_site_fraction=1.0)
    memberships = [{m.provider_id for m in ixp.members}
                   for ixp in topology.tier_layout.ixps]
    for site in topology.sites:
        assert any(set(site.provider_ids) <= members
                   for members in memberships), \
            f"{site.name} providers {site.provider_ids} span exchanges"


def test_explicit_tier_sizes_and_provider_cap():
    topology = _tiered(tier0=2, tier1=3, tier2=5)
    assert tuple(len(t) for t in topology.tier_layout.tiers) == (2, 3, 5)
    with pytest.raises(ValueError, match=f"{MAX_PROVIDERS}-provider"):
        _tiered(tier0=100, tier1=100, tier2=100)


# --------------------------------------------------------------------- #
# Addressing and routing
# --------------------------------------------------------------------- #

def test_address_plan_extension():
    topology = _tiered()
    for p, provider in enumerate(topology.providers):
        assert provider.is_local(IPv4Address(f"{10 + p}.0.0.1"))
    for i, ix_router in enumerate(topology.ix_routers):
        address = ix_router.primary_address()
        assert IX_PREFIX.contains(address)
        assert address == IX_PREFIX.address_at(i * 256 + 1)
    # IX addresses are switching-fabric only: nothing routes toward 9/8.
    for node in topology.all_nodes():
        for entry in node.fib.entries():
            assert not str(entry.prefix).startswith("9.")


def test_tiered_routing_is_hierarchical_and_complete():
    topology = _tiered()
    plan = topology.routing_plan()
    assert isinstance(plan, HierarchicalRoutingPlan)
    for a in topology.providers:
        for b in topology.providers:
            delay = plan.delay(a, b)
            assert delay is not None, f"{a.name} cannot reach {b.name}"
            assert (delay == 0.0) == (a is b)
    assert topology.provider_mesh_delay(topology.providers[0],
                                        topology.providers[-1]) > 0.0


def test_site_index_lookups():
    topology = _tiered(num_sites=12)
    for site in topology.sites:
        assert topology.site_of_eid(site.eid_prefix.address_at(10)) is site
        for rloc in site.rlocs():
            assert topology.site_of_rloc(rloc) is site
    assert topology.site_of_eid(IPv4Address("8.8.8.8")) is None
    assert topology.site_of_rloc(IPv4Address("8.8.8.8")) is None


def test_incremental_install_on_tiered_world():
    """attach_infra_host + install delta keeps the memoized plan."""
    topology = _tiered()
    plan = topology.routing_plan()
    topology.attach_infra_host(0, "extra", "203.0.200.9")
    topology.install_global_routes()
    assert topology.routing_plan() is plan  # attachments don't touch the mesh
    host = topology.infra_hosts["extra"]
    prefix = IPv4Prefix(int(host.address), 32)
    # Every core router carries the /32 (the default-free zone holds all
    # non-aggregatable prefixes), so any stub can reach it via defaults.
    core = [topology.providers[pid] for pid in topology.tier_layout.tiers[0]]
    for router in core:
        assert any(e.prefix == prefix for e in router.fib.entries()), \
            f"core router {router.name} misses the infra /32"


# --------------------------------------------------------------------- #
# Determinism and the caida skew
# --------------------------------------------------------------------- #

def test_tiered_build_is_deterministic():
    assert (_world_snapshot(_tiered(seed=23))
            == _world_snapshot(_tiered(seed=23)))
    assert (_world_snapshot(_tiered(seed=23))
            != _world_snapshot(_tiered(seed=24)))


def test_caida_skews_stub_attachment():
    """Megaproviders attract a larger share of customers under caida."""
    def degree_spread(family):
        sim = Simulator(seed=31, tracing=False)
        topology = build(sim, TopologySpec(family=family, num_sites=60))
        counts = {}
        for site in topology.sites:
            for pid in site.provider_ids:
                counts[pid] = counts.get(pid, 0) + 1
        values = sorted(counts.values(), reverse=True)
        return max(values) / (sum(values) / len(values))

    assert degree_spread("caida") > degree_spread("tiered")
