"""Tests for the ``repro analyze`` invariant-checker suite.

The fixture corpus under ``tests/analysis_fixtures/`` contains one
deliberately-bad module per rule; each rule's test asserts the *exact*
finding (rule id, file, line) so a checker that drifts — missing the bug,
or flagging a different line — fails loudly.  The clean-tree test is the
contract the CI ``analyze`` job enforces: the shipped source produces zero
findings.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, load_default_rules
from repro.analysis.cli import main as analyze_main

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
SRC_TREE = Path(__file__).resolve().parent.parent / "src" / "repro"


def findings_for(name, rules=None):
    return analyze_paths([str(FIXTURES / name)], rules=rules)


def locations(findings):
    return [(finding.rule_id, finding.line) for finding in findings]


# --------------------------------------------------------------------- #
# One exact-finding test per rule
# --------------------------------------------------------------------- #

def test_snap01_flags_uncaptured_init_attribute():
    findings = findings_for("bad_snap01.py")
    assert locations(findings) == [("SNAP01", 12)]
    (finding,) = findings
    assert "self.dropped" in finding.message or "dropped" in finding.message
    assert "LeakyCounter" in finding.message
    assert "_SNAPSHOT_EXEMPT" in finding.hint


def test_snap02_flags_written_key_never_read():
    findings = findings_for("bad_snap02.py")
    assert locations(findings) == [("SNAP02", 10)]
    (finding,) = findings
    assert "'total'" in finding.message
    assert "never reads" in finding.message


def test_det01_flags_every_entropy_source():
    findings = findings_for("bad_det01.py")
    assert locations(findings) == [
        ("DET01", 7),    # random.random()
        ("DET01", 8),    # time.time()
        ("DET01", 9),    # uuid.uuid4()
        ("DET01", 10),   # argless random.Random() — OS-seeded
        ("DET01", 14),   # sorted(..., key=id)
    ]
    messages = [finding.message for finding in findings]
    assert "random.random" in messages[0]
    assert "time.time" in messages[1]
    assert "id() used as a sort key" in messages[4]


def test_det02_flags_set_order_leaks():
    findings = findings_for("bad_det02.py")
    assert locations(findings) == [
        ("DET02", 5),    # for host in set(hosts): sim.process(...)
        ("DET02", 10),   # ",".join({...})
        ("DET02", 15),   # list(set-bound local)
    ]
    assert "'process(...)'" in findings[0].message
    assert "sorted" in findings[0].hint


def test_per01_flags_perpetual_generator_loop():
    findings = findings_for("bad_per01.py")
    assert locations(findings) == [("PER01", 5)]
    assert "sim.periodic" in findings[0].hint


# --------------------------------------------------------------------- #
# Suppression and sanctioned idioms
# --------------------------------------------------------------------- #

def test_clean_fixture_pragma_and_seeded_random_pass():
    assert findings_for("clean_allowed.py") == []


def test_pragma_does_not_suppress_other_rules():
    # The pragma on clean_allowed.py line 7 names DET01 only; running just
    # SNAP01 over the same file must still inspect it (and find nothing,
    # because the class is properly captured).
    assert findings_for("clean_allowed.py", rules=["SNAP01"]) == []


def test_rule_filter_runs_only_requested_rules():
    findings = findings_for("bad_det01.py", rules=["DET02"])
    assert findings == []


def test_unknown_rule_id_raises():
    load_default_rules()
    with pytest.raises(ValueError):
        analyze_paths([str(FIXTURES)], rules=["NOPE99"])


# --------------------------------------------------------------------- #
# The shipped tree is clean (the CI analyze-job contract)
# --------------------------------------------------------------------- #

def test_shipped_tree_has_zero_findings():
    assert analyze_paths([str(SRC_TREE)]) == []


# --------------------------------------------------------------------- #
# CLI exit codes and output
# --------------------------------------------------------------------- #

def test_cli_exit_zero_on_clean_tree(capsys):
    assert analyze_main([str(FIXTURES / "clean_allowed.py")]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exit_one_with_precise_locations(capsys):
    assert analyze_main([str(FIXTURES / "bad_per01.py")]) == 1
    out = capsys.readouterr().out
    assert "bad_per01.py:5: PER01" in out
    assert "1 finding" in out


def test_cli_json_format(capsys):
    import json

    assert analyze_main(["--format", "json",
                         str(FIXTURES / "bad_snap01.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload == [{
        "rule": "SNAP01",
        "path": str(FIXTURES / "bad_snap01.py"),
        "line": 12,
        "message": payload[0]["message"],
        "hint": payload[0]["hint"],
    }]


def test_cli_unknown_rule_is_usage_error(capsys):
    assert analyze_main(["--rules", "BOGUS", str(FIXTURES)]) == 2
    assert "BOGUS" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(capsys):
    # A typo'd tree must not report "0 findings" and exit 0 — that would
    # silently defeat the CI analyze gate.
    assert analyze_main([str(FIXTURES / "no_such_dir")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert analyze_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SNAP01", "SNAP02", "DET01", "DET02", "PER01"):
        assert rule_id in out


def test_repro_cli_dispatches_analyze(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["analyze", str(FIXTURES / "bad_det02.py")]) == 1
    assert "DET02" in capsys.readouterr().out
