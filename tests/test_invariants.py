"""Cross-cutting invariants over randomised scenarios.

These properties must hold for *any* seed and any control plane:
conservation of packets *and bytes*, cache-counter consistency, trace
determinism, and the PCE's zero-loss guarantee.
"""

from dataclasses import replace

import pytest

from repro.experiments import ScenarioConfig, WorkloadConfig, build_scenario, run_workload
from repro.experiments.sweep import PRESETS, _apply_failures, expand_grid
from repro.experiments.worldbuild import build_world


def run_world(control_plane, seed, num_sites=4, num_flows=12, miss_policy="queue"):
    config = ScenarioConfig(control_plane=control_plane, num_sites=num_sites,
                            seed=seed, miss_policy=miss_policy)
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=num_flows,
                                                    arrival_rate=8.0))
    return scenario, records


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("control_plane", ["pce", "alt", "nerd", "plain"])
def test_packet_conservation(control_plane, seed):
    """Delivered never exceeds sent; every delivery maps to a real flow."""
    scenario, records = run_world(control_plane, seed)
    for record in records:
        assert 0 <= record.packets_delivered <= record.packets_sent
    total_delivered = sum(sink.received for sink in scenario.udp_sinks.values())
    by_flow_total = sum(count for sink in scenario.udp_sinks.values()
                        for count in sink.by_flow.values())
    assert by_flow_total == total_delivered


@pytest.mark.parametrize("seed", [5, 6, 7, 8])
def test_pce_never_loses_packets(seed):
    """The headline guarantee, across seeds."""
    scenario, records = run_world("pce", seed, num_sites=6, num_flows=20)
    assert all(r.packets_lost == 0 for r in records if not r.failed)
    assert scenario.miss_policy.stats.dropped == 0
    assert scenario.miss_policy.stats.queued == 0


@pytest.mark.parametrize("control_plane", ["pce", "alt", "cons", "nerd"])
def test_cache_counters_consistent(control_plane):
    scenario, _records = run_world(control_plane, seed=9)
    for xtr_list in scenario.xtrs_by_site.values():
        for xtr in xtr_list:
            cache = xtr.map_cache
            assert cache.hits >= 0 and cache.misses >= 0
            assert cache.installs >= len(cache)
            assert 0.0 <= cache.hit_ratio <= 1.0


@pytest.mark.parametrize("control_plane", ["pce", "alt"])
def test_trace_level_determinism(control_plane):
    """Identical seeds produce byte-identical event traces."""

    def signature():
        scenario, _records = run_world(control_plane, seed=11)
        # Packet uids / flow ids are process-global counters, so they differ
        # between two runs in one process; everything else must match.
        volatile = {"uid"}
        return [(round(r.time, 9), r.source, r.kind,
                 tuple(sorted((k, v) for k, v in r.detail.items()
                              if k not in volatile)))
                for r in scenario.sim.trace.records]

    assert signature() == signature()


def test_different_seeds_differ():
    _s1, records_a = run_world("alt", seed=21)
    _s2, records_b = run_world("alt", seed=22)
    a = [(str(r.source), str(r.destination)) for r in records_a]
    b = [(str(r.source), str(r.destination)) for r in records_b]
    assert a != b


def test_ttl_never_negative_anywhere():
    scenario, _records = run_world("alt", seed=13)
    for record in scenario.sim.trace.records:
        assert record.time >= 0


def test_large_scale_smoke():
    """16 sites, 3 providers each, 80 flows: completes and stays consistent."""
    config = ScenarioConfig(control_plane="pce", num_sites=16, num_providers=6,
                            providers_per_site=3, seed=31)
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=80, arrival_rate=40.0))
    ok = [r for r in records if not r.failed]
    assert len(ok) == 80
    assert all(r.packets_lost == 0 for r in ok)
    # Every site that sourced flows got its mappings pushed to all its ITRs.
    cp = scenario.control_plane
    assert cp.total_push_messages() >= len(
        {r.source for r in ok})  # at least one push per active source host


# --------------------------------------------------------------------- #
# Byte conservation: offered == delivered + dropped, per link, per flow
# --------------------------------------------------------------------- #

#: Tier-1-sized stand-ins for every preset: same axes and knobs, shrunk
#: site counts / seeds / flow counts so the invariant pass stays fast.
_PRESET_SHRINK = {
    "smoke": dict(seeds=(1,)),
    "baselines": dict(site_counts=(4,), seeds=(11,), zipf_values=(1.2,),
                      num_flows=16),
    "scale": dict(site_counts=(4,), seeds=(11,), num_flows=16,
                  num_providers=4, pacings=("constant", "fluid"),
                  workload_overrides={"tcp_data_burst": True,
                                      "fluid_threshold": 3.0}),
    "failover": dict(seeds=(21,), num_flows=16,
                     pacings=("constant", "fluid"),
                     workload_overrides={"fluid_threshold": 3.0}),
    "shaped": dict(site_counts=(4,), seeds=(31,), num_flows=16),
    "megaflow": dict(num_flows=600, arrival_rate=300.0),
    "tiered": dict(site_counts=(4,), seeds=(51,), num_flows=16,
                   topologies=("flat", "tiered")),
}


def test_every_preset_has_an_invariant_stand_in():
    assert sorted(_PRESET_SHRINK) == sorted(PRESETS)


def _preset_cells(name):
    grid = replace(PRESETS[name], **_PRESET_SHRINK[name])
    return expand_grid(grid)


def _assert_bytes_conserved(scenario, drained):
    accounting = scenario.byte_accounting(drained=drained)
    assert accounting["violations"] == []
    assert accounting["bytes_offered"] == accounting["bytes_delivered"] \
        + accounting["bytes_dropped"] + accounting["bytes_in_flight"]
    if drained:
        assert accounting["bytes_in_flight"] == 0


@pytest.mark.parametrize("preset", sorted(_PRESET_SHRINK))
def test_byte_conservation_across_presets(preset):
    """For every link and every flow, offered == delivered + dropped.

    Checked right at the workload deadline (bytes still in flight are
    legal, a negative residue anywhere is not) and again after a full
    foreground drain (nothing may remain in flight) — across the scale,
    failover and shaped preset families, so constant spacing, TCP data
    bursts, mid-run link failures, heavy tails and shaped pacing all pass
    through the same conservation gate.
    """
    for cell in _preset_cells(preset):
        scenario = build_world(cell.scenario)
        _apply_failures(scenario, cell.failure)
        records = run_workload(scenario, cell.workload)
        _assert_bytes_conserved(scenario, drained=False)
        scenario.sim.run()  # drain in-flight deliveries and DNS retries
        _assert_bytes_conserved(scenario, drained=True)
        # Flow-level budgets: a completed flow sent exactly its budget,
        # a cut-off flow never more.
        for record in records:
            assert record.bytes_sent <= record.bytes_budget
            if not record.failed and record.flow_kind is not None:
                assert record.bytes_sent == record.bytes_budget


def test_byte_accounting_attributes_all_data_bytes_to_flows():
    """Per-flow accounts on first-hop links cover every data byte sent."""
    scenario, records = run_world("pce", seed=19)
    per_flow = {}
    for link in scenario.iter_links():
        for flow_id, account in link.stats.flows.items():
            per_flow[flow_id] = per_flow.get(flow_id, 0) + account.offered
    for record in records:
        if record.packets_sent:
            assert per_flow.get(record.flow_id, 0) > 0


def test_reverse_mappings_consistent_across_etrs():
    scenario, records = run_world("pce", seed=17, num_sites=3, num_flows=10)
    cp = scenario.control_plane
    # For every reverse announcement, all xTRs of the announcing site agree.
    for site in scenario.topology.sites:
        routers = cp.xtrs_by_site[site.index]
        for record in records:
            if record.failed or record.destination is None:
                continue
            if not site.eid_prefix.contains(record.destination):
                continue
            entries = [router.map_cache.peek(record.source) for router in routers]
            live = [entry for entry in entries if entry is not None]
            if live:
                rlocs = {entry.rlocs[0].address for entry in live}
                assert len(rlocs) == 1, "ETRs disagree on the reverse locator"
