"""Runtime cross-check of the snapshot contract's *inventory*.

The static SNAP01/SNAP02 checkers prove each component's checkpoint is
internally complete; this test proves the set of components is complete:
every class in the ``repro`` package that defines ``snapshot_state`` must
actually be reachable from :meth:`Scenario.stateful_components` in at least
one built world — otherwise worldbuild would silently never capture it and
a "restored" world would leak that component's state between runs.

Reachability is computed by walking the live object graph (attributes,
dict entries, sequence items) from every yielded component, across a set
of scenarios chosen to exercise all control planes and miss policies.
"""

import importlib
import pkgutil
from collections import deque

import repro
from repro.experiments.scenario import ScenarioConfig, build_scenario

#: Classes allowed to define snapshot_state without being reachable from
#: any scenario's stateful_components.  Keep empty unless a class has a
#: documented reason to opt out of worldbuild capture.
EXEMPT_CLASSES = frozenset()

#: One config per control plane, varying the miss policy so every policy
#: class is instantiated somewhere.
SCENARIO_CONFIGS = (
    ScenarioConfig(control_plane="pce", enable_probing=True),
    ScenarioConfig(control_plane="alt", miss_policy="queue"),
    ScenarioConfig(control_plane="cons", miss_policy="cp-data"),
    ScenarioConfig(control_plane="nerd", miss_policy="drop"),
)


def snapshot_classes_in_package():
    """Every class under ``repro`` whose own body defines snapshot_state."""
    classes = set()
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        module = importlib.import_module(info.name)
        for value in vars(module).values():
            if not isinstance(value, type) or value.__module__ != info.name:
                continue
            if "snapshot_state" in vars(value):
                classes.add(value)
    return classes


def _child_objects(obj):
    if isinstance(obj, dict):
        yield from obj.keys()
        yield from obj.values()
        return
    if isinstance(obj, (list, tuple, set, frozenset, deque)):
        yield from obj
        return
    if not type(obj).__module__.startswith("repro"):
        return
    if hasattr(obj, "__dict__"):
        yield from vars(obj).values()
    for klass in type(obj).__mro__:
        for slot in vars(klass).get("__slots__", ()):
            try:
                yield getattr(obj, slot)
            except AttributeError:
                pass


def reachable_snapshot_classes(scenario):
    """Snapshot-defining classes reachable from stateful_components."""
    found = set()
    seen = set()
    stack = list(scenario.stateful_components())
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        cls = type(obj)
        if cls.__module__.startswith("repro"):
            for klass in cls.__mro__:
                if "snapshot_state" in vars(klass):
                    found.add(klass)
        stack.extend(_child_objects(obj))
    return found


def test_every_snapshot_class_is_reachable_from_some_scenario():
    declared = snapshot_classes_in_package()
    assert declared, "inventory scan found no snapshot classes at all"
    reachable = set()
    for config in SCENARIO_CONFIGS:
        reachable |= reachable_snapshot_classes(build_scenario(config))
    unreachable = declared - reachable - EXEMPT_CLASSES
    names = sorted(f"{cls.__module__}.{cls.__qualname__}"
                   for cls in unreachable)
    assert not unreachable, (
        "classes define snapshot_state but no scenario's "
        f"stateful_components ever reaches an instance: {names} — wire "
        "them into Scenario.stateful_components (or a captured component) "
        "or add them to EXEMPT_CLASSES with a reason")


def test_exemption_list_stays_minimal():
    # Exemptions must name real classes that do define snapshot_state;
    # stale entries (renamed or fixed classes) must be pruned.
    declared = snapshot_classes_in_package()
    for cls in EXEMPT_CLASSES:
        assert cls in declared, f"stale exemption: {cls!r}"
