"""Tests for RLOC probing, failover and recovery."""

import pytest

from repro.experiments.scenario import FLOW_UDP_PORT, ScenarioConfig, build_scenario
from repro.lisp.mappings import MappingRecord, RlocEntry
from repro.net.addresses import IPv4Address
from repro.net.packet import udp_packet


def make_world(enable_probing=True, probe_period=0.2, seed=19,
               probe_timeout=0.15):
    config = ScenarioConfig(control_plane="pce", fig1=True, seed=seed,
                            irc_policy="primary", enable_probing=enable_probing,
                            probe_period=probe_period,
                            probe_timeout=probe_timeout)
    return build_scenario(config)


def start_flow(scenario):
    sim = scenario.sim
    site_s, site_d = scenario.topology.sites
    source = site_s.hosts[0]
    stub = scenario.stub_for(source, site_s)

    def flow():
        address, _ = yield stub.lookup(scenario.host_name(site_d, 0))
        source.send(udp_packet(source.address, address, 5000, FLOW_UDP_PORT))

    sim.process(flow())
    sim.run(until=2.0)
    return site_s, site_d, source


def test_with_preferred_rloc_promotes_and_keeps_backups():
    record = MappingRecord("100.0.1.0/24",
                           (RlocEntry("10.1.1.1", 1, 50), RlocEntry("11.1.1.1", 2, 50)))
    promoted = record.with_preferred_rloc("11.1.1.1")
    assert len(promoted.rlocs) == 2
    assert promoted.best_rloc().address == IPv4Address("11.1.1.1")
    with pytest.raises(ValueError):
        record.with_preferred_rloc("12.0.0.1")


def test_best_rloc_respects_liveness_predicate():
    record = MappingRecord("100.0.1.0/24",
                           (RlocEntry("10.1.1.1", 0, 50), RlocEntry("11.1.1.1", 1, 50)))
    down = {IPv4Address("10.1.1.1")}
    best = record.best_rloc(liveness=lambda address: address not in down)
    assert best.address == IPv4Address("11.1.1.1")
    down.add(IPv4Address("11.1.1.1"))
    assert record.best_rloc(liveness=lambda address: address not in down) is None


def test_probes_flow_and_all_rlocs_stay_up():
    scenario = make_world()
    start_flow(scenario)
    scenario.sim.run(until=4.0)
    site_s = scenario.topology.sites[0]
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    assert prober.probes_sent > 0
    assert prober.replies_received > 0
    assert prober.down == set()


def test_pushed_mapping_includes_backups_when_probing():
    scenario = make_world(enable_probing=True)
    site_s, site_d, _source = start_flow(scenario)
    itr = scenario.control_plane.xtrs_by_site[site_s.index][0]
    mapping = itr.map_cache.peek(site_d.hosts[0].address)
    assert len(mapping.rlocs) == len(site_d.xtrs)


def test_pushed_mapping_single_rloc_without_probing():
    scenario = make_world(enable_probing=False)
    site_s, site_d, _source = start_flow(scenario)
    itr = scenario.control_plane.xtrs_by_site[site_s.index][0]
    mapping = itr.map_cache.peek(site_d.hosts[0].address)
    assert len(mapping.rlocs) == 1


def test_failure_detected_and_failover_to_backup():
    scenario = make_world(probe_period=0.2)
    sim = scenario.sim
    site_s, site_d, source = start_flow(scenario)
    # The flow went to the preferred locator (xtr0).  Kill its access link.
    links = site_d.access_links[0]
    links["uplink"].up = False
    links["downlink"].up = False
    sim.run(until=sim.now + 3.0)
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    assert site_d.rloc_of(0) in prober.down
    # New packet now rides the backup locator and still arrives.
    sink = scenario.sink_for(site_d.index, 0)
    received_before = sink.received
    decap_before = site_d.xtrs[1].services["xtr-service"].decapsulated
    source.send(udp_packet(source.address, site_d.hosts[0].address, 5000,
                           FLOW_UDP_PORT))
    sim.run(until=sim.now + 2.0)
    assert sink.received == received_before + 1
    assert site_d.xtrs[1].services["xtr-service"].decapsulated == decap_before + 1


def test_recovery_detected_after_repair():
    scenario = make_world(probe_period=0.2)
    sim = scenario.sim
    site_s, site_d, _source = start_flow(scenario)
    links = site_d.access_links[0]
    links["uplink"].up = False
    links["downlink"].up = False
    sim.run(until=sim.now + 3.0)
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    assert site_d.rloc_of(0) in prober.down
    links["uplink"].up = True
    links["downlink"].up = True
    sim.run(until=sim.now + 3.0)
    assert site_d.rloc_of(0) not in prober.down
    kinds = [kind for _t, _r, kind in prober.transitions]
    assert kinds == ["down", "up"]


def test_prober_keeps_probing_down_rlocs():
    scenario = make_world(probe_period=0.2)
    sim = scenario.sim
    site_s, site_d, _source = start_flow(scenario)
    links = site_d.access_links[0]
    links["uplink"].up = False
    links["downlink"].up = False
    sim.run(until=sim.now + 2.0)
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    assert site_d.rloc_of(0) in prober.targets()


def test_first_tick_fires_one_period_after_start():
    """Regression: the first tick must fire at t + period, not t = 0.

    At deploy time the map-cache is empty, so a t=0 tick probes nothing.
    Mappings installed *before the first period elapses* must be picked up
    by the first tick — targets are re-read from the cache at every tick.
    """
    scenario = make_world(probe_period=0.5)
    sim = scenario.sim
    site_s, site_d = scenario.topology.sites
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    assert prober.targets() == []          # empty cache at startup
    assert prober._task.armed
    assert prober._task.next_fire == pytest.approx(0.5)

    # Fill the cache mid-period (t=0.2), well before the first tick.
    def fill():
        yield sim.timeout(0.2)
        itr = scenario.control_plane.xtrs_by_site[site_s.index][0]
        itr.install_mapping(
            MappingRecord(str(site_d.eid_prefix),
                          tuple(RlocEntry(rloc) for rloc in site_d.rlocs())),
            origin="test")

    sim.process(fill())
    sim.run(until=0.45)
    assert prober.probes_sent == 0         # nothing fired before t + period
    sim.run(until=0.55)
    assert prober.probes_sent == len(site_d.rlocs())  # first tick saw the fill


def test_prober_snapshot_round_trips_liveness_state():
    """down set, consecutive misses and nonce state survive a round trip."""
    scenario = make_world(probe_period=0.5)   # > probe timeout: rounds don't overlap
    sim = scenario.sim
    site_s, site_d, _source = start_flow(scenario)
    links = site_d.access_links[0]
    links["uplink"].up = False
    links["downlink"].up = False
    sim.run(until=sim.now + 3.0)
    sim.run()   # settle in-flight probes (foreground drain; ticks stay armed)
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    assert prober.down and prober._nonce > 0

    state = prober.snapshot_state()
    before = (set(prober.down), dict(prober._consecutive_misses),
              prober._nonce, prober.probes_sent, prober.replies_received,
              list(prober.transitions))
    prober.down.clear()
    prober._consecutive_misses.clear()
    prober._nonce = 0
    prober.probes_sent = prober.replies_received = 0
    prober.transitions.clear()
    prober.restore_state(state)
    after = (set(prober.down), dict(prober._consecutive_misses),
             prober._nonce, prober.probes_sent, prober.replies_received,
             list(prober.transitions))
    assert after == before
    assert prober._pending == {}


def test_prober_snapshot_refuses_in_flight_probes():
    scenario = make_world(probe_period=0.2)
    sim = scenario.sim
    site_s, _site_d, _source = start_flow(scenario)
    prober = scenario.control_plane.probers[site_s.xtrs[0].name]
    # Run to an instant right after a tick: probes are in flight.
    sim.run(until=sim.now + 0.2)
    if not prober._pending:             # settle landed between rounds
        sim.run(until=prober._task.next_fire)
    assert prober._pending
    with pytest.raises(RuntimeError):
        prober.snapshot_state()
