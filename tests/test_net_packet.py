"""Tests for the packet model: sizing, encapsulation, copying."""

from repro.net.addresses import IPv4Address
from repro.net.packet import (
    IPV4_HEADER_BYTES,
    TCP_ACK,
    TCP_SYN,
    UDP_HEADER_BYTES,
    IPv4Header,
    Packet,
    tcp_packet,
    udp_packet,
)


def test_udp_packet_size():
    packet = udp_packet("10.0.0.1", "10.0.0.2", 1234, 53, payload_bytes=100)
    assert packet.size_bytes == IPV4_HEADER_BYTES + UDP_HEADER_BYTES + 100


def test_bytes_payload_size():
    packet = udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload=b"x" * 37)
    assert packet.size_bytes == IPV4_HEADER_BYTES + UDP_HEADER_BYTES + 37


def test_object_payload_with_size_attribute():
    class Message:
        size_bytes = 64

    packet = udp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload=Message())
    assert packet.size_bytes == IPV4_HEADER_BYTES + UDP_HEADER_BYTES + 64


def test_header_accessors():
    packet = udp_packet("10.0.0.1", "10.0.0.2", 1111, 53)
    assert packet.ip.src == IPv4Address("10.0.0.1")
    assert packet.udp.dport == 53
    assert packet.tcp is None


def test_encapsulation_size_and_innermost():
    inner = udp_packet("100.0.0.10", "100.1.0.10", 5000, 80, payload_bytes=500)
    outer = Packet(
        headers=[IPv4Header(src="10.1.0.1", dst="12.1.1.1", proto=4)],
        payload=inner,
    )
    assert outer.inner is inner
    assert outer.innermost() is inner
    assert outer.size_bytes == IPV4_HEADER_BYTES + inner.size_bytes
    # The outer IP header is the one seen by forwarding.
    assert outer.ip.dst == IPv4Address("12.1.1.1")
    assert inner.innermost() is inner


def test_copy_isolates_headers_and_meta():
    packet = udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_bytes=10, meta={"flow": 7})
    clone = packet.copy()
    clone.ip.ttl -= 5
    clone.meta["flow"] = 8
    assert packet.ip.ttl == 64
    assert packet.meta["flow"] == 7
    assert clone.size_bytes == packet.size_bytes


def test_copy_clones_nested_packet():
    inner = udp_packet("100.0.0.10", "100.1.0.10", 1, 2, payload_bytes=10)
    outer = Packet(headers=[IPv4Header(src="10.0.0.1", dst="11.0.0.1", proto=4)], payload=inner)
    clone = outer.copy()
    clone.inner.ip.ttl = 1
    assert inner.ip.ttl == 64


def test_tcp_flags():
    syn = tcp_packet("1.1.1.1", "2.2.2.2", 1000, 80, flags=TCP_SYN)
    synack = tcp_packet("2.2.2.2", "1.1.1.1", 80, 1000, flags=TCP_SYN | TCP_ACK)
    ack = tcp_packet("1.1.1.1", "2.2.2.2", 1000, 80, flags=TCP_ACK)
    assert syn.tcp.is_syn and not syn.tcp.is_synack
    assert synack.tcp.is_synack and not synack.tcp.is_syn
    assert ack.tcp.is_ack and not ack.tcp.is_syn


def test_packet_uids_unique():
    a = udp_packet("1.1.1.1", "2.2.2.2", 1, 2)
    b = udp_packet("1.1.1.1", "2.2.2.2", 1, 2)
    assert a.uid != b.uid


def test_str_renders_stack():
    packet = udp_packet("1.1.1.1", "2.2.2.2", 1, 53, payload_bytes=5)
    text = str(packet)
    assert "1.1.1.1" in text and "UDP" in text
