"""Tests for traffic models: Zipf popularity, TCP handshake, UDP sinks."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.fib import FibEntry
from repro.net.addresses import IPv4Prefix
from repro.net.host import Host
from repro.net.link import connect
from repro.net.packet import udp_packet
from repro.sim import Simulator
from repro.traffic.flows import (DEFAULT_RTO, FlowRecord, TcpStack, UdpSink,
                                 send_flow, send_udp_burst)
from repro.traffic.popularity import (FlowPlan, FlowShaper, FlowSizeSampler,
                                      ZipfSampler)


def test_zipf_probabilities_sum_to_one():
    sampler = ZipfSampler(10, s=1.0)
    total = sum(sampler.probability(rank) for rank in range(10))
    assert total == pytest.approx(1.0)


def test_zipf_rank_ordering():
    sampler = ZipfSampler(10, s=1.2)
    probs = [sampler.probability(rank) for rank in range(10)]
    assert probs == sorted(probs, reverse=True)


def test_zipf_zero_skew_is_uniform():
    sampler = ZipfSampler(4, s=0.0)
    for rank in range(4):
        assert sampler.probability(rank) == pytest.approx(0.25)


def test_zipf_samples_match_skew():
    rng = random.Random(1)
    sampler = ZipfSampler(20, s=1.5, rng=rng)
    draws = sampler.sample_many(4000)
    top = sum(1 for d in draws if d == 0) / len(draws)
    assert top > 0.3  # rank 1 dominates at s=1.5


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(5, s=-1)
    with pytest.raises(ValueError):
        ZipfSampler(5).sample()  # no RNG anywhere


@given(st.integers(min_value=1, max_value=50),
       st.floats(min_value=0.0, max_value=3.0),
       st.integers(min_value=0, max_value=2**31))
def test_zipf_samples_in_range(n, s, seed):
    sampler = ZipfSampler(n, s=s, rng=random.Random(seed))
    for _ in range(20):
        assert 0 <= sampler.sample() < n


def linked_hosts(sim, delay=0.01):
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    iface_a = a.add_interface("eth0")
    iface_b = b.add_interface("eth0")
    connect(sim, iface_a, iface_b, delay=delay)
    a.fib.insert(FibEntry(IPv4Prefix("0.0.0.0/0"), iface_a))
    b.fib.insert(FibEntry(IPv4Prefix("0.0.0.0/0"), iface_b))
    return a, b


def test_tcp_handshake_takes_one_rtt():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.05)
    TcpStack(sim, b).listen(80)
    client = TcpStack(sim, a)
    proc = client.connect(b.address, 80)
    sim.run()
    elapsed, retries = proc.value
    assert retries == 0
    assert elapsed == pytest.approx(0.1)  # SYN + SYN/ACK


def test_tcp_handshake_retransmits_on_loss():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.05)
    TcpStack(sim, b).listen(80)
    client = TcpStack(sim, a)
    # Break the link for the first SYN, restore before the RTO fires.
    link = a.interfaces["eth0"].link
    link.up = False
    sim.call_in(0.5, lambda: setattr(link, "up", True))
    proc = client.connect(b.address, 80)
    sim.run()
    elapsed, retries = proc.value
    assert retries == 1
    assert elapsed == pytest.approx(DEFAULT_RTO + 0.1)


def test_tcp_handshake_gives_up():
    sim = Simulator()
    a, b = linked_hosts(sim)
    TcpStack(sim, b).listen(80)
    a.interfaces["eth0"].link.up = False
    proc = TcpStack(sim, a).connect(b.address, 80, max_retries=1)
    sim.run()
    assert proc.value is None


def test_tcp_no_listener_times_out():
    sim = Simulator()
    a, b = linked_hosts(sim)
    TcpStack(sim, b)  # stack exists but port 80 not listening
    proc = TcpStack(sim, a).connect(b.address, 80, max_retries=0)
    sim.run()
    assert proc.value is None


def test_udp_sink_counts_by_flow():
    sim = Simulator()
    a, b = linked_hosts(sim)
    sink = UdpSink(sim, b, 9000)
    for flow_id in (1, 1, 2):
        a.send(udp_packet(a.address, b.address, 5000, 9000,
                          meta={"flow_id": flow_id}))
    sim.run()
    assert sink.received == 3
    assert sink.by_flow == {1: 2, 2: 1}
    assert len(sink.arrival_times) == 3


def test_udp_burst_paces_packets():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.0)
    sink = UdpSink(sim, b, 9000)
    record = FlowRecord(flow_id=42, source=a.address)
    send_udp_burst(sim, a, b.address, 9000, record, count_packets=4, spacing=0.01)
    sim.run()
    assert record.packets_sent == 4
    assert sink.by_flow[42] == 4
    gaps = [t2 - t1 for t1, t2 in zip(sink.arrival_times,
                                      sink.arrival_times[1:], strict=False)]
    assert all(gap == pytest.approx(0.01) for gap in gaps)


def test_flow_record_packets_lost():
    record = FlowRecord(flow_id=1)
    record.packets_sent = 5
    record.packets_delivered = 3
    assert record.packets_lost == 2


def test_flow_shaper_constant_mode_matches_legacy_sender():
    sizes = FlowSizeSampler(dist="constant", mean=5)
    shaper = FlowShaper(sizes, payload_bytes=1000, pacing="constant",
                        spacing=0.002)
    plan = shaper.plan()
    assert plan == FlowPlan(packets=5, payload_bytes=1000, spacing=0.002,
                            kind="constant")
    assert plan.byte_budget == 5000


def test_flow_shaper_classifies_mice_and_elephants():
    sizes = FlowSizeSampler(dist="pareto", mean=5, rng=random.Random(7))
    shaper = FlowShaper(sizes, payload_bytes=1000, pacing="shaped",
                        pace_rate_bps=2_000_000.0)
    assert shaper.elephant_threshold == 10.0  # 2x the mean by default
    kinds = {}
    for _ in range(300):
        plan = shaper.plan()
        kinds.setdefault(plan.kind, []).append(plan)
    assert set(kinds) == {"mouse", "elephant"}
    assert all(plan.packets > 10 for plan in kinds["elephant"])
    assert all(plan.packets <= 10 for plan in kinds["mouse"])
    assert all(plan.spacing == 0.0 for plan in kinds["mouse"])
    # Elephant gap: (1000 + 28 header bytes) * 8 bits / 2 Mbit/s.
    expected_gap = 1028 * 8 / 2_000_000.0
    assert all(plan.spacing == pytest.approx(expected_gap)
               for plan in kinds["elephant"])


def test_flow_shaper_validation():
    sizes = FlowSizeSampler(dist="constant", mean=5)
    with pytest.raises(ValueError):
        FlowShaper(sizes, payload_bytes=1000, pacing="bogus")
    with pytest.raises(ValueError):
        FlowShaper(sizes, payload_bytes=0)
    with pytest.raises(ValueError):
        FlowShaper(sizes, payload_bytes=1000, pace_rate_bps=0)
    with pytest.raises(ValueError):
        FlowShaper(sizes, payload_bytes=1000, elephant_threshold=0)


def test_send_flow_mouse_bursts_back_to_back():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.0)
    sink = UdpSink(sim, b, 9000)
    record = FlowRecord(flow_id=50, source=a.address)
    plan = FlowPlan(packets=4, payload_bytes=500, spacing=0.0, kind="mouse")
    send_flow(sim, a, b.address, 9000, record, plan)
    sim.run()
    assert record.packets_sent == 4
    assert record.bytes_sent == record.bytes_budget == 2000
    assert record.flow_kind == "mouse"
    assert sink.arrival_times == [0.0] * 4  # one instant, no pacing gaps


def test_send_flow_elephant_paces_at_plan_spacing():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.0)
    sink = UdpSink(sim, b, 9000)
    record = FlowRecord(flow_id=51, source=a.address)
    plan = FlowPlan(packets=3, payload_bytes=500, spacing=0.02, kind="elephant")
    send_flow(sim, a, b.address, 9000, record, plan)
    sim.run()
    gaps = [t2 - t1 for t1, t2 in zip(sink.arrival_times,
                                      sink.arrival_times[1:], strict=False)]
    assert gaps == [pytest.approx(0.02)] * 2
    assert record.flow_kind == "elephant"
