"""Tests for the worldbuild layer: routing plans, world reuse, sweep axes."""

import json

import pytest

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import (SweepGrid, expand_grid, payload_digest,
                                     read_jsonl, run_cell, run_sweep)
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.experiments.worldbuild import (WorldBuilder, build_world,
                                          restore_world, world_key)
from repro.net.routing import (HierarchicalRoutingPlan, TierLayout,
                               build_adjacency, install_mesh_routes,
                               mesh_fingerprint, path_delay)
from repro.net.topology import build_topology, provider_prefix_for
from repro.sim import Simulator


def _fib_snapshot(router):
    return [(str(entry.prefix), entry.interface.name,
             getattr(entry.next_hop, "name", None), entry.metric)
            for entry in router.fib.entries()]


# --------------------------------------------------------------------- #
# RoutingPlan
# --------------------------------------------------------------------- #

def test_incremental_install_matches_from_scratch():
    """Incrementally-installed routes == one-shot full computation."""
    sim = Simulator(seed=5, tracing=False)
    topology = build_topology(sim, num_sites=6, num_providers=5)
    # The build itself is incremental (site attachments, then DNS would
    # add more); attach another host and install only the delta.
    topology.attach_infra_host(2, "extra", "203.0.200.9")
    topology.install_global_routes()
    incremental = [_fib_snapshot(p) for p in topology.providers]

    for provider in topology.providers:
        provider.fib.clear()
    install_mesh_routes(topology.providers, topology.attachments)
    from_scratch = [_fib_snapshot(p) for p in topology.providers]
    assert incremental == from_scratch


def test_routing_plan_is_memoized():
    sim = Simulator(seed=5, tracing=False)
    topology = build_topology(sim, num_sites=3, num_providers=4)
    plan = topology.routing_plan()
    topology.attach_infra_host(0, "late-host", "203.0.200.10")
    topology.install_global_routes()
    # Attachments don't touch the mesh: same tables serve the new install.
    assert topology.routing_plan() is plan


def test_mesh_change_invalidates_plan():
    sim = Simulator(seed=5, tracing=False)
    topology = build_topology(sim, num_sites=2, num_providers=4)
    plan = topology.routing_plan()
    a, b = topology.providers[0], topology.providers[1]
    a.interfaces["to-prov1"].link.delay *= 2  # mesh edge changed
    assert mesh_fingerprint(topology.providers) != plan.fingerprint
    assert topology.routing_plan() is not plan


def test_plan_delay_matches_dijkstra():
    sim = Simulator(seed=9, tracing=False)
    topology = build_topology(sim, num_sites=2, num_providers=6)
    plan = topology.routing_plan()
    adjacency = build_adjacency(topology.providers)
    for source in topology.providers:
        for destination in topology.providers:
            assert plan.delay(source, destination) == pytest.approx(
                path_delay(adjacency, source, destination))


def test_plan_install_is_idempotent():
    sim = Simulator(seed=3, tracing=False)
    topology = build_topology(sim, num_sites=3, num_providers=4)
    before = [_fib_snapshot(p) for p in topology.providers]
    topology.routing_plan().install(topology.attachments)
    assert [_fib_snapshot(p) for p in topology.providers] == before


# --------------------------------------------------------------------- #
# World reuse
# --------------------------------------------------------------------- #

def _cell_for(control_plane, **workload_kwargs):
    grid = SweepGrid(control_planes=(control_plane,), site_counts=(4,),
                     seeds=(7,), num_flows=10, arrival_rate=10.0,
                     workload_overrides=workload_kwargs)
    return expand_grid(grid)[0]


@pytest.mark.parametrize("control_plane", ("pce", "alt", "cons", "nerd"))
def test_reused_world_summary_byte_identical(control_plane):
    """A cell on a cache-reused world == the same cell on a fresh world."""
    cell = _cell_for(control_plane)
    fresh = run_cell(cell)  # fresh build, no cache
    builder = WorldBuilder()
    first = run_cell(cell, builder=builder)
    assert builder.last_outcome == "miss"
    reused = run_cell(cell, builder=builder)
    assert builder.last_outcome == "hit"
    assert json.dumps(fresh, sort_keys=True) == json.dumps(first, sort_keys=True)
    assert json.dumps(fresh, sort_keys=True) == json.dumps(reused, sort_keys=True)


def test_reuse_across_different_workloads():
    """One world serves cells that differ only in workload."""
    config = ScenarioConfig(control_plane="pce", num_sites=4, seed=3,
                            tracing=False)
    builder = WorldBuilder()
    heavy = WorkloadConfig(num_flows=12, arrival_rate=10.0, zipf_s=1.4,
                           size_dist="pareto")
    light = WorkloadConfig(num_flows=6, arrival_rate=5.0, zipf_s=0.0)
    baseline = run_workload(build_world(config), light)
    run_workload(builder.scenario_for(config), heavy)
    records = run_workload(builder.scenario_for(config), light)
    assert builder.stats.hits == 1
    assert [r.packets_sent for r in records] == \
        [r.packets_sent for r in baseline]
    assert [r.dns_elapsed for r in records] == \
        [r.dns_elapsed for r in baseline]


def test_restore_world_resets_clock_and_caches():
    config = ScenarioConfig(control_plane="alt", num_sites=3, seed=2,
                            tracing=False)
    scenario = build_world(config)
    checkpoint_now = scenario.sim.now
    run_workload(scenario, WorkloadConfig(num_flows=8, arrival_rate=10.0))
    assert scenario.sim.now > checkpoint_now
    restore_world(scenario)
    assert scenario.sim.now == checkpoint_now
    for xtrs in scenario.xtrs_by_site.values():
        for xtr in xtrs:
            assert xtr.map_cache.hits == 0 and xtr.map_cache.misses == 0
    assert scenario.stubs == {}


def test_probing_worlds_hit_the_cache():
    """Probing/IRC worlds are checkpointable: no bypass path remains."""
    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=2,
                            enable_probing=True, start_irc=True, tracing=False)
    builder = WorldBuilder()
    first = builder.scenario_for(config)
    second = builder.scenario_for(config)
    assert first is second
    assert first.world_checkpoint is not None
    assert builder.stats.hits == 1 and builder.stats.misses == 1
    assert builder.stats.bypasses == 0


def _failover_cell(**grid_kwargs):
    grid_kwargs.setdefault("scenario_overrides",
                           {"enable_probing": True, "probe_period": 0.3,
                            "probe_timeout": 0.15})
    grid = SweepGrid(control_planes=("pce",), site_counts=(3,), seeds=(13,),
                     fail_fractions=(1.0,), fail_at=0.3, repair_at=2.0,
                     num_flows=12, arrival_rate=10.0, packets_per_flow=5,
                     **grid_kwargs)
    return expand_grid(grid)[0]


def test_failover_cell_fresh_vs_restored_byte_identical():
    """A probing+failure cell on a reused world == the same cell run fresh.

    This is the satellite contract for snapshot/restore of prober state
    (down set, consecutive misses, nonces) and IRC EWMA estimates: the
    failover summaries must not differ by a single byte.
    """
    cell = _failover_cell()
    fresh = run_cell(cell)
    builder = WorldBuilder()
    first = run_cell(cell, builder=builder)
    assert builder.last_outcome == "miss"
    reused = run_cell(cell, builder=builder)
    assert builder.last_outcome == "hit"
    assert json.dumps(fresh, sort_keys=True) == json.dumps(first, sort_keys=True)
    assert json.dumps(fresh, sort_keys=True) == json.dumps(reused, sort_keys=True)


def test_prober_and_irc_state_round_trip_through_restore():
    """Down sets, miss counters, nonces and EWMAs all reset on restore."""
    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=13,
                            enable_probing=True, start_irc=True,
                            probe_period=0.3, probe_timeout=0.15,
                            tracing=False)
    scenario = build_world(config)

    def prober_states():
        return {name: (frozenset(p.down), dict(p._consecutive_misses),
                       p._nonce, p.probes_sent, p.replies_received,
                       tuple(p.transitions))
                for name, p in scenario.control_plane.probers.items()}

    def irc_states():
        return {index: irc.snapshot_state()
                for index, irc in scenario.control_plane.ircs.items()}

    def task_states():
        return [task.snapshot_state() for task in scenario.sim.periodic_tasks]

    baseline = (prober_states(), irc_states(), task_states())

    # Dirty this world: run a failing workload so probers mark RLOCs down.
    from repro.experiments.sweep import _apply_failures
    _apply_failures(scenario, _failover_cell().failure)
    run_workload(scenario, WorkloadConfig(num_flows=12, arrival_rate=10.0,
                                          packets_per_flow=5))
    assert any(p.probes_sent > 0
               for p in scenario.control_plane.probers.values())
    assert (prober_states(), irc_states(), task_states()) != baseline

    restore_world(scenario)
    assert (prober_states(), irc_states(), task_states()) == baseline


def _shaped_cell():
    """A shaped-preset-style cell: rated access links, heavy tails, pacing."""
    grid = SweepGrid(control_planes=("pce",), site_counts=(4,), seeds=(31,),
                     size_dists=("pareto",), pacings=("shaped",),
                     num_flows=12, arrival_rate=10.0, packets_per_flow=5,
                     scenario_overrides={"access_rate_bps": 10_000_000.0},
                     workload_overrides={"pace_rate_bps": 2_000_000.0,
                                         "payload_bytes": 1200})
    return expand_grid(grid)[0]


def test_shaped_cell_fresh_vs_restored_byte_identical():
    """A shaped cell on a reused world == the same cell run fresh.

    The satellite contract for the traffic-shaping state: per-flow link
    byte accounts, utilization windows and busy time must all snapshot and
    restore exactly, or the reused world's byte metrics drift.
    """
    cell = _shaped_cell()
    fresh = run_cell(cell)
    builder = WorldBuilder()
    first = run_cell(cell, builder=builder)
    assert builder.last_outcome == "miss"
    reused = run_cell(cell, builder=builder)
    assert builder.last_outcome == "hit"
    assert fresh["metrics"]["bytes_conserved"] is True
    assert fresh["metrics"]["access_util_peak"] > 0.0
    assert json.dumps(fresh, sort_keys=True) == json.dumps(first, sort_keys=True)
    assert json.dumps(fresh, sort_keys=True) == json.dumps(reused, sort_keys=True)


def test_shaped_world_restore_resets_byte_accounting():
    """Link flow accounts and windows reset to the (empty) checkpoint."""
    cell = _shaped_cell()
    scenario = build_world(cell.scenario)
    run_workload(scenario, cell.workload)
    dirtied = [link for link in scenario.iter_links() if link.stats.flows]
    assert dirtied, "workload left no per-flow accounting to reset"
    restore_world(scenario)
    for link in scenario.iter_links():
        stats = link.stats
        assert stats.flows == {} and stats.windows == {}
        assert stats.bytes_offered == 0 and stats.busy_time == 0.0


def test_world_key_distinguishes_configs():
    base = ScenarioConfig(control_plane="pce", num_sites=4, seed=1)
    assert world_key(base) == world_key(ScenarioConfig(
        control_plane="pce", num_sites=4, seed=1))
    assert world_key(base) != world_key(base.variant(mapping_ttl=30.0))


def test_world_builder_lru_eviction():
    builder = WorldBuilder(max_worlds=1)
    a = ScenarioConfig(control_plane="plain", num_sites=2, seed=1, tracing=False)
    b = a.variant(seed=2)
    builder.scenario_for(a)
    builder.scenario_for(b)  # evicts a
    builder.scenario_for(a)  # rebuild
    assert builder.stats.misses == 3 and builder.stats.hits == 0
    assert len(builder) == 1


# --------------------------------------------------------------------- #
# Sweep integration: grouping, streaming, axes
# --------------------------------------------------------------------- #

SHARED = SweepGrid(name="shared", control_planes=("pce", "alt"),
                   site_counts=(3,), seeds=(1,), zipf_values=(0.5, 1.2),
                   size_dists=("constant", "pareto"), num_flows=8,
                   arrival_rate=10.0)


def test_sweep_reuses_worlds_and_streams_jsonl(tmp_path):
    jsonl_path = tmp_path / "cells.jsonl"
    serial = run_sweep(SHARED, workers=1, jsonl_path=str(jsonl_path))
    fanned = run_sweep(SHARED, workers=2)
    assert payload_digest(serial) == payload_digest(fanned)
    # Serial: 2 worlds (one per control plane), 4 cells each -> 6 LRU hits.
    assert serial["world_cache"]["hits"] == 6
    assert serial["world_cache"]["builds"] == 2
    # Fanned: the pre-build stage builds each world exactly once into the
    # shared store; workers never build, they restore from blobs (each
    # worker's first touch of a world) or hit their in-process LRU.
    fanned_cache = fanned["world_cache"]
    assert fanned_cache["builds"] == 2
    assert fanned_cache["store"]["builds"] == 2
    assert fanned_cache["restores"] >= 2
    assert fanned_cache["restores"] == fanned_cache["misses"]
    assert fanned_cache["hits"] + fanned_cache["restores"] == 8
    # The stream carries every cell plus its world-cache outcome...
    lines = [json.loads(line) for line in
             jsonl_path.read_text().strip().splitlines()]
    assert {line["world"] for line in lines} == {"hit", "miss"}
    # ...and reading it back (outcome stripped) is exactly the payload.
    assert sorted(read_jsonl(str(jsonl_path)), key=lambda r: r["index"]) \
        == serial["cells"]


def test_ungrouped_dispatch_keeps_workers_busy():
    """One world key + many workload cells fans out cell-by-cell (digest
    equality preserved: every worker restores the same world blob)."""
    from repro.experiments.sweep import order_cells_by_world

    grid = SweepGrid(control_planes=("alt",), site_counts=(3,), seeds=(1,),
                     zipf_values=(0.0, 0.5, 1.0, 1.5), num_flows=8,
                     arrival_rate=10.0)
    cells = expand_grid(grid)
    assert [cell.index for cell in order_cells_by_world(cells)] \
        == [cell.index for cell in cells]  # single world: order unchanged
    fanned = run_sweep(grid, workers=4)
    assert payload_digest(fanned) == payload_digest(run_sweep(grid, workers=1))
    # One build (the store's), every worker restore served from its blob.
    assert fanned["world_cache"]["builds"] == 1
    assert fanned["world_cache"]["store"]["builds"] == 1


def test_serial_ordering_groups_same_world_cells():
    """Serial runs keep same-world cells adjacent so the LRU never thrashes,
    even when the seeds axis interleaves more worlds than max_worlds."""
    from repro.experiments.sweep import order_cells_by_world

    grid = SweepGrid(control_planes=("alt",), site_counts=(3,),
                     seeds=(1, 2, 3), zipf_values=(0.0, 1.0), num_flows=6,
                     arrival_rate=10.0)
    cells = expand_grid(grid)
    ordered = order_cells_by_world(cells)
    assert sorted(c.index for c in ordered) == [c.index for c in cells]
    seen = []
    for cell in ordered:
        key = (cell.scenario.control_plane, cell.scenario.seed)
        if key not in seen:
            seen.append(key)
        else:
            assert key == seen[-1], "same-world cells must be contiguous"
    payload = run_sweep(grid, workers=1, max_worlds=1)
    assert payload["world_cache"]["builds"] == 3  # one per seed, max_worlds=1


def test_expand_grid_new_axes_and_cell_ids():
    cells = expand_grid(SHARED)
    assert len(cells) == 2 * 2 * 2
    assert cells[0].cell_id == "pce-sites3-zipf0.5-seed1"
    assert cells[1].cell_id == "pce-sites3-zipf0.5-sizepareto-seed1"
    assert all("sizepareto" in cell.cell_id for cell in cells
               if cell.workload.size_dist == "pareto")


def test_expand_grid_rejects_bad_axes():
    with pytest.raises(ValueError):
        expand_grid(SweepGrid(size_dists=("bogus",)))
    with pytest.raises(ValueError):
        expand_grid(SweepGrid(fail_fractions=(1.5,)))


def test_heavy_tailed_sizes_change_the_workload():
    grid = SweepGrid(control_planes=("alt",), site_counts=(3,), seeds=(4,),
                     size_dists=("constant", "pareto"), num_flows=12,
                     arrival_rate=10.0, packets_per_flow=4)
    constant, pareto = [run_cell(cell) for cell in expand_grid(grid)]
    assert constant["metrics"]["packets_sent"] == 12 * 4
    assert pareto["metrics"]["packets_sent"] != constant["metrics"]["packets_sent"]


def test_tcp_data_burst_makes_size_axis_real():
    """With tcp_data_burst, TCP cells carry size-shaped data traffic."""
    grid = SweepGrid(control_planes=("pce",), site_counts=(3,), seeds=(4,),
                     size_dists=("constant", "pareto"), num_flows=12,
                     arrival_rate=10.0, packets_per_flow=4, mode="tcp",
                     workload_overrides={"tcp_data_burst": True})
    constant, pareto = [run_cell(cell) for cell in expand_grid(grid)]
    assert constant["metrics"]["packets_sent"] == 12 * 4
    assert pareto["metrics"]["packets_sent"] != constant["metrics"]["packets_sent"]
    assert constant["metrics"]["setup_latency"] is not None


def test_failure_axis_loses_packets():
    grid = SweepGrid(control_planes=("alt",), site_counts=(4,), seeds=(6,),
                     fail_fractions=(0.0, 1.0), fail_at=0.2, repair_at=2.5,
                     num_flows=20, arrival_rate=20.0, packets_per_flow=4)
    intact, failed = [run_cell(cell) for cell in expand_grid(grid)]
    assert failed["fail_fraction"] == 1.0
    assert "fail1" in failed["cell_id"]
    assert failed["metrics"]["packets_lost"] > intact["metrics"]["packets_lost"]


def test_failure_cells_reuse_cleanly():
    """A failure cell must not poison the cached world for later cells."""
    grid = SweepGrid(control_planes=("pce",), site_counts=(3,), seeds=(9,),
                     fail_fractions=(0.0, 1.0), fail_at=0.2, repair_at=1.5,
                     num_flows=10, arrival_rate=10.0)
    intact_cell, failed_cell = expand_grid(grid)
    baseline = run_cell(intact_cell)
    builder = WorldBuilder()
    run_cell(failed_cell, builder=builder)
    after_failure = run_cell(intact_cell, builder=builder)
    assert builder.stats.hits == 1
    assert json.dumps(after_failure, sort_keys=True) \
        == json.dumps(baseline, sort_keys=True)


# --------------------------------------------------------------------- #
# Hierarchical routing: equivalence, reuse, sweep determinism
# --------------------------------------------------------------------- #

def test_single_tier_hierarchical_plan_equals_flat_plan():
    """One tier, no uplinks, no IXPs: the hierarchical plan degenerates to
    the flat all-pairs plan — identical FIBs (iface, next hop, metric)
    and identical delay() answers."""
    sim = Simulator(seed=17, tracing=False)
    topology = build_topology(sim, num_sites=5, num_providers=6)
    topology.attach_infra_host(1, "root-dns", "203.0.113.5")
    topology.install_global_routes()  # flat RoutingPlan did this install
    flat_plan = topology.routing_plan()
    flat_fibs = [_fib_snapshot(p) for p in topology.providers]

    layout = TierLayout(
        tiers=(tuple(range(len(topology.providers))),),
        uplinks={}, ixps=(),
        aggregates={p: provider_prefix_for(p)
                    for p in range(len(topology.providers))})
    hier_plan = HierarchicalRoutingPlan(topology.providers, layout)
    for provider in topology.providers:
        provider.fib.clear()
    hier_plan.install(topology.attachments)

    assert [_fib_snapshot(p) for p in topology.providers] == flat_fibs
    for a in topology.providers:
        for b in topology.providers:
            assert hier_plan.delay(a, b) == flat_plan.delay(a, b)
    assert hier_plan.fingerprint == flat_plan.fingerprint


def _tiered_cell(control_plane="pce"):
    grid = SweepGrid(control_planes=(control_plane,), topologies=("tiered",),
                     site_counts=(6,), seeds=(21,), num_flows=10,
                     arrival_rate=10.0)
    return expand_grid(grid)[0]


def test_tiered_cell_fresh_vs_restored_byte_identical():
    """A tiered world survives snapshot/restore with nothing lost: the
    layout, hierarchical plan, and IX routers all pickle, and a cell run
    on the restored world matches the fresh run byte-for-byte."""
    cell = _tiered_cell()
    fresh = run_cell(cell)
    builder = WorldBuilder()
    first = run_cell(cell, builder=builder)
    assert builder.last_outcome == "miss"
    reused = run_cell(cell, builder=builder)
    assert builder.last_outcome == "hit"
    assert json.dumps(fresh, sort_keys=True) == json.dumps(first, sort_keys=True)
    assert json.dumps(fresh, sort_keys=True) == json.dumps(reused, sort_keys=True)


def test_restored_tiered_world_keeps_hierarchical_routing():
    config = ScenarioConfig(control_plane="alt", topology="tiered",
                            num_sites=5, seed=13, tracing=False)
    scenario = build_world(config)
    run_workload(scenario, WorkloadConfig(num_flows=6, arrival_rate=10.0))
    restore_world(scenario)
    restored = scenario.topology
    assert isinstance(restored.routing_plan(), HierarchicalRoutingPlan)
    assert restored.tier_layout is not None
    assert restored.ix_routers


def test_topology_axis_sweep_digest_matches_across_workers():
    """The schema-v6 topology axis stays deterministic under fan-out."""
    grid = SweepGrid(control_planes=("pce",), topologies=("flat", "tiered"),
                     site_counts=(4,), seeds=(7,), num_flows=8,
                     arrival_rate=10.0)
    fanned = run_sweep(grid, workers=2)
    serial = run_sweep(grid, workers=1)
    assert payload_digest(serial) == payload_digest(fanned)
    cell_ids = [cell["cell_id"] for cell in serial["cells"]]
    assert cell_ids == ["pce-sites4-zipf1-seed7",
                        "pce-tiered-sites4-zipf1-seed7"]
    by_topology = {cell["topology"]: cell for cell in serial["cells"]}
    assert set(by_topology) == {"flat", "tiered"}
