"""Tests for random streams and the tracer."""

from repro.sim import RandomStreams, Simulator, Tracer


def test_streams_are_deterministic_across_instances():
    first = RandomStreams(123).stream("arrivals")
    second = RandomStreams(123).stream("arrivals")
    assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]


def test_streams_differ_by_name():
    streams = RandomStreams(123)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_streams_differ_by_seed():
    a = [RandomStreams(1).stream("x").random() for _ in range(5)]
    b = [RandomStreams(2).stream("x").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("s") is streams.stream("s")


def test_fork_produces_independent_universe():
    base = RandomStreams(9)
    fork_a = base.fork("rep1")
    fork_b = base.fork("rep2")
    assert fork_a.seed != fork_b.seed
    assert fork_a.stream("x").random() != fork_b.stream("x").random()


def test_fork_is_deterministic():
    assert RandomStreams(9).fork("rep1").seed == RandomStreams(9).fork("rep1").seed


def test_names_lists_created_streams():
    streams = RandomStreams(0)
    streams.stream("zeta")
    streams.stream("alpha")
    assert streams.names() == ["alpha", "zeta"]


def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.record(1.0, "node-a", "pkt.send", size=100)
    tracer.record(2.0, "node-b", "pkt.recv", size=100)
    tracer.record(3.0, "node-a", "dns.query", qname="example.com")
    assert len(tracer) == 3
    assert [r.time for r in tracer.of_kind("pkt.recv")] == [2.0]
    assert len(tracer.with_prefix("pkt.")) == 2
    assert [r.kind for r in tracer.between(1.5, 3.0)] == ["pkt.recv", "dns.query"]


def test_tracer_enable_only():
    tracer = Tracer()
    tracer.enable_only("dns.")
    assert tracer.record(1.0, "x", "pkt.send") is None
    assert tracer.record(2.0, "x", "dns.query") is not None
    assert len(tracer) == 1


def test_tracer_subscribe():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.record(1.0, "x", "kind.a")
    assert len(seen) == 1 and seen[0].kind == "kind.a"


def test_tracer_dump_and_clear():
    tracer = Tracer()
    tracer.record(1.0, "x", "a", k=1)
    text = tracer.dump()
    assert "k=1" in text and "a" in text
    tracer.clear()
    assert len(tracer) == 0


def test_simulator_owns_trace_and_rng():
    sim = Simulator(seed=5)
    sim.trace.record(sim.now, "engine", "boot")
    assert len(sim.trace) == 1
    assert sim.rng.stream("any") is sim.rng.stream("any")
