"""Tests for the baseline mapping systems: ALT, CONS, NERD."""

from repro.lisp.control import (
    AltMappingSystem,
    ConsMappingSystem,
    MappingRegistry,
    NerdMappingSystem,
)
from repro.lisp.deploy import deploy_lisp
from repro.lisp.mappings import MappingRecord, RlocEntry
from repro.lisp.policies import CpDataPolicy, DropPolicy, QueuePolicy
from repro.net.addresses import IPv4Address
from repro.net.packet import udp_packet
from repro.net.topology import build_topology
from repro.sim import Simulator


def make_world(system_name, num_sites=4, miss_policy_cls=QueuePolicy, seed=31,
               **system_kwargs):
    sim = Simulator(seed=seed)
    topology = build_topology(sim, num_sites=num_sites, num_providers=4)
    if system_name == "alt":
        system = AltMappingSystem(sim, **system_kwargs)
    elif system_name == "cons":
        system = ConsMappingSystem(sim, topology, **system_kwargs)
    elif system_name == "nerd":
        system = NerdMappingSystem(sim, topology, **system_kwargs)
    else:
        raise ValueError(system_name)
    policy = miss_policy_cls(sim)
    xtrs = deploy_lisp(sim, topology, system, policy)
    sim.run()  # let any deployment-time pushes settle
    return sim, topology, system, policy, xtrs


def send_flow_packet(sim, topology, src_site=0, dst_site=1, port=7000):
    src = topology.sites[src_site].hosts[0]
    dst = topology.sites[dst_site].hosts[0]
    sink = []
    dst.bind_udp(port, lambda packet, node: sink.append(sim.now))
    src.send(udp_packet(src.address, dst.address, 1, port))
    sim.run()
    dst.unbind_udp(port)
    return sink


def test_registry_lookup_most_specific():
    registry = MappingRegistry()
    registry.register(MappingRecord("100.0.0.0/16", (RlocEntry("10.0.0.1"),)))
    registry.register(MappingRecord("100.0.1.0/24", (RlocEntry("11.0.0.1"),)))
    hit = registry.lookup("100.0.1.5")
    assert hit.rlocs[0].address == IPv4Address("11.0.0.1")
    assert registry.lookup("101.0.0.1") is None
    assert len(registry) == 2


# --------------------------------------------------------------------------- #
# ALT
# --------------------------------------------------------------------------- #

def test_alt_resolves_and_delivers():
    sim, topology, system, policy, xtrs = make_world("alt")
    sink = send_flow_packet(sim, topology)
    assert len(sink) == 1
    assert system.stats.resolutions == 1
    assert system.stats.resolution_failures == 0
    assert len(system.stats.resolution_latencies) == 1


def test_alt_latency_exceeds_direct_path():
    """Overlay stretch: ALT resolution rides the ring, slower than direct RTT."""
    sim, topology, system, policy, xtrs = make_world("alt", num_sites=8)
    send_flow_packet(sim, topology, src_site=0, dst_site=4)
    latency = system.stats.resolution_latencies[0]
    assert latency > 0.02  # several WAN hops
    assert system.stats.by_type["map-request"] == 1
    assert system.stats.by_type["map-request-hop"] >= 1


def test_alt_overlay_is_connected():
    sim, topology, system, policy, xtrs = make_world("alt", num_sites=6)
    for src in range(6):
        for dst in range(6):
            if src == dst:
                continue
            rib = system._rib[topology.sites[src].xtrs[0].name]
            prefix = topology.sites[dst].eid_prefix
            assert prefix in rib, f"site{src} has no ALT route to site{dst}"


def test_alt_state_scales_with_sites():
    _sim4, _topo4, system4, _p4, _x4 = make_world("alt", num_sites=4)
    _sim8, _topo8, system8, _p8, _x8 = make_world("alt", num_sites=8)
    mean4 = sum(system4.state_entries_per_router().values()) / 4
    mean8 = sum(system8.state_entries_per_router().values()) / 8
    assert mean8 > mean4


def test_alt_carries_data_over_cp():
    sim, topology, system, policy, xtrs = make_world("alt", miss_policy_cls=CpDataPolicy)
    sink = send_flow_packet(sim, topology)
    # The first packet is not lost: it rides the ALT overlay.
    assert len(sink) == 1
    assert policy.stats.cp_carried == 1
    assert policy.stats.dropped == 0
    assert system.stats.by_type["cp-data"] == 1


def test_alt_second_flow_uses_cache():
    sim, topology, system, policy, xtrs = make_world("alt")
    send_flow_packet(sim, topology)
    resolutions = system.stats.resolutions
    sink = send_flow_packet(sim, topology)
    assert len(sink) == 1
    assert system.stats.resolutions == resolutions  # cache hit, no new walk


# --------------------------------------------------------------------------- #
# CONS
# --------------------------------------------------------------------------- #

def test_cons_resolves_and_delivers():
    sim, topology, system, policy, xtrs = make_world("cons", num_sites=6, branching=2)
    sink = send_flow_packet(sim, topology, src_site=0, dst_site=5)
    assert len(sink) == 1
    assert system.stats.resolution_failures == 0
    assert system.tree_depth >= 2


def test_cons_reply_retraces_tree():
    sim, topology, system, policy, xtrs = make_world("cons", num_sites=6, branching=2)
    send_flow_packet(sim, topology, src_site=0, dst_site=5)
    # Request hops and reply hops are both counted: replies stay in-overlay.
    assert system.stats.by_type["map-request-hop"] >= 2
    assert system.stats.by_type["map-reply-hop"] >= 1
    assert system.stats.by_type["map-reply"] == 1


def test_cons_sibling_resolution_stays_low_in_tree():
    sim, topology, system, policy, xtrs = make_world("cons", num_sites=8, branching=2)
    send_flow_packet(sim, topology, src_site=0, dst_site=1)  # siblings
    sibling_msgs = system.stats.messages
    sim2, topo2, system2, policy2, _ = make_world("cons", num_sites=8, branching=2)
    send_flow_packet(sim2, topo2, src_site=0, dst_site=7)  # across the root
    assert system2.stats.messages > sibling_msgs


def test_cons_state_is_tree_degree():
    _sim, _topology, system, _policy, _xtrs = make_world("cons", num_sites=8, branching=2)
    entries = system.state_entries_per_router()
    # Interior CDRs hold children + parent; far less than total sites.
    assert all(count <= 3 for name, count in entries.items() if name.startswith("cdr"))


# --------------------------------------------------------------------------- #
# NERD
# --------------------------------------------------------------------------- #

def test_nerd_never_misses_after_push():
    sim, topology, system, policy, xtrs = make_world("nerd", miss_policy_cls=DropPolicy)
    sink = send_flow_packet(sim, topology)
    assert len(sink) == 1
    assert policy.stats.dropped == 0
    itr = xtrs[0][0]
    assert itr.map_cache.hits >= 1
    assert itr.resolutions_started == 0


def test_nerd_state_is_full_database():
    _sim, _topology, system, _policy, xtrs = make_world("nerd", num_sites=6)
    entries = system.state_entries_per_router()
    for xtr_list in xtrs.values():
        for xtr in xtr_list:
            assert entries[xtr.node.name] == 5  # all sites minus own


def test_nerd_push_cost_scales_with_sites_and_xtrs():
    _s4, _t4, system4, _p4, _x4 = make_world("nerd", num_sites=4)
    _s8, _t8, system8, _p8, _x8 = make_world("nerd", num_sites=8)
    assert system8.stats.bytes > system4.stats.bytes
    assert system8.pushes_sent == 16  # one full push per xTR (8 sites x 2)


def test_nerd_update_propagates_to_all_xtrs():
    sim, topology, system, policy, xtrs = make_world("nerd")
    site = topology.sites[1]
    updated = MappingRecord(site.eid_prefix,
                            (RlocEntry(site.rloc_of(1), priority=1, weight=50),),
                            ttl=60.0)
    before = system.stats.by_type["db-push-delta"]
    system.update_mapping(updated)
    sim.run()
    assert system.stats.by_type["db-push-delta"] == before + len(system.xtrs)
    itr = xtrs[0][0]
    hit = itr.map_cache.peek(site.hosts[0].address)
    assert hit.rlocs[0].address == site.rloc_of(1)


def test_nerd_mappings_never_age_out():
    sim, topology, system, policy, xtrs = make_world("nerd")
    sim.run(until=sim.now + 1e6)
    itr = xtrs[0][0]
    assert itr.map_cache.peek(topology.sites[1].hosts[0].address) is not None
