"""Smoke tests: every example script runs to completion and exits 0."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    result = subprocess.run([sys.executable, str(script)], capture_output=True,
                            text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
    assert "FAILED" not in result.stdout
