"""Unit tests for the IRC engine and the TE re-homing planner."""

import pytest

from repro.core.irc import IrcEngine
from repro.core.te import FlowMove, LinkLoadMonitor, plan_rebalance
from repro.net.addresses import IPv4Prefix
from repro.net.topology import build_topology
from repro.sim import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=15)
    topology = build_topology(sim, num_sites=2, num_providers=4, providers_per_site=3)
    return sim, topology


def make_irc(sim, topology, policy="balance", **kwargs):
    return IrcEngine(sim, topology.sites[0], topology, policy=policy, **kwargs)


def test_estimates_initialised_per_provider(world):
    sim, topology = world
    irc = make_irc(sim, topology)
    assert len(irc.estimates) == 3
    for estimate in irc.estimates:
        assert estimate.delay_ewma > 0


def test_latency_policy_prefers_lowest_delay(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="latency")
    irc.measure_once()
    best = min(range(3), key=lambda b: irc.estimates[b].delay_ewma)
    assert irc.select_ingress() == best


def test_primary_policy_always_zero(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="primary")
    assert [irc.select_ingress() for _ in range(5)] == [0] * 5


def test_balance_policy_round_robins_pledges(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="balance")
    picks = [irc.select_ingress() for _ in range(6)]
    # With no real traffic, pledges alone spread selections across all three.
    assert set(picks) == {0, 1, 2}
    counts = [picks.count(b) for b in range(3)]
    assert max(counts) - min(counts) <= 1


def test_balance_pledges_decay_after_measurement(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="balance")
    irc.select_ingress()
    assert irc.estimates[0].pledged_in > 0 or irc.estimates[1].pledged_in > 0
    irc.measure_once()
    irc.measure_once()
    assert all(estimate.pledged_in == 0 for estimate in irc.estimates)


def test_cost_policy_prefers_cheap_provider(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="cost", costs=[5.0, 1.0, 3.0])
    assert irc.select_ingress() == 1


def test_cost_policy_spills_over_at_cap(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="cost", costs=[5.0, 1.0, 3.0],
                   utilisation_cap=0.5, flow_bytes_estimate=1000)
    first = irc.select_ingress()
    assert first == 1
    # Pledge enough load onto the cheap link to exceed the cap.
    irc.estimates[1].pledged_in += 1_000_000
    assert irc.select_ingress() != 1


def test_unknown_policy_raises(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="bogus")
    with pytest.raises(ValueError):
        irc.select_ingress()


def test_egress_and_ingress_tracked_separately(world):
    sim, topology = world
    irc = make_irc(sim, topology, policy="balance")
    irc.select_ingress()
    assert any(e.pledged_in > 0 for e in irc.estimates)
    assert all(e.pledged_out == 0 for e in irc.estimates)
    irc.select_egress()
    assert any(e.pledged_out > 0 for e in irc.estimates)


def test_measure_loop_runs_periodically(world):
    sim, topology = world
    irc = make_irc(sim, topology, period=0.25)
    irc.start()
    irc.start()  # idempotent
    sim.run(until=1.1)
    assert irc.measurement_rounds == 5  # t=0, .25, .5, .75, 1.0


def test_select_ingress_rloc_returns_site_rloc(world):
    sim, topology = world
    irc = make_irc(sim, topology)
    rloc = irc.select_ingress_rloc()
    assert rloc in topology.sites[0].rlocs()


def test_snapshot_shape(world):
    sim, topology = world
    irc = make_irc(sim, topology)
    irc.measure_once()
    snapshot = irc.snapshot()
    assert len(snapshot) == 3
    for delay, bytes_in, bytes_out in snapshot:
        assert delay > 0 and bytes_in == 0 and bytes_out == 0


# --------------------------------------------------------------------------- #
# plan_rebalance
# --------------------------------------------------------------------------- #

def prefixes(*labels):
    return [IPv4Prefix(f"100.0.{i}.0/24") for i in range(len(labels))]


def test_plan_rebalance_improves_balance_without_thrashing():
    p = prefixes("a", "b", "c")
    moves = plan_rebalance(
        loads=[300, 0],
        flows_by_itr={0: [(p[0], 100), (p[1], 100), (p[2], 100)]},
        tolerance=1.1,
    )
    assert moves
    assert all(isinstance(move, FlowMove) for move in moves)
    # Every move strictly reduces the max: with 100-unit flows the best
    # reachable split of 300 is 200/100, reached in exactly one move.
    assert len(moves) == 1
    loads = [300, 0]
    for move in moves:
        loads[move.from_itr] -= move.bytes_estimate
        loads[move.to_itr] += move.bytes_estimate
    assert max(loads) < 300


def test_plan_rebalance_reaches_tolerance_with_fine_flows():
    p = [IPv4Prefix(f"100.{i >> 8}.{i & 255}.0/24") for i in range(30)]
    moves = plan_rebalance(
        loads=[300, 0],
        flows_by_itr={0: [(prefix, 10) for prefix in p]},
        tolerance=1.1,
    )
    loads = [300, 0]
    for move in moves:
        loads[move.from_itr] -= move.bytes_estimate
        loads[move.to_itr] += move.bytes_estimate
    assert max(loads) / (sum(loads) / 2) <= 1.1


def test_plan_rebalance_noop_when_balanced():
    p = prefixes("a", "b")
    moves = plan_rebalance(loads=[100, 100],
                           flows_by_itr={0: [(p[0], 100)], 1: [(p[1], 100)]})
    assert moves == []


def test_plan_rebalance_single_itr_noop():
    assert plan_rebalance([500], {0: [(prefixes("a")[0], 500)]}) == []


def test_plan_rebalance_zero_load_noop():
    assert plan_rebalance([0, 0], {}) == []


def test_plan_rebalance_respects_missing_flows():
    # Heaviest ITR has load but no movable flows (e.g. pinned traffic).
    moves = plan_rebalance(loads=[1000, 0], flows_by_itr={})
    assert moves == []


def test_plan_rebalance_terminates_on_unmovable_flow():
    p = prefixes("a")
    # One giant flow: moving it would just swap the imbalance; planner may
    # move it once at most and must terminate.
    moves = plan_rebalance(loads=[1000, 0], flows_by_itr={0: [(p[0], 1000)]},
                           tolerance=1.05)
    assert len(moves) <= 1


def test_link_load_monitor_window(world):
    sim, topology = world
    site = topology.sites[0]
    monitor = LinkLoadMonitor(sim, [links["uplink"] for links in site.access_links])
    assert monitor.window_bytes() == [0, 0, 0]
    assert monitor.imbalance() == 1.0
    site.access_links[0]["uplink"].stats.tx_bytes += 3000
    assert monitor.window_bytes() == [3000, 0, 0]
    assert monitor.imbalance() == pytest.approx(3.0)
    monitor.reset_window()
    assert monitor.window_bytes() == [0, 0, 0]
