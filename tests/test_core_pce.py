"""Integration tests for the PCE-based control plane (the paper's §2)."""

import pytest

from repro.core.control_plane import deploy_pce_control_plane
from repro.dns.hierarchy import install_dns
from repro.dns.resolver import StubResolver
from repro.net.addresses import IPv4Address
from repro.net.packet import udp_packet
from repro.net.topology import build_fig1_topology, build_topology
from repro.sim import Simulator


def make_world(seed=41, irc_policy="balance", fig1=True, num_sites=2, **cp_kwargs):
    sim = Simulator(seed=seed)
    if fig1:
        topology = build_fig1_topology(sim)
    else:
        topology = build_topology(sim, num_sites=num_sites, num_providers=4)
    dns = install_dns(topology)
    cp_kwargs.setdefault("start_irc", False)
    cp = deploy_pce_control_plane(sim, topology, dns, irc_policy=irc_policy, **cp_kwargs)
    return sim, topology, dns, cp


def start_flow(sim, topology, dns, src_site=0, dst_site=1, host=0, port=7000,
               first_packet_delay=0.0):
    """DNS lookup then a single data packet, like a connecting application."""
    source = topology.sites[src_site].hosts[0]
    target_site = topology.sites[dst_site]
    stub = StubResolver(sim, source, topology.sites[src_site].dns_address)
    sink = []
    target_site.hosts[host].bind_udp(port, lambda packet, node: sink.append(sim.now))
    outcome = {}

    def flow():
        address, elapsed = yield stub.lookup(dns.host_name(target_site, host))
        outcome["dns_address"] = address
        outcome["dns_elapsed"] = elapsed
        outcome["dns_done_at"] = sim.now
        if address is None:
            return
        if first_packet_delay:
            yield sim.timeout(first_packet_delay)
        source.send(udp_packet(source.address, address, 5000, port))

    sim.process(flow())
    return outcome, sink


def test_flow_first_packet_delivered_without_drop():
    """Claim C1: no packet dropped or queued during mapping resolution."""
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    assert outcome["dns_address"] == topology.sites[1].hosts[0].address
    assert len(sink) == 1
    assert cp.miss_policy.stats.dropped == 0
    assert cp.miss_policy.stats.queued == 0


def test_mapping_installed_before_dns_completes():
    """Claim C2: (T_DNS + T_map) ~ T_DNS — the push wins the race."""
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    site_s = topology.sites[0]
    pushed_at = cp.mapping_available_time(site_s, topology.sites[1].eid_prefix)
    assert pushed_at is not None
    assert pushed_at <= outcome["dns_done_at"]
    installs = sim.trace.of_kind("itr.mapping-installed")
    install_times = [r.time for r in installs
                     if r.detail.get("origin") == "pce-push"]
    assert len(install_times) == 2  # both ITRs of site S
    assert max(install_times) <= outcome["dns_done_at"] + 0.001


def test_fig1_step_ordering():
    """The eight steps of Fig. 1 must emerge, in order, from the simulation."""
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)

    def first_time(kind, source=None):
        for record in sim.trace.records:
            if record.kind == kind and (source is None or record.source == source):
                return record.time
        return None

    pce_s = topology.sites[0].pce_node.name
    pce_d = topology.sites[1].pce_node.name
    t1 = first_time("pce.step1-ipc", pce_s)
    t6 = first_time("pce.step6-encap", pce_d)
    t7a = first_time("pce.step7a-forward", pce_s)
    t7b = first_time("pce.step7b-push", pce_s)
    t8 = first_time("pce.step8-dns-reply", pce_s)
    assert None not in (t1, t6, t7a, t7b, t8)
    assert t1 <= t6 <= t7a <= t7b <= t8


def test_pce_observes_iterative_queries():
    """Steps 2-5: the PCEs transparently see the resolver's iterative walk."""
    sim, topology, dns, cp = make_world()
    start_flow(sim, topology, dns)
    sim.run(until=5.0)
    pce_s = cp.pces[0]
    assert pce_s.stats.queries_observed >= 3  # root, TLD, authoritative
    assert pce_s.stats.ipc_notifications == 1


def test_two_one_way_tunnels():
    """Step 7b: the ITR encapsulates with RLOC_S that may differ from its own."""
    sim, topology, dns, cp = make_world(irc_policy="balance")
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    encaps = sim.trace.of_kind("itr.encap")
    assert len(encaps) == 1
    record = encaps[0]
    src_rloc = IPv4Address(record.detail["src_rloc"])
    site_s = topology.sites[0]
    assert src_rloc in site_s.rlocs()
    # The chosen source RLOC came from the Step-1 ingress decision.
    pushes = sim.trace.of_kind("pce.step7b-push")
    assert IPv4Address(pushes[0].detail["src_rloc"]) == src_rloc


def test_reverse_mapping_multicast_to_all_etrs():
    """Closing paragraph: first data packet completes two-way resolution."""
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    assert cp.reverse_announcements == 1
    site_d = topology.sites[1]
    source_eid = topology.sites[0].hosts[0].address
    for xtr in cp.xtrs_by_site[site_d.index]:
        reverse = xtr.map_cache.peek(source_eid)
        assert reverse is not None, f"{xtr.node.name} missing reverse mapping"
        assert reverse.eid_prefix.length == 32
    pce_d = cp.pces[site_d.index]
    assert pce_d.stats.reverse_mappings_learned == 1


def test_reverse_traffic_flows_without_resolution():
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    src_host = topology.sites[0].hosts[0]
    dst_host = topology.sites[1].hosts[0]
    reverse_sink = []
    src_host.bind_udp(7001, lambda packet, node: reverse_sink.append(sim.now))
    dst_host.send(udp_packet(dst_host.address, src_host.address, 7000, 7001))
    sim.run(until=sim.now + 2.0)
    assert len(reverse_sink) == 1
    assert cp.miss_policy.stats.dropped == 0


def test_reverse_tunnel_lands_on_step1_chosen_rloc():
    """The ingress locator chosen at Step 1 receives the reverse traffic."""
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    pushes = sim.trace.of_kind("pce.step7b-push")
    chosen_ingress = IPv4Address(pushes[0].detail["src_rloc"])
    dst_host = topology.sites[1].hosts[0]
    src_host = topology.sites[0].hosts[0]
    src_host.bind_udp(7001, lambda packet, node: None)
    dst_host.send(udp_packet(dst_host.address, src_host.address, 7000, 7001))
    sim.run(until=sim.now + 2.0)
    site_s = topology.sites[0]
    chosen_xtr = site_s.xtr_for_rloc(chosen_ingress)
    xtr_service = chosen_xtr.services["xtr-service"]
    assert xtr_service.decapsulated == 1


def test_dns_cache_hit_triggers_refresh_push():
    """A cached DNS answer must still (re)arm the ITRs after mapping expiry."""
    sim, topology, dns, cp = make_world(mapping_ttl=5.0)
    start_flow(sim, topology, dns)
    # Run past the mapping TTL (5 s) but within the DNS TTL (60 s): the next
    # lookup is answered from the resolver cache, so no port-P message will
    # travel — the PCE must refresh the ITRs from its own database.
    sim.run(until=8.0)
    outcome2, sink2 = start_flow(sim, topology, dns, port=7005)
    sim.run(until=12.0)
    assert len(sink2) == 1
    assert cp.miss_policy.stats.dropped == 0
    pce_s = cp.pces[0]
    assert pce_s.stats.refresh_pushes >= 1


def test_push_to_one_mode_pushes_single_itr():
    sim, topology, dns, cp = make_world(push_mode="one")
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    assert len(sink) == 1
    installs = [r for r in sim.trace.of_kind("itr.mapping-installed")
                if r.detail.get("origin") == "pce-push"]
    assert len(installs) == 1


def test_te_rebalance_moves_flows_and_keeps_traffic_flowing():
    sim, topology, dns, cp = make_world(num_sites=4, fig1=False)
    # Start flows to three destinations; all egress routes initially set.
    sinks = []
    for dst in (1, 2, 3):
        _outcome, sink = start_flow(sim, topology, dns, dst_site=dst, port=7000 + dst)
        sinks.append(sink)
    sim.run(until=5.0)
    site = topology.sites[0]
    assignment = cp.egress_assignments[site.index]
    assert len(assignment) == 3
    # Force imbalance: pretend ITR0 is overloaded.
    loads = [10_000_000 if idx == 0 else 0 for idx in range(len(site.xtrs))]
    moves = cp.rebalance_site_egress(site, loads=loads)
    if all(index == 0 for index in assignment.values()):
        pytest.skip("balance policy already spread flows; nothing to move")
    assert cp.te_moves_applied == len(moves)


def test_rehomed_flow_survives_in_push_to_all_mode():
    """The Step-7b rationale: moves are safe because every ITR has the mapping."""
    sim, topology, dns, cp = make_world()
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    site = topology.sites[0]
    prefix = topology.sites[1].eid_prefix
    current = cp.egress_assignments[site.index][prefix]
    other = 1 - current
    cp.set_egress_route(site, prefix, other)
    src = site.hosts[0]
    dst = topology.sites[1].hosts[0]
    src.send(udp_packet(src.address, dst.address, 5000, 7000))
    sim.run(until=sim.now + 2.0)
    assert len(sink) == 2
    assert cp.miss_policy.stats.dropped == 0


def test_rehomed_flow_drops_in_push_to_one_mode():
    """Ablation: without push-to-all, a TE move strands the flow."""
    sim, topology, dns, cp = make_world(push_mode="one")
    outcome, sink = start_flow(sim, topology, dns)
    sim.run(until=5.0)
    site = topology.sites[0]
    prefix = topology.sites[1].eid_prefix
    current = cp.egress_assignments[site.index][prefix]
    other = 1 - current
    cp.set_egress_route(site, prefix, other)
    src = site.hosts[0]
    dst = topology.sites[1].hosts[0]
    src.send(udp_packet(src.address, dst.address, 5000, 7000))
    sim.run(until=sim.now + 2.0)
    assert len(sink) == 1  # the re-homed packet was lost at the new ITR
    assert cp.miss_policy.stats.dropped == 1


def test_precompute_false_adds_latency():
    sim_a, topo_a, dns_a, cp_a = make_world(seed=43, precompute=True)
    out_a, _ = start_flow(sim_a, topo_a, dns_a)
    sim_a.run(until=5.0)
    sim_b, topo_b, dns_b, cp_b = make_world(seed=43, precompute=False,
                                            computation_delay=0.02)
    out_b, _ = start_flow(sim_b, topo_b, dns_b)
    sim_b.run(until=5.0)
    assert out_b["dns_elapsed"] > out_a["dns_elapsed"] + 0.015


def test_irc_background_process_updates_measurements():
    sim, topology, dns, cp = make_world(start_irc=True, irc_period=0.5)
    sim.run(until=3.0)
    irc = cp.ircs[0]
    assert irc.measurement_rounds >= 6


def test_control_message_accounting():
    sim, topology, dns, cp = make_world()
    start_flow(sim, topology, dns)
    sim.run(until=5.0)
    assert cp.total_push_messages() == 2  # one per ITR at site S
    assert cp.total_push_bytes() > 0
    assert cp.total_control_messages() >= 3
