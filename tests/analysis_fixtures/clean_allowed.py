"""Clean fixture: sanctioned entropy plus an explicit pragma suppression."""

import random
import time

SEEDED = random.Random(42)
STARTED = time.time()  # repro: allow=DET01


class TidyCounter:
    _SNAPSHOT_EXEMPT = ("sim",)

    def __init__(self, sim):
        self.sim = sim
        self.count = 0

    def snapshot_state(self):
        return {"count": self.count}

    def restore_state(self, state):
        self.count = state["count"]
