"""DET01 fixture: every flavour of unsanctioned entropy."""

import random
import time
import uuid

JITTER = random.random()
STARTED = time.time()
TOKEN = uuid.uuid4()
GENERATOR = random.Random()


def worst_order(items):
    return sorted(items, key=id)
