"""SNAP01 fixture: an __init__ attribute the checkpoint never captures."""


class LeakyCounter:
    """Drops ``dropped`` on restore — exactly the bug SNAP01 exists for."""

    _SNAPSHOT_EXEMPT = ("sim",)

    def __init__(self, sim):
        self.sim = sim
        self.count = 0
        self.dropped = 0

    def snapshot_state(self):
        return (self.count,)

    def restore_state(self, state):
        (self.count,) = state
