"""SNAP02 fixture: snapshot writes a key the restore never reads."""


class SkewedStore:
    def __init__(self):
        self.items = []
        self.total = 0

    def snapshot_state(self):
        return {"items": list(self.items), "total": self.total}

    def restore_state(self, state):
        self.items = list(state["items"])
        self.total = 0
