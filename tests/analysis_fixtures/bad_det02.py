"""DET02 fixture: set iteration order leaking into ordered work."""


def schedule_all(sim, hosts):
    for host in set(hosts):
        sim.process(host)


def digest_names(names):
    return ",".join({name.lower() for name in names})


def materialise(flags):
    pending = {flag for flag in flags}
    return list(pending)
