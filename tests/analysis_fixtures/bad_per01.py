"""PER01 fixture: the perpetual generator loop PeriodicTask replaces."""


def heartbeat(sim, period):
    while True:
        yield sim.timeout(period)
