"""Tests for the parameter-sweep engine: expansion, determinism, artifacts."""

import csv
import gc
import json
import random
import weakref

import pytest

from repro.cli import main
from repro.experiments.sweep import (PRESETS, SweepGrid, aggregate_cells,
                                     expand_grid, payload_digest, run_cell,
                                     run_sweep, write_csv, write_csv_stream)

TINY = SweepGrid(name="tiny", control_planes=("pce", "alt"), site_counts=(3,),
                 seeds=(1, 2), zipf_values=(1.0,), num_flows=8,
                 arrival_rate=10.0)


def test_expand_grid_cross_product_and_order():
    grid = SweepGrid(control_planes=("pce", "alt"), site_counts=(3, 4),
                     seeds=(1, 2), zipf_values=(0.0, 1.0))
    cells = expand_grid(grid)
    assert len(cells) == 2 * 2 * 2 * 2
    assert [cell.index for cell in cells] == list(range(16))
    assert len({cell.cell_id for cell in cells}) == 16
    # Nesting order: control plane outermost, seed innermost.
    assert cells[0].cell_id == "pce-sites3-zipf0-seed1"
    assert cells[1].cell_id == "pce-sites3-zipf0-seed2"
    assert cells[-1].cell_id == "alt-sites4-zipf1-seed2"


def test_expand_grid_rejects_unknown_control_plane():
    with pytest.raises(ValueError):
        expand_grid(SweepGrid(control_planes=("bogus",)))


def test_expand_grid_cells_trace_disabled():
    for cell in expand_grid(TINY):
        assert cell.scenario.tracing is False


def test_run_cell_produces_metrics():
    cell = expand_grid(TINY)[0]
    result = run_cell(cell)
    assert result["cell_id"] == cell.cell_id
    assert result["metrics"]["flows"] == 8
    assert result["metrics"]["packets_sent"] > 0
    assert result["metrics"]["dns_latency"]["count"] > 0
    assert result["metrics"]["sim_events"] > 0


def test_sweep_deterministic_across_runs_and_workers():
    first = run_sweep(TINY, workers=1)
    again = run_sweep(TINY, workers=1)
    fanned = run_sweep(TINY, workers=2)
    assert payload_digest(first) == payload_digest(again)
    assert payload_digest(first) == payload_digest(fanned)


def test_sweep_artifacts(tmp_path):
    json_path = tmp_path / "sweep.json"
    csv_path = tmp_path / "sweep.csv"
    payload = run_sweep(TINY, workers=1, json_path=str(json_path),
                        csv_path=str(csv_path))
    on_disk = json.loads(json_path.read_text())
    assert on_disk["schema"] == "repro.sweep/v6"
    assert on_disk["num_cells"] == len(payload["cells"]) == 4
    assert payload_digest(on_disk) == payload_digest(payload)
    with open(csv_path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    assert {row["cell_id"] for row in rows} \
        == {cell["cell_id"] for cell in payload["cells"]}


def test_aggregates_group_seeds():
    payload = run_sweep(TINY, workers=1)
    aggregates = payload["aggregates"]
    assert len(aggregates) == 2  # one per control plane
    for aggregate in aggregates:
        assert aggregate["cells"] == 2
        assert aggregate["seeds"] == [1, 2]
    by_system = {a["control_plane"]: a for a in aggregates}
    # The PCE control plane pushes mappings, so it never drops first packets;
    # the reactive ALT baseline with the drop policy does (paper E1 shape).
    assert by_system["pce"]["first_packet_drops"] == 0
    assert by_system["alt"]["first_packet_drops"] > 0


def test_scale_preset_reaches_production_scale():
    grid = PRESETS["scale"]
    cells = expand_grid(grid)
    assert len(cells) >= 24
    assert max(cell.scenario.num_sites for cell in cells) >= 100
    assert max(grid.zipf_values) > 1.0


def test_large_cell_runs():
    """One >=100-site Zipf-skewed cell builds and completes."""
    grid = SweepGrid(control_planes=("alt",), site_counts=(110,), seeds=(5,),
                     zipf_values=(1.2,), num_flows=20, arrival_rate=40.0,
                     num_providers=8)
    result = run_cell(expand_grid(grid)[0])
    assert result["num_sites"] == 110
    assert result["metrics"]["flows"] == 20
    assert result["metrics"]["resolutions_started"] > 0


def test_cli_sweep_command(tmp_path, capsys):
    json_path = tmp_path / "cli.json"
    code = main(["sweep", "--preset", "smoke", "--workers", "1",
                 "--sites", "3", "--seeds", "1", "--flows", "6",
                 "--json", str(json_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "sweep 'smoke'" in out
    payload = json.loads(json_path.read_text())
    assert payload["num_cells"] == 2  # 2 control planes x 1 site x 1 seed
    assert payload["grid"]["num_flows"] == 6


def test_cli_sweep_unknown_preset(capsys):
    assert main(["sweep", "--preset", "nope"]) == 1
    assert "unknown preset" in capsys.readouterr().out


def test_aggregate_cells_sorted_and_stable():
    payload = run_sweep(TINY, workers=1)
    reordered = list(reversed(payload["cells"]))
    assert aggregate_cells(reordered) == payload["aggregates"]


class _TrackedResult(dict):
    """Weakref-able result dict, to prove the fold releases each cell."""


def test_aggregation_never_holds_the_full_cell_list():
    """aggregate_cells folds a one-shot stream; no cell outlives its turn."""
    payload = run_sweep(TINY, workers=1)
    refs = []

    def stream():
        for cell in payload["cells"]:
            tracked = _TrackedResult(json.loads(json.dumps(cell)))
            refs.append(weakref.ref(tracked))
            yield tracked

    aggregates = aggregate_cells(stream())
    assert aggregates == payload["aggregates"]
    gc.collect()
    alive = [ref for ref in refs if ref() is not None]
    assert alive == [], f"fold retained {len(alive)} cell results"


def test_aggregation_is_completion_order_independent():
    """Any permutation of the stream folds to byte-identical aggregates."""
    payload = run_sweep(TINY, workers=1)
    shuffled = list(payload["cells"])
    random.Random(5).shuffle(shuffled)
    assert json.dumps(aggregate_cells(iter(shuffled)), sort_keys=True) \
        == json.dumps(payload["aggregates"], sort_keys=True)


def test_write_csv_stream_reorders_by_index(tmp_path):
    payload = run_sweep(TINY, workers=1)
    sorted_path = tmp_path / "sorted.csv"
    shuffled_path = tmp_path / "shuffled.csv"
    write_csv(payload, str(sorted_path))
    shuffled = list(payload["cells"])
    random.Random(9).shuffle(shuffled)
    write_csv_stream(iter(shuffled), str(shuffled_path))
    assert shuffled_path.read_bytes() == sorted_path.read_bytes()
    with open(sorted_path) as handle:
        indexes = [int(row["index"]) for row in csv.DictReader(handle)]
    assert indexes == sorted(indexes)


def test_run_sweep_without_cells_payload(tmp_path):
    """include_cells=False: memory-flat payload, same aggregates, CSV intact."""
    csv_path = tmp_path / "flat.csv"
    flat = run_sweep(TINY, workers=1, include_cells=False,
                     csv_path=str(csv_path))
    full = run_sweep(TINY, workers=1)
    assert "cells" not in flat
    assert flat["num_cells"] == full["num_cells"]
    assert flat["aggregates"] == full["aggregates"]
    with open(csv_path) as handle:
        assert len(list(csv.DictReader(handle))) == full["num_cells"]
    with pytest.raises(ValueError):
        run_sweep(TINY, workers=1, include_cells=False, json_path="x.json")


def test_probing_sweep_hits_world_cache():
    """Failover-style cells (probing enabled) reuse cached worlds: no bypass."""
    grid = SweepGrid(name="probing", control_planes=("pce",), site_counts=(3,),
                     seeds=(21,), fail_fractions=(0.0, 0.5), fail_at=0.3,
                     repair_at=1.5, num_flows=8, arrival_rate=10.0,
                     packets_per_flow=4,
                     scenario_overrides={"enable_probing": True,
                                         "probe_period": 0.3,
                                         "probe_timeout": 0.15})
    payload = run_sweep(grid, workers=1)
    cache = payload["world_cache"]
    assert cache["bypasses"] == 0
    assert cache["hits"] == 1 and cache["builds"] == 1
    assert payload_digest(payload) == payload_digest(run_sweep(grid, workers=2))


def test_cli_sweep_no_json(tmp_path, capsys):
    csv_path = tmp_path / "cells.csv"
    code = main(["sweep", "--preset", "smoke", "--workers", "1",
                 "--sites", "3", "--seeds", "1", "--flows", "6",
                 "--no-json", "--csv", str(csv_path),
                 "--jsonl", str(tmp_path / "cells.jsonl")])
    assert code == 0
    assert "sweep 'smoke'" in capsys.readouterr().out
    with open(csv_path) as handle:
        assert len(list(csv.DictReader(handle))) == 2
    assert main(["sweep", "--preset", "smoke", "--no-json",
                 "--json", str(tmp_path / "x.json")]) == 1
    assert "--no-json" in capsys.readouterr().out


def test_cli_sweep_snapshot_dir(tmp_path, capsys):
    """--snapshot-dir persists blobs; the rerun builds nothing and says so."""
    args = ["sweep", "--preset", "smoke", "--workers", "2",
            "--sites", "3", "--seeds", "1", "--flows", "6",
            "--no-json", "--jsonl", str(tmp_path / "cells.jsonl"),
            "--snapshot-dir", str(tmp_path / "worlds")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "snapshot store (persistent)" in out
    assert "2 built" in out
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 built" in out
    assert "2 blob hits" in out


def test_pacing_axis_expands_and_validates():
    grid = SweepGrid(control_planes=("alt",), site_counts=(3,), seeds=(1,),
                     pacings=("constant", "shaped"))
    cells = expand_grid(grid)
    assert len(cells) == 2
    assert cells[0].workload.pacing == "constant"
    assert cells[1].workload.pacing == "shaped"
    assert "shaped" in cells[1].cell_id and "shaped" not in cells[0].cell_id
    # Pacing pairs share worlds: the scenario config ignores the pacing.
    assert cells[0].scenario == cells[1].scenario
    with pytest.raises(ValueError):
        expand_grid(SweepGrid(pacings=("bogus",)))


def test_pacing_axis_digest_invariant_across_workers():
    """--workers 1 vs 4 over the pacing axis: byte-identical digests."""
    grid = SweepGrid(name="paced", control_planes=("pce",), site_counts=(3,),
                     seeds=(1, 2), size_dists=("pareto",),
                     pacings=("constant", "shaped"), num_flows=10,
                     arrival_rate=10.0, packets_per_flow=4,
                     scenario_overrides={"access_rate_bps": 5_000_000.0})
    serial = run_sweep(grid, workers=1)
    fanned = run_sweep(grid, workers=4)
    assert payload_digest(serial) == payload_digest(fanned)
    pacings = {cell["pacing"] for cell in serial["cells"]}
    assert pacings == {"constant", "shaped"}
    # Shaping moves bytes in time, not in volume: with no drops the two
    # pacing modes of the same seed offer the same flow byte budgets.
    for aggregate in serial["aggregates"]:
        assert aggregate["bytes_conserved"] is True


def test_shaped_preset_shapes_traffic():
    grid = PRESETS["shaped"]
    cells = expand_grid(grid)
    assert {cell.workload.pacing for cell in cells} \
        == {"constant", "shaped", "fluid"}
    assert all(cell.scenario.access_rate_bps == 10_000_000.0 for cell in cells)
    # Pacing triples share worlds, cutting the distinct world count 3x.
    from repro.experiments.sweep import distinct_world_configs
    assert len(distinct_world_configs(cells)) == len(cells) // 3


def test_cell_metrics_carry_byte_accounting():
    cell = expand_grid(SweepGrid(
        control_planes=("pce",), site_counts=(3,), seeds=(4,),
        pacings=("shaped",), size_dists=("pareto",), num_flows=10,
        arrival_rate=10.0, packets_per_flow=4,
        scenario_overrides={"access_rate_bps": 5_000_000.0}))[0]
    result = run_cell(cell)
    metrics = result["metrics"]
    assert metrics["bytes_offered"] > 0
    assert metrics["bytes_offered"] == metrics["bytes_delivered"] \
        + metrics["bytes_dropped"] + metrics["bytes_in_flight"]
    assert metrics["bytes_conserved"] is True
    assert metrics["flow_bytes_sent"] <= metrics["flow_bytes_budget"]
    assert metrics["access_util_peak"] > 0.0
    assert result["pacing"] == "shaped"


def test_grid_overrides_may_shadow_axis_fields():
    """Overrides win over axis-derived kwargs instead of raising TypeError."""
    grid = SweepGrid(control_planes=("alt",), site_counts=(4,), seeds=(1,),
                     scenario_overrides={"num_sites": 5, "miss_policy": "queue"},
                     workload_overrides={"num_flows": 3})
    cell = expand_grid(grid)[0]
    assert cell.scenario.num_sites == 5
    assert cell.scenario.miss_policy == "queue"
    assert cell.workload.num_flows == 3
