"""Integration tests: iterative DNS resolution across the simulated WAN."""

from repro.dns.hierarchy import install_dns
from repro.dns.resolver import StubResolver
from repro.net.topology import build_topology
from repro.sim import Simulator


def make_world(num_sites=2, extra_levels=0, use_cache=True, seed=11, **topo_kwargs):
    sim = Simulator(seed=seed)
    topology = build_topology(sim, num_sites=num_sites, num_providers=4, **topo_kwargs)
    dns = install_dns(topology, extra_levels=extra_levels, use_cache=use_cache)
    return sim, topology, dns


def run_lookup(sim, topology, dns, src_site_idx=0, dst_site_idx=1, host_idx=0):
    src_site = topology.sites[src_site_idx]
    dst_site = topology.sites[dst_site_idx]
    host = src_site.hosts[0]
    stub = StubResolver(sim, host, src_site.dns_address)
    qname = dns.host_name(dst_site, host_idx)
    proc = stub.lookup(qname)
    sim.run()
    assert proc.ok, proc.value
    return proc.value  # (address, elapsed)


def test_cross_site_resolution_returns_eid():
    sim, topology, dns = make_world()
    address, elapsed = run_lookup(sim, topology, dns)
    assert address == topology.sites[1].hosts[0].address
    assert elapsed > 0.02  # walked root + TLD + authoritative over the WAN


def test_resolution_of_each_host():
    sim, topology, dns = make_world()
    site = topology.sites[1]
    stub = StubResolver(sim, topology.sites[0].hosts[0], topology.sites[0].dns_address)
    procs = [stub.lookup(dns.host_name(site, i)) for i in range(len(site.hosts))]
    sim.run()
    for i, proc in enumerate(procs):
        address, _elapsed = proc.value
        assert address == site.hosts[i].address


def test_nxdomain_for_missing_host():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    proc = stub.lookup(f"host99.{dns.site_domain(topology.sites[1])}")
    sim.run()
    address, _elapsed = proc.value
    assert address is None


def test_cache_makes_second_lookup_local():
    sim, topology, dns = make_world()
    _address, cold = run_lookup(sim, topology, dns)
    resolver = dns.resolver_for(topology.sites[0])
    upstream_before = resolver.upstream_queries
    _address, warm = run_lookup(sim, topology, dns)
    assert warm < cold / 5  # answered from cache: local RTT only
    assert resolver.upstream_queries == upstream_before


def test_cache_expiry_forces_rewalk():
    sim, topology, dns = make_world(use_cache=True)
    run_lookup(sim, topology, dns)
    resolver = dns.resolver_for(topology.sites[0])
    upstream_before = resolver.upstream_queries
    sim.run(until=sim.now + 10000.0)  # beyond every TTL
    run_lookup(sim, topology, dns)
    assert resolver.upstream_queries > upstream_before


def test_no_cache_mode_always_walks():
    sim, topology, dns = make_world(use_cache=False)
    resolver = dns.resolver_for(topology.sites[0])
    run_lookup(sim, topology, dns)
    first = resolver.upstream_queries
    run_lookup(sim, topology, dns)
    assert resolver.upstream_queries == 2 * first


def test_extra_levels_lengthen_resolution():
    sim0, topo0, dns0 = make_world(use_cache=False, seed=13)
    _addr, shallow = run_lookup(sim0, topo0, dns0)
    sim2, topo2, dns2 = make_world(extra_levels=2, use_cache=False, seed=13)
    _addr, deep = run_lookup(sim2, topo2, dns2)
    assert deep > shallow
    resolver = dns2.resolver_for(topo2.sites[0])
    assert resolver.upstream_queries == 5  # root, tld, lvl0, lvl1, site


def test_resolution_within_own_site_is_authoritative():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    proc = stub.lookup(dns.host_name(site, 1))
    sim.run()
    address, elapsed = proc.value
    assert address == site.hosts[1].address
    assert elapsed < 0.005  # no WAN hop
    assert dns.resolver_for(site).upstream_queries == 0


def test_many_sites_resolution_matrix():
    sim, topology, dns = make_world(num_sites=5, hosts_per_site=1)
    stubs = [StubResolver(sim, site.hosts[0], site.dns_address) for site in topology.sites]
    procs = {}
    for a, _src in enumerate(topology.sites):
        for b, dst in enumerate(topology.sites):
            if a == b:
                continue
            procs[(a, b)] = stubs[a].lookup(dns.host_name(dst, 0))
    sim.run()
    for (a, b), proc in procs.items():
        address, _ = proc.value
        assert address == topology.sites[b].hosts[0].address, (a, b)


def test_query_listener_fires_like_ipc():
    """The resolver's query hook is the paper's PCE<->DNS IPC (Step 1)."""
    sim, topology, dns = make_world()
    resolver = dns.resolver_for(topology.sites[0])
    seen = []
    resolver.query_listeners.append(
        lambda client, qname, time: seen.append((client, qname)))
    run_lookup(sim, topology, dns)
    assert seen == [(topology.sites[0].hosts[0].address,
                     dns.host_name(topology.sites[1], 0))]


def test_tld_and_root_serve_queries():
    sim, topology, dns = make_world(use_cache=False)
    run_lookup(sim, topology, dns)
    assert dns.root_server.queries_served == 1
    assert dns.tld_server.queries_served == 1
