"""Tests for IPv4 address and prefix types, including hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.errors import AddressError

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


def test_parse_and_format_roundtrip():
    assert str(IPv4Address("10.1.2.3")) == "10.1.2.3"
    assert int(IPv4Address("0.0.0.0")) == 0
    assert int(IPv4Address("255.255.255.255")) == (1 << 32) - 1


@pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"])
def test_bad_addresses_rejected(bad):
    with pytest.raises(AddressError):
        IPv4Address(bad)


def test_address_out_of_range_rejected():
    with pytest.raises(AddressError):
        IPv4Address(1 << 32)
    with pytest.raises(AddressError):
        IPv4Address(-1)


def test_address_equality_and_ordering():
    assert IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)
    assert IPv4Address("10.0.0.1") == "10.0.0.1"
    assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
    assert IPv4Address("9.255.255.255") < IPv4Address("10.0.0.0")


def test_address_hashable_and_copyable():
    a = IPv4Address("1.2.3.4")
    assert len({a, IPv4Address("1.2.3.4")}) == 1
    assert IPv4Address(a) == a


def test_address_arithmetic():
    assert IPv4Address("10.0.0.1") + 5 == IPv4Address("10.0.0.6")


def test_address_bytes_roundtrip():
    a = IPv4Address("192.168.1.42")
    assert IPv4Address.from_bytes(a.to_bytes()) == a


@given(addresses)
def test_address_int_str_roundtrip(value):
    address = IPv4Address(value)
    assert IPv4Address(str(address)) == address
    assert int(IPv4Address(str(address))) == value


def test_prefix_parsing():
    p = IPv4Prefix("10.0.0.0/8")
    assert p.length == 8
    assert str(p) == "10.0.0.0/8"
    assert p.num_addresses == 1 << 24


def test_prefix_host_bits_rejected():
    with pytest.raises(AddressError):
        IPv4Prefix("10.0.0.1/8")


def test_prefix_containing_masks_host_bits():
    p = IPv4Prefix.containing("10.1.2.3", 8)
    assert p == IPv4Prefix("10.0.0.0/8")


def test_prefix_contains_address_and_prefix():
    p = IPv4Prefix("10.0.0.0/8")
    assert p.contains("10.255.0.1")
    assert not p.contains("11.0.0.0")
    assert p.contains(IPv4Prefix("10.1.0.0/16"))
    assert not IPv4Prefix("10.1.0.0/16").contains(p)


def test_prefix_overlaps():
    assert IPv4Prefix("10.0.0.0/8").overlaps(IPv4Prefix("10.1.0.0/16"))
    assert not IPv4Prefix("10.0.0.0/8").overlaps(IPv4Prefix("11.0.0.0/8"))


def test_prefix_address_at_bounds():
    p = IPv4Prefix("192.168.0.0/24")
    assert p.address_at(0) == IPv4Address("192.168.0.0")
    assert p.address_at(255) == IPv4Address("192.168.0.255")
    with pytest.raises(AddressError):
        p.address_at(256)


def test_prefix_subnets():
    subs = list(IPv4Prefix("10.0.0.0/30").subnets(31))
    assert subs == [IPv4Prefix("10.0.0.0/31"), IPv4Prefix("10.0.0.2/31")]
    with pytest.raises(AddressError):
        list(IPv4Prefix("10.0.0.0/30").subnets(29))


def test_prefix_hosts_skips_network_address():
    hosts = list(IPv4Prefix("10.0.0.0/24").hosts(count=3))
    assert hosts == [IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), IPv4Address("10.0.0.3")]


def test_default_prefix_contains_everything():
    default = IPv4Prefix("0.0.0.0/0")
    assert default.contains("1.2.3.4")
    assert default.contains("255.255.255.255")


@given(addresses, prefix_lengths)
def test_prefix_contains_its_base(value, length):
    prefix = IPv4Prefix.containing(value, length)
    assert prefix.contains(IPv4Address(value))


@given(addresses, prefix_lengths)
def test_prefix_roundtrip_via_str(value, length):
    prefix = IPv4Prefix.containing(value, length)
    assert IPv4Prefix(str(prefix)) == prefix


@given(addresses, st.integers(min_value=1, max_value=32))
def test_subprefix_is_contained(value, length):
    prefix = IPv4Prefix.containing(value, length - 1)
    sub = IPv4Prefix.containing(value, length)
    assert prefix.contains(sub)
