"""Failure injection: dead servers, partitions, and half-broken paths.

The substrate must degrade gracefully — flows fail cleanly (marked failed,
no exceptions, no stuck processes), and recover when the fault heals.
"""

from repro.experiments import ScenarioConfig, WorkloadConfig, build_scenario, run_workload
from repro.experiments.scenario import FLOW_UDP_PORT
from repro.net.packet import udp_packet


def fig1_world(**overrides):
    config = ScenarioConfig(control_plane="pce", fig1=True, seed=61, **overrides)
    return build_scenario(config)


def cut_node_links(node, up):
    for iface in node.interfaces.values():
        if iface.link is not None:
            iface.link.up = up
            # Also the reverse direction of the pair.
            peer = iface.link.dst_interface
            for peer_iface in peer.node.interfaces.values():
                if peer_iface.link is not None and \
                        peer_iface.link.dst_interface is iface:
                    peer_iface.link.up = up


def start_lookup(scenario, src_site=0, dst_site=1):
    site = scenario.topology.sites[src_site]
    host = site.hosts[0]
    stub = scenario.stub_for(host, site)
    return stub.lookup(scenario.host_name(scenario.topology.sites[dst_site], 0),
                       timeout=1.0, retries=1)


def test_dead_root_server_fails_lookup_cleanly():
    scenario = fig1_world()
    root = scenario.topology.infra_hosts["root-dns"]
    cut_node_links(root, up=False)
    proc = start_lookup(scenario)
    scenario.sim.run(until=30.0)
    assert proc.processed and proc.ok
    address, elapsed = proc.value
    assert address is None
    assert elapsed > 0


def test_root_recovery_restores_resolution():
    scenario = fig1_world()
    sim = scenario.sim
    root = scenario.topology.infra_hosts["root-dns"]
    cut_node_links(root, up=False)
    first = start_lookup(scenario)
    sim.run(until=30.0)
    assert first.value[0] is None
    cut_node_links(root, up=True)
    second = start_lookup(scenario)
    sim.run(until=60.0)
    assert second.value[0] == scenario.topology.sites[1].hosts[0].address


def test_dead_authoritative_server_only_breaks_its_zone():
    scenario = fig1_world()
    sim = scenario.sim
    site_d = scenario.topology.sites[1]
    cut_node_links(site_d.dns_node, up=False)
    # Lookup toward the dead zone fails...
    failed = start_lookup(scenario, src_site=0, dst_site=1)
    sim.run(until=30.0)
    assert failed.value[0] is None
    # ...but the resolver itself still answers its own zone.
    site_s = scenario.topology.sites[0]
    stub = scenario.stub_for(site_s.hosts[0], site_s)
    ok = stub.lookup(scenario.host_name(site_s, 1))
    sim.run(until=60.0)
    assert ok.value[0] == site_s.hosts[1].address


def test_workload_survives_mid_run_dns_outage():
    """Flows during an authoritative outage fail; the run completes."""
    config = ScenarioConfig(control_plane="pce", num_sites=4, seed=67)
    scenario = build_scenario(config)
    sim = scenario.sim
    victim = scenario.topology.sites[2]
    sim.call_in(0.5, cut_node_links, victim.dns_node, False)
    records = run_workload(scenario, WorkloadConfig(num_flows=30, arrival_rate=10.0,
                                                    grace_period=15.0))
    assert len(records) == 30
    failed = [r for r in records if r.failed]
    succeeded = [r for r in records if not r.failed]
    assert succeeded, "flows to healthy sites must still succeed"
    # Any successful flow still lost nothing (the PCE guarantee holds).
    assert all(r.packets_lost == 0 for r in succeeded)
    # Flows whose destination zone died (after its TTL'd entries expired)
    # fail cleanly rather than hanging.
    for record in failed:
        assert record.destination is None


def test_total_partition_between_sites_loses_data_not_control():
    """Cutting the destination's access links after resolution: packets die
    in the network, the simulation stays consistent."""
    scenario = fig1_world()
    sim = scenario.sim
    site_s, site_d = scenario.topology.sites
    source = site_s.hosts[0]
    stub = scenario.stub_for(source, site_s)
    state = {}

    def flow():
        address, _ = yield stub.lookup(scenario.host_name(site_d, 0))
        state["address"] = address
        source.send(udp_packet(source.address, address, 5000, FLOW_UDP_PORT))

    sim.process(flow())
    sim.run(until=2.0)
    sink = scenario.sink_for(site_d.index, 0)
    assert sink.received == 1
    # Now cut every access link of site D and send again.
    for links in site_d.access_links:
        links["uplink"].up = False
        links["downlink"].up = False
    source.send(udp_packet(source.address, state["address"], 5000, FLOW_UDP_PORT))
    sim.run(until=4.0)
    assert sink.received == 1  # second packet lost in the dead access links
    drops = sum(links["downlink"].stats.drops for links in site_d.access_links)
    assert drops == 1


def test_queue_policy_timeout_drops_buffered_packets_eventually():
    """If resolution never completes (dead overlay), queued packets do not
    leak: the buffer stays bounded and the flow simply loses them."""
    config = ScenarioConfig(control_plane="alt", num_sites=3, seed=71,
                            miss_policy="queue", queue_depth=4)
    scenario = build_scenario(config)
    sim = scenario.sim
    # Kill the destination site's overlay entry point (xtr0 carries ALT).
    site_d = scenario.topology.sites[1]
    cut_node_links(site_d.xtrs[0], up=False)
    src = scenario.topology.sites[0].hosts[0]
    dst = site_d.hosts[0]
    for _ in range(10):
        src.send(udp_packet(src.address, dst.address, 5000, FLOW_UDP_PORT))
    sim.run(until=20.0)
    stats = scenario.miss_policy.stats
    assert stats.queued <= 4
    assert stats.queue_overflow == 10 - stats.queued
    assert scenario.mapping_system.stats.resolution_failures >= 1
