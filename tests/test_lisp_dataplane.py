"""Tests for mappings, map-cache, headers and encap/decap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lisp.headers import LispHeader, MapReply, MapRequest, decapsulate, encapsulate
from repro.lisp.map_cache import MapCache
from repro.lisp.mappings import MappingRecord, RlocEntry
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.packet import udp_packet
from repro.sim import Simulator


def mapping(prefix="100.0.1.0/24", rlocs=(("10.1.1.1", 1, 50),), ttl=60.0, source=None):
    entries = tuple(RlocEntry(address, priority=p, weight=w) for address, p, w in rlocs)
    return MappingRecord(IPv4Prefix(prefix), entries, ttl=ttl, source_rloc=source)


def test_best_rloc_prefers_lowest_priority():
    record = mapping(rlocs=(("10.1.1.1", 2, 50), ("11.1.1.1", 1, 50)))
    assert record.best_rloc().address == IPv4Address("11.1.1.1")


def test_best_rloc_breaks_ties_by_weight():
    record = mapping(rlocs=(("10.1.1.1", 1, 10), ("11.1.1.1", 1, 90)))
    assert record.best_rloc().address == IPv4Address("11.1.1.1")


def test_best_rloc_skips_unreachable():
    record = MappingRecord("100.0.1.0/24",
                           (RlocEntry("10.1.1.1", 1, 50, reachable=False),
                            RlocEntry("11.1.1.1", 2, 50)))
    assert record.best_rloc().address == IPv4Address("11.1.1.1")


def test_best_rloc_none_when_all_down():
    record = MappingRecord("100.0.1.0/24",
                           (RlocEntry("10.1.1.1", 1, 50, reachable=False),))
    assert record.best_rloc() is None


def test_with_chosen_rloc():
    record = mapping(rlocs=(("10.1.1.1", 1, 50), ("11.1.1.1", 2, 50)))
    narrowed = record.with_chosen_rloc("11.1.1.1")
    assert [r.address for r in narrowed.rlocs] == [IPv4Address("11.1.1.1")]
    with pytest.raises(ValueError):
        record.with_chosen_rloc("12.1.1.1")


def test_with_source_rloc():
    record = mapping().with_source_rloc("10.9.9.9")
    assert record.source_rloc == IPv4Address("10.9.9.9")


def test_mapping_size_scales_with_rlocs():
    one = mapping(rlocs=(("10.1.1.1", 1, 50),))
    two = mapping(rlocs=(("10.1.1.1", 1, 50), ("11.1.1.1", 2, 50)))
    assert two.size_bytes == one.size_bytes + 12


def test_encap_decap_roundtrip():
    inner = udp_packet("100.0.0.10", "100.0.1.10", 5000, 80, payload_bytes=100)
    outer = encapsulate(inner, "10.1.1.1", "12.1.1.1")
    assert outer.ip.src == IPv4Address("10.1.1.1")
    assert outer.ip.dst == IPv4Address("12.1.1.1")
    assert outer.udp.dport == 4341
    got_inner, outer_ip, lisp = decapsulate(outer)
    assert got_inner is inner
    assert outer_ip.src == IPv4Address("10.1.1.1")
    assert isinstance(lisp, LispHeader)


def test_encap_adds_exactly_36_bytes():
    inner = udp_packet("100.0.0.10", "100.0.1.10", 1, 2, payload_bytes=64)
    outer = encapsulate(inner, "10.1.1.1", "12.1.1.1")
    assert outer.size_bytes == inner.size_bytes + 20 + 8 + 8


def test_decapsulate_requires_inner():
    plain = udp_packet("10.0.0.1", "10.0.0.2", 1, 2)
    with pytest.raises(ValueError):
        decapsulate(plain)


def test_control_message_sizes():
    request = MapRequest(nonce=1, eid="100.0.1.10", itr_rloc="10.1.1.1")
    reply = MapReply(nonce=1, mapping=mapping())
    assert request.size_bytes == 40
    assert reply.size_bytes == 12 + mapping().size_bytes


def test_map_cache_hit_and_miss():
    sim = Simulator()
    cache = MapCache(sim)
    assert cache.lookup("100.0.1.10") is None
    cache.install(mapping("100.0.1.0/24"))
    assert cache.lookup("100.0.1.10") is not None
    assert cache.lookup("100.0.2.10") is None
    assert cache.hits == 1 and cache.misses == 2


def test_map_cache_longest_prefix_wins():
    sim = Simulator()
    cache = MapCache(sim)
    cache.install(mapping("100.0.0.0/16", rlocs=(("10.0.0.1", 1, 50),)))
    cache.install(mapping("100.0.1.0/24", rlocs=(("11.0.0.1", 1, 50),)))
    hit = cache.lookup("100.0.1.5")
    assert hit.rlocs[0].address == IPv4Address("11.0.0.1")


def test_map_cache_ttl_expiry():
    sim = Simulator()
    cache = MapCache(sim)
    cache.install(mapping(ttl=10.0))
    sim.run(until=9.0)
    assert cache.lookup("100.0.1.10") is not None
    sim.run(until=10.5)
    assert cache.lookup("100.0.1.10") is None
    assert cache.expirations == 1


def test_map_cache_ttl_override():
    sim = Simulator()
    cache = MapCache(sim, ttl_override=5.0)
    cache.install(mapping(ttl=1000.0))
    sim.run(until=6.0)
    assert cache.lookup("100.0.1.10") is None


def test_map_cache_permanent_entry():
    sim = Simulator()
    cache = MapCache(sim)
    cache.install(mapping(), ttl=float("inf"))
    sim.run(until=1e9)
    assert cache.lookup("100.0.1.10") is not None


def test_map_cache_peek_does_not_count():
    sim = Simulator()
    cache = MapCache(sim)
    cache.peek("100.0.1.10")
    assert cache.misses == 0 and cache.hits == 0


def test_map_cache_entries_and_len():
    sim = Simulator()
    cache = MapCache(sim)
    cache.install(mapping("100.0.1.0/24"))
    cache.install(mapping("100.0.2.0/24"))
    assert len(cache) == 2
    cache.invalidate("100.0.1.0/24")
    assert len(cache) == 1


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=600))
def test_map_cache_never_returns_expired(third_octet, ttl):
    sim = Simulator()
    cache = MapCache(sim)
    prefix = f"100.0.{third_octet}.0/24"
    cache.install(mapping(prefix, ttl=float(ttl)))
    sim.run(until=ttl + 0.001)
    assert cache.lookup(f"100.0.{third_octet}.10") is None
