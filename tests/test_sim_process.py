"""Tests for generator-based processes."""

import pytest

from repro.sim import Simulator
from repro.sim.errors import SimulationError, StopProcess
from repro.sim.process import Interrupt


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert proc.processed and proc.ok
    assert proc.value == "done"
    assert sim.now == 2.0


def test_process_receives_timeout_value():
    sim = Simulator()
    seen = []

    def worker():
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(worker())
    sim.run()
    assert seen == ["payload"]


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 42

    def parent():
        result = yield sim.process(child())
        return result * 2

    proc = sim.process(parent())
    sim.run()
    assert proc.value == 84


def test_process_waiting_on_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "early"

    child_proc = sim.process(child())

    def parent():
        yield sim.timeout(5.0)
        result = yield child_proc  # already processed by now
        return result

    parent_proc = sim.process(parent())
    sim.run()
    assert parent_proc.value == "early"
    assert sim.now == 5.0


def test_process_sees_event_failure_as_exception():
    sim = Simulator()
    outcome = []

    def worker():
        doomed = sim.event()
        sim.call_in(1.0, lambda: doomed.fail(RuntimeError("kaput")))
        try:
            yield doomed
        except RuntimeError as exc:
            outcome.append(str(exc))

    sim.process(worker())
    sim.run()
    assert outcome == ["kaput"]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def worker():
        yield "not an event"

    proc = sim.process(worker())
    sim.run()
    assert proc.processed and not proc.ok
    assert isinstance(proc.exception, SimulationError)


def test_yielding_foreign_event_fails_process():
    sim = Simulator()
    other = Simulator()

    def worker():
        yield other.timeout(1.0)

    proc = sim.process(worker())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.exception, SimulationError)


def test_stop_process_sets_result():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        raise StopProcess("stopped")

    proc = sim.process(worker())
    sim.run()
    assert proc.ok
    assert proc.value == "stopped"


def test_interrupt_is_catchable():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))
        yield sim.timeout(1.0)
        log.append(("recovered", sim.now))
        return "recovered"

    proc = sim.process(sleeper())
    sim.call_in(2.0, proc.interrupt, "wake up")
    sim.run()
    assert log == [("interrupted", 2.0, "wake up"), ("recovered", 3.0)]
    assert proc.value == "recovered"


def test_uncaught_interrupt_finishes_process_with_cause():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.process(sleeper())
    sim.call_in(1.0, proc.interrupt, "cause-value")
    sim.run()
    assert proc.ok
    assert proc.value == "cause-value"


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.5)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_is_alive_transitions():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_many_processes_make_progress():
    sim = Simulator()
    finished = []

    def worker(index):
        for _ in range(index % 5 + 1):
            yield sim.timeout(0.1 * (index + 1))
        finished.append(index)

    for index in range(100):
        sim.process(worker(index))
    sim.run()
    assert sorted(finished) == list(range(100))


def test_uncaught_exception_fails_process_and_propagates_to_waiter():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    caught = []

    def supervisor():
        try:
            yield sim.process(crasher())
        except RuntimeError as exc:
            caught.append(str(exc))

    crash_proc = sim.process(crasher())
    sim.process(supervisor())
    sim.run()
    assert caught == ["boom"]
    assert crash_proc.processed and not crash_proc.ok
    assert isinstance(crash_proc.exception, RuntimeError)
    assert len(sim.trace.of_kind("process.failed")) == 2


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)
