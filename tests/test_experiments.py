"""Tests for the experiment layer: scenarios, workloads, and small driver runs."""

import pytest

from repro.experiments import ScenarioConfig, WorkloadConfig, build_scenario, run_workload
from repro.experiments.scenario import CONTROL_PLANES
from repro.experiments.workload import classify_first_packet


@pytest.mark.parametrize("control_plane", CONTROL_PLANES)
def test_build_scenario_each_control_plane(control_plane):
    config = ScenarioConfig(control_plane=control_plane, num_sites=3, seed=3)
    scenario = build_scenario(config)
    assert len(scenario.topology.sites) == 3
    if control_plane == "pce":
        assert scenario.control_plane is not None
        assert len(scenario.control_plane.pces) == 3
    elif control_plane == "plain":
        assert scenario.control_plane is None and scenario.mapping_system is None
    else:
        assert scenario.mapping_system is not None
        assert scenario.mapping_system.name == control_plane


def test_unknown_control_plane_rejected():
    with pytest.raises(ValueError):
        build_scenario(ScenarioConfig(control_plane="bogus"))


def test_unknown_miss_policy_rejected():
    with pytest.raises(ValueError):
        build_scenario(ScenarioConfig(control_plane="alt", miss_policy="bogus"))


def test_config_variant_copies():
    base = ScenarioConfig(num_sites=4)
    changed = base.variant(num_sites=8, control_plane="alt")
    assert base.num_sites == 4
    assert changed.num_sites == 8 and changed.control_plane == "alt"


@pytest.mark.parametrize("control_plane,expect_loss", [
    ("pce", False), ("nerd", False), ("plain", False), ("alt", True),
])
def test_workload_loss_profile(control_plane, expect_loss):
    config = ScenarioConfig(control_plane=control_plane, num_sites=4, seed=9,
                            miss_policy="drop")
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=15, arrival_rate=10.0))
    assert len(records) == 15
    assert all(not r.failed for r in records)
    lost = sum(r.packets_lost for r in records)
    if expect_loss:
        assert lost > 0
    else:
        assert lost == 0


def test_workload_tcp_mode_records_setup():
    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=13)
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=8, arrival_rate=5.0,
                                                    mode="tcp"))
    ok = [r for r in records if not r.failed]
    assert ok
    for record in ok:
        assert record.setup_elapsed is not None
        assert record.dns_elapsed is not None
        assert record.established_at >= record.dns_done_at


def test_workload_dest_site_pinning():
    config = ScenarioConfig(control_plane="plain", num_sites=4, seed=13)
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=10, dest_site=2))
    dest = scenario.topology.sites[2]
    for record in records:
        assert dest.eid_prefix.contains(record.destination)
        assert not dest.eid_prefix.contains(record.source)


def test_workload_source_site_pinning():
    config = ScenarioConfig(control_plane="plain", num_sites=4, seed=13)
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=10, source_site=1))
    source = scenario.topology.sites[1]
    for record in records:
        assert source.eid_prefix.contains(record.source)


def test_workload_deterministic_per_seed():
    def run_once():
        config = ScenarioConfig(control_plane="alt", num_sites=4, seed=77,
                                miss_policy="drop")
        scenario = build_scenario(config)
        records = run_workload(scenario, WorkloadConfig(num_flows=12))
        return [(str(r.source), str(r.destination), r.packets_delivered)
                for r in records]

    assert run_once() == run_once()


def test_classify_first_packet_categories():
    record = type("R", (), {})()
    record.failed = False
    record.packets_sent = 3
    record.packets_delivered = 3
    record.first_packet_fates = ["dropped-at-itr"]
    assert classify_first_packet(record) == "dropped"
    record.first_packet_fates = ["queued-at-itr", "flushed-after-queue", "encapsulated"]
    assert classify_first_packet(record) == "queued-then-sent"
    record.first_packet_fates = ["carried-over-cp"]
    assert classify_first_packet(record) == "carried-over-cp"
    record.first_packet_fates = ["encapsulated", "decapsulated"]
    assert classify_first_packet(record) == "sent-immediately"
    record.first_packet_fates = []
    assert classify_first_packet(record) == "sent-immediately"  # plain mode
    record.failed = True
    assert classify_first_packet(record) == "not-sent"


def test_flow_cut_off_before_dns_completes_is_failed():
    """Regression: FlowRecord's Optional fields stay None on early failure.

    With no grace period the last flows are cut off mid-DNS: their
    ``destination``/``dns_done_at`` must remain None *and* ``failed`` must
    be set, so every consumer (first-packet classification, sweep metric
    sums, the E2 overlap measurement) can rely on the flag instead of
    tripping over a None timestamp.
    """
    from repro.experiments.e2_overlap import _mapping_ready_time

    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=41)
    scenario = build_scenario(config)
    records = run_workload(scenario, WorkloadConfig(num_flows=10,
                                                    arrival_rate=50.0,
                                                    grace_period=0.0))
    cut_off = [r for r in records if r.dns_done_at is None]
    assert cut_off, "expected at least one flow cut off mid-DNS"
    for record in cut_off:
        assert record.failed
        assert record.destination is None and record.dns_elapsed is None
        assert record.bytes_budget == 0 and record.flow_kind is None
        # Every downstream consumer of the Optional fields stays happy.
        assert classify_first_packet(record) == "not-sent"
        assert _mapping_ready_time(scenario, record) is None
    # The sweep's per-cell sums never touch the None fields either.
    assert sum(r.bytes_sent for r in records) >= 0
    assert sum(1 for r in records if r.failed) >= len(cut_off)


def test_e4_reports_link_utilization_from_byte_accounting():
    from repro.experiments import e4_te_flexibility as e4

    rows = e4.run_e4(num_sites=4, num_flows=16, seed=53,
                     variants=(("pce+balance",
                                dict(control_plane="pce",
                                     irc_policy="balance")),))
    (row,) = rows
    assert row.inbound_peak_util > 0.0
    assert sum(row.inbound_shares) == pytest.approx(1.0)
    # Unrated links can't accumulate busy time: utilization collapses to 0
    # while the byte shares (from per-flow accounting) survive.
    (unrated,) = e4.run_e4(num_sites=4, num_flows=16, seed=53,
                           access_rate_bps=None,
                           variants=(("pce+balance",
                                      dict(control_plane="pce",
                                           irc_policy="balance")),))
    assert unrated.inbound_peak_util == 0.0
    assert sum(unrated.inbound_shares) == pytest.approx(1.0)


def test_access_byte_shares_sum_to_one_under_traffic():
    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=5)
    scenario = build_scenario(config)
    run_workload(scenario, WorkloadConfig(num_flows=10, dest_site=0))
    shares = scenario.access_byte_shares(scenario.topology.sites[0], "in")
    assert sum(shares) == pytest.approx(1.0)


def test_small_driver_runs_e2_and_e8():
    """The remaining drivers are exercised end-to-end by the benchmarks; a
    small smoke here keeps the module importable and shape-checked fast."""
    from repro.experiments import e2_overlap as e2
    from repro.experiments import e8_reverse_mapping as e8

    rows = e2.run_e2(num_sites=4, num_flows=8, depths=(0,), systems=("pce", "alt"))
    assert e2.check_shape(rows) == [] or all("deeper" in f for f in e2.check_shape(rows))
    rows = e8.run_e8(num_sites=3, providers_per_site=2, num_flows=8)
    assert e8.check_shape(rows) == []
