"""Tests for the shared world-snapshot store: serialization, invalidation.

The store's contract is *rebuild, never stale-restore*: any blob that
fails validation (corruption, schema or engine state-version bump, world
key mismatch) is discarded and the world built from the config.  And a
restore must be invisible in the results: fresh-built, LRU-reused and
blob-restored worlds produce byte-identical sweep digests.
"""

import json

import pytest

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import (SweepGrid, distinct_world_configs,
                                     expand_grid, payload_digest,
                                     prebuild_worlds, run_cell, run_sweep)
from repro.experiments import worldbuild
from repro.experiments.worldbuild import (SNAPSHOT_MAGIC, SnapshotError,
                                          SnapshotStore, WorldBuilder,
                                          build_world, deserialize_world,
                                          serialize_world,
                                          snapshot_fingerprint, world_key)

CONFIG = ScenarioConfig(control_plane="pce", num_sites=3, seed=5,
                        tracing=False)

GRID = SweepGrid(name="snap", control_planes=("pce", "alt"), site_counts=(3,),
                 seeds=(1,), zipf_values=(0.5, 1.2), num_flows=8,
                 arrival_rate=10.0)


def _blob_path(directory, config):
    return directory / f"{snapshot_fingerprint(config)}.world"


# --------------------------------------------------------------------- #
# Serialization round-trip
# --------------------------------------------------------------------- #

def test_serialize_deserialize_round_trip():
    blob = serialize_world(build_world(CONFIG))
    assert blob.startswith(SNAPSHOT_MAGIC)
    scenario = deserialize_world(blob, CONFIG)
    assert scenario.config == CONFIG
    assert scenario.world_checkpoint is not None


def test_restored_world_runs_cells_byte_identically():
    """The core determinism contract: a blob-restored world is invisible."""
    grid = SweepGrid(control_planes=("pce",), site_counts=(3,), seeds=(5,),
                     num_flows=10, arrival_rate=10.0)
    cell = expand_grid(grid)[0]
    fresh = run_cell(cell)

    store = SnapshotStore()
    assert store.ensure(cell.scenario) == "build"
    builder = WorldBuilder(store=store)
    restored = run_cell(cell, builder=builder)
    assert builder.last_outcome == "restore"
    assert json.dumps(fresh, sort_keys=True) \
        == json.dumps(restored, sort_keys=True)


def test_serialize_requires_checkpointed_settled_world():
    from repro.experiments.scenario import build_scenario

    bare = build_scenario(CONFIG)  # no checkpoint attached
    with pytest.raises(ValueError, match="checkpoint"):
        serialize_world(bare)
    scenario = build_world(CONFIG)
    scenario.sim.call_in(0.5, lambda: None)  # pending foreground event
    assert not scenario.sim.serializable
    with pytest.raises(ValueError, match="foreground"):
        serialize_world(scenario)


# --------------------------------------------------------------------- #
# Invalidation: every mismatch forces a rebuild
# --------------------------------------------------------------------- #

def test_corrupted_blob_forces_rebuild(tmp_path):
    store = SnapshotStore(str(tmp_path))
    assert store.ensure(CONFIG) == "build"
    path = _blob_path(tmp_path, CONFIG)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF  # flip a payload byte: CRC catches it
    path.write_bytes(bytes(data))

    fresh_store = SnapshotStore(str(tmp_path))
    assert not fresh_store.has_snapshot(CONFIG)
    assert fresh_store.stats.invalidated == 1
    assert not path.exists()  # discarded, not retried forever
    assert fresh_store.ensure(CONFIG) == "build"
    assert fresh_store.restore(CONFIG) is not None


def test_truncated_blob_forces_rebuild(tmp_path):
    store = SnapshotStore(str(tmp_path))
    store.ensure(CONFIG)
    path = _blob_path(tmp_path, CONFIG)
    path.write_bytes(path.read_bytes()[:200])
    fresh_store = SnapshotStore(str(tmp_path))
    assert not fresh_store.has_snapshot(CONFIG)
    assert fresh_store.stats.invalidated == 1


def test_non_snapshot_file_is_rejected(tmp_path):
    path = _blob_path(tmp_path, CONFIG)
    path.write_bytes(b"not a snapshot at all")
    store = SnapshotStore(str(tmp_path))
    assert not store.has_snapshot(CONFIG)
    with pytest.raises(SnapshotError, match="bad magic"):
        deserialize_world(b"junk", CONFIG)


def test_schema_version_bump_invalidates_blobs(tmp_path, monkeypatch):
    store = SnapshotStore(str(tmp_path))
    store.ensure(CONFIG)
    blob = _blob_path(tmp_path, CONFIG).read_bytes()

    monkeypatch.setattr(worldbuild, "SNAPSHOT_SCHEMA",
                        worldbuild.SNAPSHOT_SCHEMA + 1)
    # The fingerprint changes with the schema, so the old file is simply
    # not found under the new name...
    bumped_store = SnapshotStore(str(tmp_path))
    assert not bumped_store.has_snapshot(CONFIG)
    assert bumped_store.ensure(CONFIG) == "build"
    # ...and even a blob handed over directly fails envelope validation.
    with pytest.raises(SnapshotError, match="schema mismatch"):
        deserialize_world(blob, CONFIG)


def test_engine_state_version_bump_invalidates_blobs(monkeypatch):
    blob = serialize_world(build_world(CONFIG))
    monkeypatch.setattr(worldbuild, "STATE_VERSION",
                        worldbuild.STATE_VERSION + 1)
    with pytest.raises(SnapshotError, match="state-version mismatch"):
        deserialize_world(blob, CONFIG)


def test_world_key_collision_forces_rebuild(tmp_path):
    """A blob filed under another config's fingerprint must not restore:
    the envelope carries the full world key and the mismatch is caught."""
    other = CONFIG.variant(seed=99)
    blob = serialize_world(build_world(CONFIG))
    _blob_path(tmp_path, other).write_bytes(blob)

    store = SnapshotStore(str(tmp_path))
    assert not store.has_snapshot(other)
    assert store.stats.invalidated == 1
    assert not _blob_path(tmp_path, other).exists()
    assert store.ensure(other) == "build"
    restored = store.restore(other)
    assert restored.config == other
    with pytest.raises(SnapshotError, match="world-key mismatch"):
        deserialize_world(blob, other)


def test_restore_falls_back_to_build_in_builder(tmp_path):
    """A builder whose store blob is invalid builds instead (outcome miss)."""
    store = SnapshotStore(str(tmp_path))
    store.ensure(CONFIG)
    path = _blob_path(tmp_path, CONFIG)
    data = bytearray(path.read_bytes())
    data[-10] ^= 0xFF
    path.write_bytes(bytes(data))

    builder = WorldBuilder(store=SnapshotStore(str(tmp_path)))
    scenario = builder.scenario_for(CONFIG)
    assert builder.last_outcome == "miss"
    assert builder.stats.builds == 1 and builder.stats.restores == 0
    assert scenario.world_checkpoint is not None


# --------------------------------------------------------------------- #
# Store bookkeeping
# --------------------------------------------------------------------- #

def test_fingerprint_covers_key_and_versions(monkeypatch):
    base = snapshot_fingerprint(CONFIG)
    assert snapshot_fingerprint(CONFIG) == base
    assert snapshot_fingerprint(CONFIG.variant(seed=6)) != base
    monkeypatch.setattr(worldbuild, "SNAPSHOT_SCHEMA",
                        worldbuild.SNAPSHOT_SCHEMA + 1)
    assert snapshot_fingerprint(CONFIG) != base


def test_memory_store_one_build_many_restores():
    store = SnapshotStore()
    assert store.ensure(CONFIG) == "build"
    assert store.ensure(CONFIG) == "hit"
    first = store.restore(CONFIG)
    second = store.restore(CONFIG)
    assert first is not second  # every restore is an independent world
    assert store.stats.builds == 1
    assert store.stats.restores == 2
    assert len(store) == 1


def test_world_cache_stats_counts_restores():
    from repro.experiments.worldbuild import WorldCacheStats

    stats = WorldCacheStats()
    for outcome in ("miss", "restore", "restore", "hit"):
        stats.count(outcome)
    assert stats.as_dict() == {"builds": 1, "hits": 1, "misses": 3,
                               "restores": 2, "bypasses": 0}
    with pytest.raises(ValueError):
        stats.count("bypass")


def test_prebuild_worlds_builds_each_distinct_world_once():
    cells = expand_grid(GRID)
    configs = distinct_world_configs(cells)
    assert len(configs) == 2  # one per control plane; zipf is workload-only
    assert len({world_key(c) for c in configs}) == 2
    store = SnapshotStore()
    prebuild_worlds(store, cells, workers=1)
    assert store.stats.builds == 2
    prebuild_worlds(store, cells, workers=1)  # idempotent: all blobs valid
    assert store.stats.builds == 2


def test_prebuild_worlds_blob_pool_path(tmp_path):
    """The spawn-platform tier: a build pool returns blobs to the parent,
    which stores them; restores deserialize independent worlds."""
    cells = expand_grid(GRID)
    store = SnapshotStore(str(tmp_path / "worlds"))
    prebuild_worlds(store, cells, workers=2, live=False)
    assert store.stats.builds == 2
    assert len(list((tmp_path / "worlds").glob("*.world"))) == 2
    first = store.restore(cells[0].scenario)
    second = store.restore(cells[0].scenario)
    assert first is not None and first is not second  # blob tier: copies


def test_ensure_live_composes_with_directory(tmp_path):
    """live=True with a directory populates both tiers in one build: the
    live world serves this run's workers, the blob outlives the run."""
    directory = str(tmp_path / "worlds")
    store = SnapshotStore(directory)
    assert store.ensure(CONFIG, live=True) == "build"
    assert store.stats.builds == 1
    assert _blob_path(tmp_path / "worlds", CONFIG).exists()
    first = store.restore(CONFIG)
    assert first is store.restore(CONFIG)  # live tier: shared object

    # A warm store hydrates its live tier from the blob: zero builds.
    warm = SnapshotStore(directory)
    assert warm.ensure(CONFIG, live=True) == "hit"
    assert warm.stats.builds == 0
    hydrated = warm.restore(CONFIG)
    assert hydrated is warm.restore(CONFIG)  # restored live, in place


# --------------------------------------------------------------------- #
# Sweep integration: the acceptance criteria at test scale
# --------------------------------------------------------------------- #

def test_fanned_sweep_builds_each_world_once_and_matches_serial():
    serial = run_sweep(GRID, workers=1)
    fanned = run_sweep(GRID, workers=4)
    assert payload_digest(serial) == payload_digest(fanned)
    cache = fanned["world_cache"]
    assert cache["store"]["builds"] == 2   # exactly one per distinct key
    assert cache["builds"] == 2            # and no worker-side builds
    assert cache["restores"] == cache["misses"]
    assert cache["bypasses"] == 0


def test_snapshot_dir_rerun_performs_zero_builds(tmp_path):
    snapshot_dir = str(tmp_path / "worlds")
    cold = run_sweep(GRID, workers=2, snapshot_dir=snapshot_dir)
    warm = run_sweep(GRID, workers=2, snapshot_dir=snapshot_dir)
    assert cold["world_cache"]["store"]["builds"] == 2
    assert warm["world_cache"]["builds"] == 0
    assert warm["world_cache"]["store"]["builds"] == 0
    assert warm["world_cache"]["store"]["blob_hits"] == 2
    assert payload_digest(cold) == payload_digest(warm)
    # The store outlives the sweep: blobs are content-addressed files.
    stored = list((tmp_path / "worlds").glob("*.world"))
    assert len(stored) == 2


def test_snapshot_dir_serial_run_restores_instead_of_building(tmp_path):
    snapshot_dir = str(tmp_path / "worlds")
    run_sweep(GRID, workers=1, snapshot_dir=snapshot_dir)
    warm = run_sweep(GRID, workers=1, snapshot_dir=snapshot_dir)
    assert warm["world_cache"]["builds"] == 0
    assert warm["world_cache"]["restores"] == 2  # one blob restore per world
    assert warm["world_cache"]["store"]["persistent"] is True


def test_probing_failover_worlds_snapshot_cleanly(tmp_path):
    """The hardest worlds (armed periodic tasks, prober state) round-trip
    through the file-backed store with byte-identical results."""
    grid = SweepGrid(name="snapfail", control_planes=("pce",),
                     site_counts=(3,), seeds=(21,), fail_fractions=(0.0, 0.5),
                     fail_at=0.3, repair_at=1.5, num_flows=8,
                     arrival_rate=10.0, packets_per_flow=4,
                     scenario_overrides={"enable_probing": True,
                                         "probe_period": 0.3,
                                         "probe_timeout": 0.15})
    serial = run_sweep(grid, workers=1)
    snapshot_dir = str(tmp_path / "worlds")
    stored = run_sweep(grid, workers=2, snapshot_dir=snapshot_dir)
    rerun = run_sweep(grid, workers=2, snapshot_dir=snapshot_dir)
    assert payload_digest(serial) == payload_digest(stored)
    assert payload_digest(serial) == payload_digest(rerun)
    assert rerun["world_cache"]["builds"] == 0


def test_blob_is_pure_bytes_and_worlds_are_independent():
    """Restored worlds share nothing: mutating one leaves the blob intact."""
    store = SnapshotStore()
    store.ensure(CONFIG)
    first = store.restore(CONFIG)
    checkpoint_now = first.sim.now
    # Dirty the first world thoroughly.
    from repro.experiments.workload import WorkloadConfig, run_workload
    run_workload(first, WorkloadConfig(num_flows=6, arrival_rate=10.0))
    assert first.sim.now > checkpoint_now
    second = store.restore(CONFIG)
    assert second is not first
    assert second.sim.now == checkpoint_now
    for xtrs in second.xtrs_by_site.values():
        for xtr in xtrs:
            assert xtr.map_cache.hits == 0 and xtr.map_cache.misses == 0
