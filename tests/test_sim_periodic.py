"""Tests for engine-owned periodic tasks: ticking, drain semantics, restore."""

import pytest

from repro.sim import Simulator


def make_counter(sim, period=1.0, name=None):
    hits = []
    task = sim.periodic(lambda: hits.append(sim.now), period, name=name)
    return task, hits


def test_first_tick_fires_one_period_after_start():
    sim = Simulator()
    task, hits = make_counter(sim, period=0.5)
    task.start()
    assert task.next_fire == 0.5
    sim.run(until=2.0)
    assert hits == [0.5, 1.0, 1.5, 2.0]
    assert task.ticks == 4


def test_explicit_first_fire():
    sim = Simulator()
    task, hits = make_counter(sim, period=1.0)
    task.start(first_fire=0.25)
    sim.run(until=2.5)
    assert hits == [0.25, 1.25, 2.25]


def test_start_is_idempotent_and_stop_disarms():
    sim = Simulator()
    task, hits = make_counter(sim)
    task.start()
    task.start()
    sim.run(until=1.0)
    assert hits == [1.0]
    task.stop()
    assert not task.armed
    sim.run(until=5.0)
    assert hits == [1.0]  # the pending tick was invalidated


def test_callback_may_stop_its_own_task():
    sim = Simulator()
    task = sim.periodic(lambda: task.stop(), 1.0)
    task.start()
    sim.run(until=10.0)
    assert task.ticks == 1
    assert not task.armed


def test_restart_after_stop_rearms_from_now():
    sim = Simulator()
    task, hits = make_counter(sim, period=1.0)
    task.start()
    sim.run(until=1.5)
    task.stop()
    task.start()
    assert task.next_fire == 2.5
    sim.run(until=3.0)
    assert hits == [1.0, 2.5]


def test_armed_task_does_not_keep_drain_alive():
    """run() with no until treats periodic ticks as background, not work."""
    sim = Simulator()
    task, hits = make_counter(sim, period=0.5)
    task.start()
    assert sim.run() == 0.0   # nothing foreground: returns immediately
    assert hits == []
    assert task.armed


def test_drain_fires_ticks_that_precede_foreground_work():
    """Time order is preserved during a drain: earlier ticks fire first."""
    sim = Simulator()
    task, hits = make_counter(sim, period=1.0)
    task.start()
    order = []
    sim.call_in(2.5, order.append, "event")
    sim.run()
    assert hits == [1.0, 2.0]      # ticks before the event fired in order
    assert order == ["event"]
    assert sim.now == 2.5
    assert task.armed              # still armed for the next run(until=...)


def test_tick_spawned_work_extends_the_drain():
    sim = Simulator()
    seen = []
    task = sim.periodic(
        lambda: sim.call_in(0.1, lambda: seen.append(sim.now)), 1.0)
    task.start()
    sim.call_in(1.5, seen.append, "anchor")
    sim.run()
    # tick@1.0 scheduled foreground work at 1.1, which the drain completed.
    assert seen == [1.1, "anchor"]


def test_ticks_count_as_processed_events():
    sim = Simulator()
    task, _hits = make_counter(sim, period=1.0)
    task.start()
    sim.run(until=3.0)
    assert sim.processed_events == 3


def test_invalid_period_and_past_first_fire_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.periodic(lambda: None, 0.0)
    task = sim.periodic(lambda: None, 1.0)
    sim.call_in(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        task.start(first_fire=1.0)


def test_snapshot_requires_drained_foreground_only():
    """Armed periodic tasks are fine to checkpoint; pending events are not."""
    sim = Simulator()
    task, _hits = make_counter(sim)
    task.start()
    state = sim.snapshot_state()   # no foreground: OK despite the armed task
    assert state is not None
    sim.call_in(1.0, lambda: None)
    with pytest.raises(RuntimeError):
        sim.snapshot_state()


def test_restore_rearms_timers_identically():
    """A restored engine ticks at exactly the instants the original would."""

    def run_ticks(sim, task, hits):
        sim.run(until=sim.now + 3.0)
        return list(hits)

    sim = Simulator(seed=3)
    task, hits = make_counter(sim, period=0.7)
    task.start()
    checkpoint = sim.snapshot_state()
    expected = run_ticks(sim, task, hits)
    assert expected == pytest.approx([0.7, 1.4, 2.1, 2.8])

    sim.restore_state(checkpoint)
    hits.clear()
    assert sim.now == 0.0 and task.ticks == 0 and task.next_fire == 0.7
    assert run_ticks(sim, task, hits) == expected


def test_restore_rearms_after_mid_flight_checkpoint():
    sim = Simulator()
    task, hits = make_counter(sim, period=1.0)
    task.start()
    sim.run(until=2.5)
    checkpoint = sim.snapshot_state()
    sim.run(until=5.0)
    assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]
    sim.restore_state(checkpoint)
    hits.clear()
    sim.run(until=5.0)
    assert hits == [3.0, 4.0, 5.0]
    assert task.ticks == 5


def test_restore_drops_stopped_tasks_pending_ticks():
    sim = Simulator()
    task, hits = make_counter(sim)
    task.start()
    sim.run(until=1.0)
    task.stop()
    checkpoint = sim.snapshot_state()
    sim.restore_state(checkpoint)
    assert not task.armed
    sim.call_in(3.0, lambda: None)
    sim.run()
    assert hits == [1.0]


def test_restore_rejects_task_count_mismatch():
    sim = Simulator()
    checkpoint = sim.snapshot_state()
    sim.periodic(lambda: None, 1.0)
    with pytest.raises(RuntimeError):
        sim.restore_state(checkpoint)


def test_two_tasks_same_time_fire_in_registration_arm_order():
    sim = Simulator()
    order = []
    a = sim.periodic(lambda: order.append("a"), 1.0, name="a")
    b = sim.periodic(lambda: order.append("b"), 1.0, name="b")
    a.start()
    b.start()
    sim.run(until=2.0)
    assert order == ["a", "b", "a", "b"]
    assert sim.periodic_tasks == (a, b)


def test_tick_interleaves_deterministically_with_same_time_event():
    """A tick and an event at the same instant break the tie by sequence."""
    sim = Simulator()
    order = []
    task = sim.periodic(lambda: order.append("tick"), 1.0)
    task.start()                       # entry scheduled first
    sim.call_in(1.0, order.append, "event")
    sim.run()
    assert order == ["tick", "event"]


def test_peek_skips_stale_entries():
    sim = Simulator()
    task, _hits = make_counter(sim, period=1.0)
    task.start()
    task.stop()
    assert sim.peek() == float("inf")
    sim.call_in(4.0, lambda: None)
    assert sim.peek() == 4.0
