"""Tests for statistics and table rendering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import confidence_interval, format_series, format_table, percentile, summarize
from repro.metrics.stats import mean, stdev


def test_percentile_basic():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile(values, 50) == pytest.approx(50.5)


def test_percentile_interpolates():
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)


def test_percentile_single_value():
    assert percentile([7.0], 95) == 7.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_mean_and_stdev():
    assert mean([1, 2, 3]) == 2
    assert stdev([2, 2, 2]) == 0
    assert stdev([1]) == 0
    assert stdev([1, 3]) == pytest.approx(math.sqrt(2))


def test_confidence_interval_contains_mean():
    low, high = confidence_interval([1, 2, 3, 4, 5])
    assert low < 3 < high


def test_confidence_interval_single_value():
    assert confidence_interval([4.0]) == (4.0, 4.0)


def test_summarize_fields():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary["count"] == 4
    assert summary["mean"] == 2.5
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0


def test_summarize_empty_is_nan():
    summary = summarize([])
    assert summary["count"] == 0
    assert math.isnan(summary["mean"])


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60),
       st.integers(min_value=0, max_value=100))
def test_percentile_within_range(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_percentile_monotone_in_q(values):
    assert percentile(values, 25) <= percentile(values, 75)


def test_format_table_alignment():
    table = format_table(("name", "value"), [("a", 1), ("long-name", 22.5)],
                         title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # All rows same rendered width.
    assert len(set(len(line) for line in lines[2:])) <= 2


def test_format_table_float_rendering():
    table = format_table(("x",), [(0.000123,), (1234567.0,), (2.5,)])
    assert "0.000123" in table
    assert "1,234,567" in table
    assert "2.500" in table


def test_format_series():
    text = format_series("ttl sweep", [(1, 0.5), (10, 0.9)], x_label="ttl",
                         y_label="hit")
    assert "ttl sweep" in text and "ttl" in text and "hit" in text
