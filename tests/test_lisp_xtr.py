"""Integration tests: xTR forwarding over the topology with miss policies."""

from repro.lisp.control.base import MappingSystem
from repro.lisp.deploy import deploy_lisp
from repro.lisp.policies import CpDataPolicy, DropPolicy, QueuePolicy
from repro.net.addresses import IPv4Address
from repro.net.packet import udp_packet
from repro.net.topology import build_topology
from repro.sim import Simulator


class InstantMappingSystem(MappingSystem):
    """Resolves from the registry after a fixed delay (for testing)."""

    name = "instant"

    def __init__(self, sim, delay=0.02):
        super().__init__(sim)
        self.delay = delay

    def resolve(self, xtr, eid):
        def _resolve():
            yield self.sim.timeout(self.delay)
            started = self.sim.now
            mapping = self.registry.lookup(eid)
            self.stats.record_resolution(self.sim.now - started, ok=mapping is not None)
            return mapping

        return self.sim.process(_resolve())


def make_lisp_world(miss_policy_cls=DropPolicy, resolve_delay=0.02, seed=21,
                    num_sites=2, gleaning=True, **policy_kwargs):
    sim = Simulator(seed=seed)
    topology = build_topology(sim, num_sites=num_sites, num_providers=4)
    system = InstantMappingSystem(sim, delay=resolve_delay)
    policy = miss_policy_cls(sim, **policy_kwargs)
    xtrs = deploy_lisp(sim, topology, system, policy, gleaning=gleaning)
    return sim, topology, system, policy, xtrs


def deliveries(sim, node, port=7000):
    sink = []
    node.bind_udp(port, lambda packet, _node: sink.append((sim.now, packet)))
    return sink


def test_first_packet_dropped_on_miss_with_drop_policy():
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    sink = deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    assert sink == []
    assert policy.stats.dropped == 1


def test_subsequent_packet_encapsulated_after_resolution():
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.02)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    sink = deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.call_in(0.1, lambda: src.send(udp_packet(src.address, dst.address, 1, 7000)))
    sim.run()
    assert len(sink) == 1
    itr = xtrs[0][0]
    assert itr.map_cache.hits == 1
    assert itr.encapsulated == 1


def test_queue_policy_holds_then_flushes():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.05,
                                                          max_queue=8)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    sink = deliveries(sim, dst)
    for i in range(3):
        sim.call_in(0.001 * i, lambda: src.send(udp_packet(src.address, dst.address, 1, 7000)))
    sim.run()
    assert len(sink) == 3
    assert policy.stats.queued == 3
    assert policy.stats.flushed == 3
    assert sink[0][0] > 0.05  # held until resolution completed
    assert all(delay >= 0.04 for delay in policy.stats.queue_delays)


def test_queue_policy_overflow_drops():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.05,
                                                          max_queue=2)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    sink = deliveries(sim, dst)
    for _ in range(5):
        src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    assert len(sink) == 2
    assert policy.stats.queue_overflow == 3


def test_cp_data_policy_refused_by_default_system():
    sim, topology, system, policy, xtrs = make_lisp_world(CpDataPolicy)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    sink = deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    # Base mapping system refuses data carriage -> packet dropped.
    assert sink == []
    assert policy.stats.dropped == 1


def test_local_traffic_not_encapsulated():
    sim, topology, system, policy, xtrs = make_lisp_world()
    site = topology.sites[0]
    src, dst = site.hosts[0], site.hosts[1]
    sink = deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    assert len(sink) == 1
    assert xtrs[0][0].encapsulated == 0
    assert policy.stats.dropped == 0


def test_decap_and_forward_into_site():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.01)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    sink = deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    assert len(sink) == 1
    etr = next(x for x in xtrs[1] if x.decapsulated)
    assert etr.decapsulated == 1
    # The packet reached the destination EID unencapsulated (inner only).
    _when, packet = sink[0]
    assert packet.inner is None
    assert packet.ip.dst == dst.address


def test_gleaning_learns_reverse_mapping():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.01)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    etr = next(x for x in xtrs[1] if x.decapsulated)
    gleaned = etr.map_cache.peek(src.address)
    assert gleaned is not None
    itr_rloc = topology.sites[0].rloc_of(0)
    assert gleaned.rlocs[0].address == itr_rloc
    assert gleaned.eid_prefix.length == 32


def test_gleaned_mapping_enables_reverse_traffic_without_resolution():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.01)
    site_s, site_d = topology.sites
    src, dst = site_s.hosts[0], site_d.hosts[0]
    deliveries(sim, dst, port=7000)  # forward-path handler (side effect)
    reverse_sink = deliveries(sim, src, port=7001)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    resolutions_before = system.stats.resolutions
    dst.send(udp_packet(dst.address, src.address, 7000, 7001))
    sim.run()
    assert len(reverse_sink) == 1
    # Reverse direction answered from the gleaned entry: no new resolution.
    assert system.stats.resolutions == resolutions_before


def test_no_gleaning_mode():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.01,
                                                          gleaning=False)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    deliveries(sim, dst)
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    etr = next(x for x in xtrs[1] if x.decapsulated)
    assert etr.map_cache.peek(src.address) is None


def test_one_resolution_per_prefix():
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.05)
    src = topology.sites[0].hosts[0]
    dst_site = topology.sites[1]
    for i in range(2):
        src.send(udp_packet(src.address, dst_site.hosts[i].address, 1, 7000))
    sim.run()
    itr = xtrs[0][0]
    assert itr.resolutions_started == 1  # both EIDs share the /24


def test_cache_ttl_override_expires_entries():
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.01)
    itr = xtrs[0][0]
    itr.map_cache.ttl_override = 0.5
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    deliveries(sim, dst)  # delivery handler registers by side effect
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    sim.call_in(1.0, lambda: src.send(udp_packet(src.address, dst.address, 1, 7000)))
    sim.run()
    # Entry aged out: the second packet misses again and is dropped.
    assert policy.stats.dropped == 2
    assert itr.map_cache.expirations >= 1


def test_first_packet_flag_per_flow():
    sim, topology, system, policy, xtrs = make_lisp_world(QueuePolicy, resolve_delay=0.01)
    src = topology.sites[0].hosts[0]
    dst = topology.sites[1].hosts[0]
    deliveries(sim, dst)
    flags = []
    for xtr in xtrs[1]:
        xtr.decap_listeners.append(
            lambda _xtr, inner, outer, first: flags.append(first))
    src.send(udp_packet(src.address, dst.address, 1, 7000))
    sim.run()
    sim.call_in(0.1, lambda: src.send(udp_packet(src.address, dst.address, 1, 7000)))
    sim.run()
    assert flags == [True, False]


# --------------------------------------------------------------------- #
# Regression: in-flight resolution dedup keys on the covering site prefix
# (not a hardcoded /24 guess).
# --------------------------------------------------------------------- #

def _register(system, prefix, rloc="12.1.1.1"):
    from repro.lisp.mappings import MappingRecord, RlocEntry

    system.registry.register(MappingRecord(prefix, (RlocEntry(rloc),), ttl=60.0))


def test_resolution_dedup_coarse_site_prefix():
    """One site announcing a /16: EIDs in different /24s share one resolution."""
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.5)
    itr = xtrs[0][0]
    _register(system, "100.200.0.0/16")
    itr._maybe_resolve(IPv4Address("100.200.1.9"))
    itr._maybe_resolve(IPv4Address("100.200.2.9"))  # same /16, different /24
    assert itr.resolutions_started == 1


def test_resolution_dedup_finer_site_prefixes():
    """Two /26 sites inside one /24: each needs its own resolution."""
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.5)
    itr = xtrs[0][0]
    _register(system, "100.200.1.0/26", rloc="12.1.1.1")
    _register(system, "100.200.1.64/26", rloc="13.1.1.1")
    itr._maybe_resolve(IPv4Address("100.200.1.9"))    # first /26
    itr._maybe_resolve(IPv4Address("100.200.1.70"))   # second /26, same /24
    assert itr.resolutions_started == 2


def test_resolution_dedup_unregistered_eids_do_not_mask_each_other():
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.5)
    itr = xtrs[0][0]
    itr._maybe_resolve(IPv4Address("100.250.1.1"))
    itr._maybe_resolve(IPv4Address("100.250.1.2"))  # same /24, both unknown
    assert itr.resolutions_started == 2
    # But re-asking for the same unknown EID stays deduped.
    itr._maybe_resolve(IPv4Address("100.250.1.1"))
    assert itr.resolutions_started == 2


def test_resolution_dedup_clears_after_completion():
    sim, topology, system, policy, xtrs = make_lisp_world(DropPolicy, resolve_delay=0.01)
    itr = xtrs[0][0]
    _register(system, "100.200.0.0/16")
    itr._maybe_resolve(IPv4Address("100.200.1.9"))
    sim.run()
    assert itr.resolutions_started == 1
    assert itr._pending == {}
    assert itr.map_cache.peek("100.200.5.5") is not None  # /16 covers it
