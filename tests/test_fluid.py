"""The hybrid packet/fluid data plane.

Fluid flows advance as rate x interval byte chunks posted straight into
the link ledgers — no per-packet events — while mice, first packets and
control-plane traffic stay packet-level.  These tests pin the contract:
exact byte conservation, window-granular capacity sharing with packet
traffic, probe/re-probe path discovery, and agreement with the
packet-level sender within a stated tolerance.
"""

import pytest

from repro.experiments import (ScenarioConfig, WorkloadConfig, build_scenario,
                               run_workload)
from repro.experiments.workload import peak_concurrent_flows
from repro.experiments.worldbuild import build_world, restore_world
from repro.net.addresses import IPv4Prefix
from repro.net.fib import FibEntry
from repro.net.host import Host
from repro.net.link import LinkStats, connect
from repro.sim import Simulator
from repro.traffic.flows import (FlowIdAllocator, FlowRecord, UdpSink,
                                 send_flow)
from repro.traffic.popularity import FlowPlan, FlowShaper, FlowSizeSampler

WIRE = 1028  # 1000B payload + 28B IPv4+UDP headers


def linked_hosts(sim, delay=0.01):
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    iface_a = a.add_interface("eth0")
    iface_b = b.add_interface("eth0")
    connect(sim, iface_a, iface_b, delay=delay)
    a.fib.insert(FibEntry(IPv4Prefix("0.0.0.0/0"), iface_a))
    b.fib.insert(FibEntry(IPv4Prefix("0.0.0.0/0"), iface_b))
    return a, b


# --------------------------------------------------------------------- #
# Shaper: fluid classification and chunk sizing
# --------------------------------------------------------------------- #

def test_flow_shaper_fluid_plans_bulk_flows():
    sizes = FlowSizeSampler(dist="constant", mean=100)
    shaper = FlowShaper(sizes, payload_bytes=1000, pacing="fluid",
                        pace_rate_bps=2_000_000.0, fluid_threshold=10,
                        chunk_interval=0.25)
    plan = shaper.plan()
    assert plan.kind == "fluid"
    assert plan.packets == 100
    assert plan.chunk_interval == 0.25
    assert plan.overhead_bytes == 28
    # 0.25 s of 2 Mbit/s is 62500 bytes = ~60.8 wire packets.
    assert plan.chunk_packets == round(2_000_000.0 * 0.25 / (8 * WIRE))


def test_flow_shaper_fluid_small_flows_stay_packet_level():
    sizes = FlowSizeSampler(dist="constant", mean=4)
    shaper = FlowShaper(sizes, payload_bytes=1000, pacing="fluid",
                        fluid_threshold=10)
    plan = shaper.plan()
    assert plan.kind == "mouse"
    assert plan.chunk_packets == 0


def test_flow_shaper_fluid_validation():
    sizes = FlowSizeSampler(dist="constant", mean=5)
    with pytest.raises(ValueError):
        FlowShaper(sizes, payload_bytes=1000, chunk_interval=0.0)
    with pytest.raises(ValueError):
        FlowShaper(sizes, payload_bytes=1000, fluid_threshold=0)


# --------------------------------------------------------------------- #
# LinkStats.book_fluid: the window-granular transmitter model
# --------------------------------------------------------------------- #

def test_book_fluid_infinite_rate_grants_everything():
    stats = LinkStats()
    granted = stats.book_fluid(0.0, 0.5, 10_000, None)
    assert granted == 10_000
    assert stats.fluid_bytes == stats.tx_bytes == 10_000
    assert stats.busy_time == 0.0


def test_book_fluid_accrues_busy_time_like_serialisation():
    stats = LinkStats(window_width=1.0)
    granted = stats.book_fluid(0.0, 0.5, 50_000, 1_000_000.0)
    assert granted == 50_000
    # 50 kB at 1 Mbit/s is 0.4 s of transmitter time.
    assert stats.busy_time == pytest.approx(0.4)
    assert stats.fluid_bytes == 50_000


def test_book_fluid_clips_to_chunk_dwell_time():
    # The chunk overlaps the window for only 0.1 s: it cannot claim more
    # transmitter seconds than its own interval, even in an empty window.
    stats = LinkStats(window_width=1.0)
    granted = stats.book_fluid(0.0, 0.1, 50_000, 1_000_000.0)
    assert granted == 12_500  # 0.1 s at 1 Mbit/s


def test_book_fluid_saturated_window_grants_nothing():
    stats = LinkStats(window_width=1.0)
    stats.account_transmission(0.0, 1.0, 125_000)  # packets filled window 0
    granted = stats.book_fluid(0.2, 0.5, 10_000, 1_000_000.0)
    assert granted == 0


def test_book_fluid_shares_capacity_with_packets():
    stats = LinkStats(window_width=1.0)
    stats.account_transmission(0.0, 0.6, 75_000)  # packets took 0.6 s
    granted = stats.book_fluid(0.0, 1.0, 100_000, 1_000_000.0)
    # Only 0.4 s of transmitter time remains in window 0.
    assert granted == 50_000
    assert stats.busy_time == pytest.approx(0.4)
    assert stats.windows[0][0] == pytest.approx(1.0)  # window is now full


def test_book_fluid_spans_multiple_windows():
    stats = LinkStats(window_width=1.0)
    granted = stats.book_fluid(0.5, 2.0, 250_000, 1_000_000.0)
    assert granted == 250_000  # 2.0 s at 1 Mbit/s
    series = stats.utilization_series()
    assert [start for start, _busy, _vol in series] == [0.0, 1.0, 2.0]


# --------------------------------------------------------------------- #
# Link.post_fluid: synchronous ledger updates, conservation by design
# --------------------------------------------------------------------- #

def _rated_link(sim, rate_bps=1_000_000.0):
    a, b = linked_hosts(sim, delay=0.0)
    link = a.interfaces["eth0"].link
    link.rate_bps = rate_bps
    return a, b, link


def test_post_fluid_conserves_bytes_exactly():
    sim = Simulator()
    _a, _b, link = _rated_link(sim)
    delivered = link.post_fluid(200_000, 7, 1.0)  # window grants 125 kB
    stats = link.stats
    assert delivered == 125_000
    assert stats.bytes_offered == 200_000
    assert stats.bytes_delivered == 125_000
    assert stats.bytes_dropped == 75_000
    assert stats.bytes_in_flight == 0  # chunks are never in flight
    assert stats.conservation_violations(drained=True) == []
    account = stats.flows[7]
    assert account.offered == 200_000
    assert account.delivered + account.dropped == 200_000


def test_post_fluid_down_link_drops_everything():
    sim = Simulator()
    _a, _b, link = _rated_link(sim)
    link.up = False
    assert link.post_fluid(10_000, 7, 0.5) == 0
    assert link.stats.bytes_dropped == 10_000
    assert link.stats.drops == 0  # packet counter stays packet-only
    assert link.stats.conservation_violations(drained=True) == []


# --------------------------------------------------------------------- #
# The fluid sender: probe, chunks, re-probe, give-up
# --------------------------------------------------------------------- #

def _fluid_plan(packets=100, chunk_packets=60, interval=0.25):
    return FlowPlan(packets=packets, payload_bytes=1000, spacing=0.004,
                    kind="fluid", chunk_interval=interval,
                    chunk_packets=chunk_packets, overhead_bytes=28)


def test_fluid_sender_spends_budget_exactly():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.0)
    sink = UdpSink(sim, b, 9000)
    record = FlowRecord(flow_id=60, source=a.address)
    send_flow(sim, a, b.address, 9000, record, _fluid_plan())
    sim.run()
    assert record.flow_kind == "fluid"
    assert record.bytes_sent == record.bytes_budget == 100_000
    assert record.packets_sent == 1       # the probe
    assert record.chunks_sent == 2        # 60 + 39 packets' worth
    assert record.finished_at == pytest.approx(0.5)
    assert not record.failed
    # The sink saw the probe as a packet and the chunks as fluid bytes.
    assert sink.by_flow[60] == 1
    assert sink.fluid_by_flow[60] == 99 * WIRE
    link = a.interfaces["eth0"].link
    assert link.stats.conservation_violations(drained=True) == []


def test_fluid_sender_far_fewer_events_than_packet_sender():
    def events_for(plan):
        sim = Simulator()
        a, b = linked_hosts(sim, delay=0.0)
        UdpSink(sim, b, 9000)
        record = FlowRecord(flow_id=1, source=a.address)
        send_flow(sim, a, b.address, 9000, record, plan)
        sim.run()
        return sim.processed_events

    fluid = events_for(_fluid_plan(packets=200))
    packet = events_for(FlowPlan(packets=200, payload_bytes=1000,
                                 spacing=0.004, kind="elephant"))
    assert fluid * 10 < packet


def test_fluid_sender_gives_up_when_path_never_answers():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.0)
    UdpSink(sim, b, 9000)
    a.interfaces["eth0"].link.up = False
    record = FlowRecord(flow_id=61, source=a.address)
    send_flow(sim, a, b.address, 9000, record, _fluid_plan())
    sim.run()
    assert record.failed
    assert record.finished_at is not None
    assert record.packets_sent == 3  # 1 + FLUID_PROBE_RETRIES probes
    assert record.bytes_sent == 3000 < record.bytes_budget


def test_fluid_sender_reprobes_after_path_failure():
    sim = Simulator()
    a, b = linked_hosts(sim, delay=0.0)
    sink = UdpSink(sim, b, 9000)
    link = a.interfaces["eth0"].link
    record = FlowRecord(flow_id=62, source=a.address)
    send_flow(sim, a, b.address, 9000, record, _fluid_plan(packets=200))
    # Kill the link under the second chunk, repair it two probe intervals
    # later: the dead chunk (charged to the budget like any lost bytes)
    # triggers re-discovery and the flow still completes.
    sim.call_in(0.30, lambda: setattr(link, "up", False))
    sim.call_in(0.60, lambda: setattr(link, "up", True))
    sim.run()
    assert not record.failed
    assert record.bytes_sent == record.bytes_budget
    assert record.packets_sent >= 2  # initial probe + at least one re-probe
    assert link.stats.bytes_dropped > 0  # the chunk that died
    assert link.stats.conservation_violations(drained=True) == []
    assert sink.fluid_by_flow[62] > 0


# --------------------------------------------------------------------- #
# Fluid vs packet equivalence on a full scenario
# --------------------------------------------------------------------- #

#: Fluid chunks post the un-encapsulated wire size on every path link, so
#: LISP-encapsulated hops see slightly fewer bytes than packet mode; at
#: 1200 B payloads the tunnel header tax is ~2.3% (see docs/contracts.md).
EQUIV_TOLERANCE = 0.05


def _run_paced(pacing):
    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=77)
    scenario = build_scenario(config)
    workload = WorkloadConfig(num_flows=24, arrival_rate=12.0,
                              packets_per_flow=40, payload_bytes=1200,
                              size_dist="pareto", pacing=pacing,
                              pace_rate_bps=4_000_000.0,
                              elephant_threshold=20.0, fluid_threshold=20.0,
                              fluid_chunk_interval=0.25, grace_period=12.0)
    records = run_workload(scenario, workload)
    scenario.sim.run()
    return scenario, records


def test_fluid_matches_packet_sender_within_tolerance():
    shaped, shaped_records = _run_paced("shaped")
    fluid, fluid_records = _run_paced("fluid")
    # Same seed, same RNG discipline: the flows themselves are identical.
    assert [r.bytes_budget for r in shaped_records] \
        == [r.bytes_budget for r in fluid_records]
    assert {r.flow_kind for r in fluid_records} >= {"fluid"}
    assert all(not r.failed for r in fluid_records)
    assert all(r.bytes_sent == r.bytes_budget for r in fluid_records)

    # Per-link delivered bytes agree within the stated tolerance.
    shaped_total = sum(link.stats.bytes_delivered
                       for link in shaped.iter_links())
    fluid_total = sum(link.stats.bytes_delivered
                      for link in fluid.iter_links())
    assert fluid_total == pytest.approx(shaped_total, rel=EQUIV_TOLERANCE)

    # Per-flow delivered byte shares agree too (packets count wire bytes).
    def delivered_by_flow(scenario):
        wire = 1200 + 28
        totals = {}
        for sink in scenario.udp_sinks.values():
            for flow_id, count in sink.by_flow.items():
                totals[flow_id] = totals.get(flow_id, 0) + count * wire
            for flow_id, size in sink.fluid_by_flow.items():
                totals[flow_id] = totals.get(flow_id, 0) + size
        return totals

    shaped_flows = delivered_by_flow(shaped)
    fluid_flows = delivered_by_flow(fluid)
    assert set(shaped_flows) == set(fluid_flows)
    for flow_id, shaped_bytes in shaped_flows.items():
        assert fluid_flows[flow_id] == pytest.approx(
            shaped_bytes, rel=EQUIV_TOLERANCE)

    # And both worlds conserve bytes exactly.
    for scenario in (shaped, fluid):
        accounting = scenario.byte_accounting(drained=True)
        assert accounting["violations"] == []


def test_fluid_workload_counts_concurrency():
    _fluid, records = _run_paced("fluid")
    assert peak_concurrent_flows(records) >= 2
    assert all(r.finished_at is not None for r in records if not r.failed)


# --------------------------------------------------------------------- #
# FlowIdAllocator: per-world ids, stable across restore
# --------------------------------------------------------------------- #

def test_flow_id_allocator_is_sequential_and_checkpointable():
    ids = FlowIdAllocator()
    assert [ids.allocate() for _ in range(3)] == [1, 2, 3]
    state = ids.snapshot_state()
    assert ids.allocate() == 4
    ids.restore_state(state)
    assert ids.allocate() == 4


def test_flow_ids_identical_in_fresh_and_restored_worlds():
    """The satellite contract: ids are world state, not process state.

    A module-level counter would hand a restored world different ids than
    the fresh build got (the worker process has allocated in between);
    the per-world allocator makes the two runs label flows identically.
    """
    config = ScenarioConfig(control_plane="pce", num_sites=3, seed=5)
    workload = WorkloadConfig(num_flows=10, arrival_rate=10.0)
    scenario = build_world(config)
    first = [r.flow_id for r in run_workload(scenario, workload)]
    restore_world(scenario)
    second = [r.flow_id for r in run_workload(scenario, workload)]
    assert first == second == list(range(1, 11))
