"""Tests for the simulation engine: event ordering, clock, run/step semantics."""

import pytest

from repro.sim import Simulator
from repro.sim.errors import EmptySchedule, EventAlreadyTriggered


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    event = sim.timeout(5.0, value="hello")
    event.callbacks.append(lambda ev: fired.append((sim.now, ev.value)))
    sim.run()
    assert fired == [(5.0, "hello")]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.call_in(delay, order.append, delay)
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.call_in(1.0, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.call_in(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_processes_events_at_boundary():
    sim = Simulator()
    hits = []
    sim.call_in(4.0, hits.append, "at-4")
    sim.run(until=4.0)
    assert hits == ["at-4"]


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.call_in(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_step_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_call_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.call_in(2.0, lambda: sim.call_at(7.0, lambda: hits.append(sim.now)))
    sim.run()
    assert hits == [7.0]


def test_call_at_past_raises():
    sim = Simulator()
    sim.call_in(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_event_succeed_twice_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_fail_carries_exception():
    sim = Simulator()
    event = sim.event()
    boom = RuntimeError("boom")
    event.fail(boom)
    sim.run()
    assert event.processed
    assert not event.ok
    assert event.exception is boom


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_in(3.5, lambda: None)
    assert sim.peek() == 3.5


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.call_in(1.0, lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_any_of_fires_on_first():
    sim = Simulator()
    fast = sim.timeout(1.0, value="fast")
    slow = sim.timeout(5.0, value="slow")
    either = sim.any_of([fast, slow])
    results = []
    either.callbacks.append(lambda ev: results.append((sim.now, dict(ev.value))))
    sim.run()
    when, values = results[0]
    assert when == 1.0
    assert values == {fast: "fast"}


def test_all_of_waits_for_all():
    sim = Simulator()
    first = sim.timeout(1.0, value=1)
    second = sim.timeout(5.0, value=2)
    both = sim.all_of([first, second])
    results = []
    both.callbacks.append(lambda ev: results.append((sim.now, set(ev.value.values()))))
    sim.run()
    assert results == [(5.0, {1, 2})]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    both = sim.all_of([])
    sim.run()
    assert both.processed and both.ok


def test_deterministic_event_interleaving():
    def build_and_run():
        sim = Simulator(seed=7)
        order = []
        rng = sim.rng.stream("test")
        for tag in range(50):
            sim.call_in(rng.uniform(0, 10), order.append, tag)
        sim.run()
        return order

    assert build_and_run() == build_and_run()
