"""Tests for the multi-AS topology: addressing plan, reachability, LISP split."""

import pytest

from repro.net.addresses import IPv4Address
from repro.net.packet import udp_packet
from repro.net.topology import (
    build_fig1_topology,
    build_topology,
    eid_prefix_for,
    infra_prefix_for,
    provider_prefix_for,
    rloc_for,
)
from repro.sim import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=1)
    topology = build_topology(sim, num_sites=3, num_providers=4, providers_per_site=2)
    return sim, topology


def test_address_plan_is_disjoint():
    prefixes = [eid_prefix_for(0), infra_prefix_for(0), provider_prefix_for(0),
                eid_prefix_for(1), infra_prefix_for(1), provider_prefix_for(1)]
    for i, a in enumerate(prefixes):
        for b in prefixes[i + 1:]:
            assert not a.overlaps(b), f"{a} overlaps {b}"


def test_rlocs_unique_across_sites_and_xtrs():
    rlocs = {rloc_for(p, s, b) for p in range(4) for s in range(300) for b in range(2)}
    assert len(rlocs) == 4 * 300 * 2


def test_site_structure(world):
    _sim, topology = world
    assert len(topology.sites) == 3
    for site in topology.sites:
        assert len(site.xtrs) == 2
        assert len(site.hosts) == 2
        assert len(set(site.provider_ids)) == 2
        for host in site.hosts:
            assert site.eid_prefix.contains(host.address)
        for b, xtr in enumerate(site.xtrs):
            rloc = site.rloc_of(b)
            assert provider_prefix_for(site.provider_ids[b]).contains(rloc)
            assert xtr.is_local(rloc)
            assert xtr.is_local(site.xtr_control_address(b))


def test_eid_prefixes_not_in_provider_fibs(world):
    _sim, topology = world
    for provider in topology.providers:
        for site in topology.sites:
            for entry in provider.fib.entries():
                assert not site.eid_prefix.contains(entry.prefix), (
                    f"EID prefix {site.eid_prefix} leaked into {provider.name}"
                )


def test_eids_globally_routable_flag():
    sim = Simulator(seed=1)
    topology = build_topology(sim, num_sites=2, num_providers=3,
                              eids_globally_routable=True)
    provider = topology.providers[0]
    covered = any(entry.prefix == topology.sites[1].eid_prefix
                  for entry in provider.fib.entries())
    assert covered


def send_and_await(sim, src_node, src_addr, dst_node, dst_addr, port=7777):
    arrivals = []
    dst_node.bind_udp(port, lambda packet, node: arrivals.append(sim.now))
    src_node.send(udp_packet(src_addr, dst_addr, 1234, port))
    sim.run()
    dst_node.unbind_udp(port)
    return arrivals


def test_dns_to_dns_reachability_across_sites(world):
    sim, topology = world
    site_a, site_b = topology.sites[0], topology.sites[1]
    arrivals = send_and_await(sim, site_a.dns_node, site_a.dns_address,
                              site_b.dns_node, site_b.dns_address)
    assert len(arrivals) == 1
    assert arrivals[0] > 0.01  # crossed the WAN


def test_dns_traffic_transits_local_pce(world):
    sim, topology = world
    site_a, site_b = topology.sites[0], topology.sites[1]
    seen_at_pce = []
    site_a.pce_node.add_forward_tap(
        lambda packet, node: (seen_at_pce.append(packet.uid), False)[1])
    arrivals = send_and_await(sim, site_a.dns_node, site_a.dns_address,
                              site_b.dns_node, site_b.dns_address)
    assert len(arrivals) == 1
    assert len(seen_at_pce) == 1  # the outgoing query passed through PCE_S


def test_inbound_to_rloc_reaches_correct_xtr(world):
    sim, topology = world
    site_a, site_b = topology.sites[0], topology.sites[1]
    for b in range(2):
        rloc = site_b.rloc_of(b)
        arrivals = send_and_await(sim, site_a.dns_node, site_a.dns_address,
                                  site_b.xtrs[b], rloc, port=4341 + b)
        assert len(arrivals) == 1, f"RLOC {rloc} unreachable"


def test_host_cannot_reach_remote_eid_without_lisp(world):
    """EIDs are not globally routable: raw packets die at the provider."""
    sim, topology = world
    site_a, site_b = topology.sites[0], topology.sites[1]
    host = site_a.hosts[0]
    target = site_b.hosts[0]
    arrivals = send_and_await(sim, host, host.address, target, target.address)
    assert arrivals == []


def test_host_reaches_local_dns(world):
    sim, topology = world
    site = topology.sites[0]
    host = site.hosts[0]
    arrivals = send_and_await(sim, host, host.address, site.dns_node, site.dns_address)
    assert len(arrivals) == 1


def test_infra_host_attachment_reachable():
    sim = Simulator(seed=2)
    topology = build_topology(sim, num_sites=2, num_providers=3)
    root = topology.attach_infra_host(0, "root-dns", "198.41.0.4")
    topology.install_global_routes()
    site = topology.sites[1]
    arrivals = send_and_await(sim, site.dns_node, site.dns_address,
                              root, IPv4Address("198.41.0.4"))
    assert len(arrivals) == 1


def test_fig1_topology_layout():
    sim = Simulator(seed=3)
    topology = build_fig1_topology(sim)
    assert topology.site_s.provider_ids == [0, 1]
    assert topology.site_d.provider_ids == [2, 3]
    assert topology.site_of_eid(topology.site_s.hosts[0].address) is topology.site_s
    assert topology.site_of_rloc(topology.site_d.rloc_of(1)) is topology.site_d


def test_provider_mesh_delay_positive(world):
    _sim, topology = world
    delay = topology.provider_mesh_delay(topology.providers[0], topology.providers[1])
    assert 0.005 < delay < 0.1


@pytest.mark.parametrize("num_providers,per_site", [(6, 3), (6, 4), (4, 4), (8, 3)])
def test_provider_rotation_terminates_for_non_coprime_strides(num_providers, per_site):
    """Regression: stride sharing a factor with the provider count used to
    cycle over a subgroup and never finish collecting providers."""
    sim = Simulator(seed=4)
    topology = build_topology(sim, num_sites=2 * num_providers + 4,
                              num_providers=num_providers,
                              providers_per_site=per_site, hosts_per_site=1)
    for site in topology.sites:
        assert len(set(site.provider_ids)) == per_site


def test_deterministic_topology_for_seed():
    def build():
        sim = Simulator(seed=77)
        topology = build_topology(sim, num_sites=4, num_providers=5)
        return [site.access_delays for site in topology.sites]

    assert build() == build()
