"""Tests for CNAME records: zone chasing and resolver chain-following."""

import pytest

from repro.dns.hierarchy import install_dns
from repro.dns.records import RCODE_NOERROR, TYPE_A, TYPE_CNAME
from repro.dns.resolver import StubResolver
from repro.dns.zone import Zone
from repro.net.addresses import IPv4Address
from repro.net.topology import build_topology
from repro.sim import Simulator


def test_zone_cname_with_in_zone_target():
    zone = Zone("site1.example.")
    zone.add_a("host0.site1.example.", "100.0.1.10")
    zone.add_cname("www.site1.example.", "host0.site1.example.")
    result = zone.lookup("www.site1.example.", TYPE_A)
    assert result.rcode == RCODE_NOERROR
    types = [record.rtype for record in result.answers]
    assert types == [TYPE_CNAME, TYPE_A]
    assert result.answers[-1].data == IPv4Address("100.0.1.10")


def test_zone_cname_chain():
    zone = Zone("site1.example.")
    zone.add_a("host0.site1.example.", "100.0.1.10")
    zone.add_cname("a.site1.example.", "b.site1.example.")
    zone.add_cname("b.site1.example.", "host0.site1.example.")
    result = zone.lookup("a.site1.example.", TYPE_A)
    assert [record.rtype for record in result.answers] == [TYPE_CNAME, TYPE_CNAME, TYPE_A]


def test_zone_cname_dangling_target_returns_chain_only():
    zone = Zone("site1.example.")
    zone.add_cname("www.site1.example.", "elsewhere.other.")
    result = zone.lookup("www.site1.example.", TYPE_A)
    assert len(result.answers) == 1
    assert result.answers[0].rtype == TYPE_CNAME


def test_zone_cname_loop_terminates():
    zone = Zone("site1.example.")
    zone.add_cname("a.site1.example.", "b.site1.example.")
    zone.add_cname("b.site1.example.", "a.site1.example.")
    result = zone.lookup("a.site1.example.", TYPE_A)
    assert result.rcode == RCODE_NOERROR  # chain returned, no A record
    assert all(record.rtype == TYPE_CNAME for record in result.answers)


@pytest.fixture
def dns_world():
    sim = Simulator(seed=47)
    topology = build_topology(sim, num_sites=3, num_providers=4)
    dns = install_dns(topology)
    return sim, topology, dns


def lookup(sim, topology, dns, qname, src_site=0):
    site = topology.sites[src_site]
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    proc = stub.lookup(qname)
    sim.run()
    return proc.value


def test_alias_resolves_within_site_zone(dns_world):
    sim, topology, dns = dns_world
    alias = dns.add_alias(topology.sites[1], "www", 0)
    address, _elapsed = lookup(sim, topology, dns, alias)
    assert address == topology.sites[1].hosts[0].address


def test_cross_zone_alias_followed_by_resolver(dns_world):
    sim, topology, dns = dns_world
    # site1's zone aliases to a host in site2's zone: the resolver must
    # restart the iterative walk at the canonical name.
    zone1 = dns.resolvers[1].zone
    zone1.add_cname(f"mirror.{dns.site_domain(topology.sites[1])}",
                    dns.host_name(topology.sites[2], 0))
    address, _ = lookup(sim, topology, dns,
                        f"mirror.{dns.site_domain(topology.sites[1])}")
    assert address == topology.sites[2].hosts[0].address


def test_cross_zone_alias_loop_gives_no_address(dns_world):
    sim, topology, dns = dns_world
    zone1 = dns.resolvers[1].zone
    zone2 = dns.resolvers[2].zone
    name1 = f"loop.{dns.site_domain(topology.sites[1])}"
    name2 = f"loop.{dns.site_domain(topology.sites[2])}"
    zone1.add_cname(name1, name2)
    zone2.add_cname(name2, name1)
    address, _ = lookup(sim, topology, dns, name1)
    assert address is None


def test_alias_answer_cached(dns_world):
    sim, topology, dns = dns_world
    alias = dns.add_alias(topology.sites[1], "www", 1)
    lookup(sim, topology, dns, alias)
    resolver = dns.resolvers[0]
    upstream = resolver.upstream_queries
    address, elapsed = lookup(sim, topology, dns, alias)
    assert address == topology.sites[1].hosts[1].address
    assert resolver.upstream_queries == upstream  # served from cache
    assert elapsed < 0.005
