"""Tests for the radix-trie FIB: LPM correctness, updates, properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.errors import NoRouteError
from repro.net.fib import Fib, FibEntry


def make_fib(*routes):
    fib = Fib()
    for prefix, tag in routes:
        fib.add(prefix, tag)
    return fib


def test_longest_prefix_wins():
    fib = make_fib(("10.0.0.0/8", "coarse"), ("10.1.0.0/16", "mid"), ("10.1.2.0/24", "fine"))
    assert fib.lookup("10.1.2.3").interface == "fine"
    assert fib.lookup("10.1.9.9").interface == "mid"
    assert fib.lookup("10.9.9.9").interface == "coarse"


def test_default_route_matches_all():
    fib = make_fib(("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten"))
    assert fib.lookup("11.0.0.1").interface == "default"
    assert fib.lookup("10.0.0.1").interface == "ten"


def test_no_route_raises():
    fib = make_fib(("10.0.0.0/8", "ten"))
    with pytest.raises(NoRouteError):
        fib.lookup("11.0.0.1")


def test_lookup_default_argument():
    fib = Fib()
    sentinel = FibEntry(IPv4Prefix("0.0.0.0/0"), "fallback")
    assert fib.lookup("1.2.3.4", default=sentinel) is sentinel


def test_host_route():
    fib = make_fib(("10.0.0.0/8", "net"), ("10.0.0.5/32", "host"))
    assert fib.lookup("10.0.0.5").interface == "host"
    assert fib.lookup("10.0.0.6").interface == "net"


def test_insert_replaces_same_prefix():
    fib = make_fib(("10.0.0.0/8", "old"))
    fib.add("10.0.0.0/8", "new")
    assert fib.lookup("10.1.1.1").interface == "new"
    assert len(fib) == 1


def test_remove():
    fib = make_fib(("10.0.0.0/8", "coarse"), ("10.1.0.0/16", "fine"))
    removed = fib.remove("10.1.0.0/16")
    assert removed.interface == "fine"
    assert fib.lookup("10.1.2.3").interface == "coarse"
    assert fib.remove("10.1.0.0/16") is None
    assert len(fib) == 1


def test_lookup_exact():
    fib = make_fib(("10.0.0.0/8", "a"), ("10.1.0.0/16", "b"))
    assert fib.lookup_exact("10.1.0.0/16").interface == "b"
    assert fib.lookup_exact("10.2.0.0/16") is None


def test_entries_sorted():
    fib = make_fib(("11.0.0.0/8", "b"), ("10.0.0.0/8", "a"), ("10.1.0.0/16", "a16"))
    prefixes = [str(entry.prefix) for entry in fib.entries()]
    assert prefixes == ["10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"]


def test_clear():
    fib = make_fib(("10.0.0.0/8", "a"))
    fib.clear()
    assert len(fib) == 0
    with pytest.raises(NoRouteError):
        fib.lookup("10.0.0.1")


def test_zero_length_prefix_only():
    fib = make_fib(("0.0.0.0/0", "any"))
    assert fib.lookup("0.0.0.0").interface == "any"
    assert fib.lookup("255.255.255.255").interface == "any"


addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


@given(st.lists(st.tuples(addresses, st.integers(min_value=0, max_value=32)),
                min_size=1, max_size=30), addresses)
def test_lpm_matches_linear_scan(route_specs, probe):
    """The trie must agree with a brute-force longest-match scan."""
    fib = Fib()
    table = {}
    for value, length in route_specs:
        prefix = IPv4Prefix.containing(value, length)
        table[prefix] = str(prefix)
        fib.add(prefix, str(prefix))

    expected = None
    for prefix in table:
        if prefix.contains(IPv4Address(probe)):
            if expected is None or prefix.length > expected.length:
                expected = prefix
    if expected is None:
        with pytest.raises(NoRouteError):
            fib.lookup(probe)
    else:
        assert fib.lookup(probe).interface == str(expected)


@given(st.lists(st.tuples(addresses, st.integers(min_value=0, max_value=32)),
                min_size=1, max_size=20))
def test_inserted_prefixes_are_found_exactly(route_specs):
    fib = Fib()
    expected = set()
    for value, length in route_specs:
        prefix = IPv4Prefix.containing(value, length)
        expected.add(prefix)
        fib.add(prefix, "tag")
    assert {entry.prefix for entry in fib.entries()} == expected
    assert len(fib) == len(expected)


# --------------------------------------------------------------------- #
# Regressions: lookup's explicit default, removal pruning, memory growth
# --------------------------------------------------------------------- #

def test_lookup_explicit_none_default_returns_none():
    """default=None must mean "return None", not "raise" (sentinel fix)."""
    fib = make_fib(("10.0.0.0/8", "ten"))
    assert fib.lookup("11.0.0.1", default=None) is None
    assert fib.lookup("10.0.0.1", default=None).interface == "ten"


def test_remove_prunes_empty_branches():
    fib = Fib()
    assert fib.node_count() == 1  # the root
    fib.add("10.1.2.0/24", "a")
    grown = fib.node_count()
    assert grown == 25  # root + one node per prefix bit
    fib.remove("10.1.2.0/24")
    assert fib.node_count() == 1


def test_remove_keeps_shared_branch_alive():
    fib = make_fib(("10.0.0.0/8", "coarse"), ("10.1.0.0/16", "fine"))
    fib.remove("10.1.0.0/16")
    # The /8's chain survives; only the /16's private tail is pruned.
    assert fib.node_count() == 9
    assert fib.lookup("10.1.2.3").interface == "coarse"
    fib.add("10.1.0.0/16", "again")
    assert fib.lookup("10.1.2.3").interface == "again"


def test_remove_prunes_only_up_to_branching_point():
    fib = make_fib(("10.1.0.0/16", "left"), ("10.1.128.0/17", "deep"))
    fib.remove("10.1.128.0/17")
    assert fib.lookup("10.1.128.1").interface == "left"
    assert fib.node_count() == 17  # root + the /16 chain only


def test_install_expire_churn_is_constant_memory():
    """N install->remove cycles of disjoint prefixes: O(live), not O(N)."""
    fib = Fib()
    for i in range(1024):
        prefix = IPv4Prefix.containing((i << 8) + (100 << 24), 24)
        fib.add(prefix, "tag")
        assert fib.remove(prefix) is not None
    assert len(fib) == 0
    assert fib.node_count() == 1


@given(st.lists(st.tuples(addresses, st.integers(min_value=0, max_value=32)),
                min_size=1, max_size=20))
def test_remove_all_returns_to_root_only(route_specs):
    fib = Fib()
    prefixes = set()
    for value, length in route_specs:
        prefix = IPv4Prefix.containing(value, length)
        prefixes.add(prefix)
        fib.add(prefix, "tag")
    for prefix in prefixes:
        assert fib.remove(prefix) is not None
    assert len(fib) == 0
    assert fib.node_count() == 1
