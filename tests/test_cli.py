"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "fig1" in capsys.readouterr().out


def test_run_fig1(capsys):
    assert main(["run", "fig1", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "step" in out
    assert "[ok]" in out
    assert "FAILED" not in out


def test_run_e6_small(capsys):
    assert main(["run", "e6", "--flows", "10"]) == 0
    out = capsys.readouterr().out
    assert "pce-precomputed" in out
    assert "shape check: ok" in out


def test_run_e8(capsys):
    assert main(["run", "e8"]) == 0
    out = capsys.readouterr().out
    assert "pce-reverse-multicast" in out


def test_report_writes_file(tmp_path):
    out = tmp_path / "report.md"
    assert main(["report", "-o", str(out)]) == 0
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "## F1" in text and "## E9" in text
    assert "FAILURES" not in text


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonsense"])


def test_parser_defaults():
    args = build_parser().parse_args(["run", "e1"])
    assert args.seed == 11
    assert args.num_sites == 8
    assert args.flows == 30
