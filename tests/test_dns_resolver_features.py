"""Tests for resolver query coalescing and negative caching."""

from repro.dns.hierarchy import install_dns
from repro.dns.resolver import StubResolver
from repro.net.topology import build_topology
from repro.sim import Simulator


def make_world(seed=91, use_cache=True, **dns_kwargs):
    sim = Simulator(seed=seed)
    topology = build_topology(sim, num_sites=3, num_providers=4)
    dns = install_dns(topology, use_cache=use_cache, **dns_kwargs)
    return sim, topology, dns


def test_concurrent_identical_queries_coalesce():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    qname = dns.host_name(topology.sites[1], 0)
    stubs = [StubResolver(sim, host, site.dns_address) for host in site.hosts]
    procs = [stub.lookup(qname) for stub in stubs]
    sim.run()
    resolver = dns.resolvers[site.index]
    # Both clients got the answer...
    for proc in procs:
        address, _elapsed = proc.value
        assert address == topology.sites[1].hosts[0].address
    # ...from a single iterative walk.
    assert resolver.coalesced_queries == 1
    assert resolver.upstream_queries == 3  # root, TLD, authoritative — once


def test_different_names_not_coalesced():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    procs = [stub.lookup(dns.host_name(topology.sites[1], 0)),
             stub.lookup(dns.host_name(topology.sites[2], 0))]
    sim.run()
    resolver = dns.resolvers[site.index]
    assert resolver.coalesced_queries == 0
    for proc in procs:
        assert proc.value[0] is not None


def test_coalescing_disabled():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    resolver = dns.resolvers[site.index]
    resolver.coalesce = False
    qname = dns.host_name(topology.sites[1], 0)
    stubs = [StubResolver(sim, host, site.dns_address) for host in site.hosts]
    for stub in stubs:
        stub.lookup(qname)
    sim.run()
    assert resolver.coalesced_queries == 0
    assert resolver.upstream_queries == 6  # two full walks


def test_nxdomain_negatively_cached():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    missing = f"nosuch.{dns.site_domain(topology.sites[1])}"
    first = stub.lookup(missing)
    sim.run()
    assert first.value[0] is None
    resolver = dns.resolvers[site.index]
    upstream = resolver.upstream_queries
    second = stub.lookup(missing)
    sim.run()
    assert second.value[0] is None
    assert resolver.upstream_queries == upstream  # served from negative cache


def test_negative_cache_expires():
    sim, topology, dns = make_world()
    site = topology.sites[0]
    resolver = dns.resolvers[site.index]
    resolver.negative_ttl = 1.0
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    missing = f"nosuch.{dns.site_domain(topology.sites[1])}"
    stub.lookup(missing)
    sim.run()
    upstream = resolver.upstream_queries
    sim.run(until=sim.now + 5.0)
    stub.lookup(missing)
    sim.run()
    assert resolver.upstream_queries > upstream  # re-walked after expiry


def test_negative_caching_requires_cache_enabled():
    sim, topology, dns = make_world(use_cache=False)
    site = topology.sites[0]
    stub = StubResolver(sim, site.hosts[0], site.dns_address)
    missing = f"nosuch.{dns.site_domain(topology.sites[1])}"
    stub.lookup(missing)
    sim.run()
    resolver = dns.resolvers[site.index]
    upstream = resolver.upstream_queries
    stub.lookup(missing)
    sim.run()
    assert resolver.upstream_queries == 2 * upstream
