"""Tests for DNS records, wire format, and zones."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.message import (
    FLAG_AA,
    FLAG_RD,
    DnsMessage,
    DnsWireError,
    decode_name,
    encode_name,
    make_query,
    make_reply,
)
from repro.dns.records import (
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    TYPE_A,
    TYPE_NS,
    ResourceRecord,
    is_subdomain,
    normalise_name,
)
from repro.dns.zone import Zone
from repro.net.addresses import IPv4Address


def test_normalise_name():
    assert normalise_name("Host0.Example") == "host0.example."
    assert normalise_name("a.b.c.") == "a.b.c."


def test_is_subdomain():
    assert is_subdomain("host0.site1.example.", "site1.example.")
    assert is_subdomain("site1.example.", "site1.example.")
    assert not is_subdomain("site2.example.", "site1.example.")
    assert not is_subdomain("evilsite1.example.", "site1.example.")
    assert is_subdomain("anything.at.all.", ".")


def test_a_record_coerces_address():
    record = ResourceRecord("h.example.", TYPE_A, 60, "10.0.0.1")
    assert record.data == IPv4Address("10.0.0.1")


def test_name_encoding_roundtrip():
    for name in (".", "example.", "host0.site3.example.", "a.b.c.d.e.f."):
        encoded = encode_name(name)
        decoded, offset = decode_name(encoded, 0)
        assert decoded == name
        assert offset == len(encoded)


def test_label_too_long_rejected():
    with pytest.raises(DnsWireError):
        encode_name("x" * 64 + ".example.")


def test_query_roundtrip():
    query = make_query(1234, "host0.site1.example.", recursion_desired=True)
    decoded = DnsMessage.decode(query.encode())
    assert decoded.ident == 1234
    assert decoded.is_query
    assert decoded.flags & FLAG_RD
    assert decoded.qname == "host0.site1.example."


def test_reply_roundtrip_with_all_sections():
    query = make_query(7, "host0.site1.example.")
    reply = make_reply(
        query,
        answers=[ResourceRecord("host0.site1.example.", TYPE_A, 60, "100.0.1.10")],
        authorities=[ResourceRecord("site1.example.", TYPE_NS, 3600, "ns.site1.example.")],
        additionals=[ResourceRecord("ns.site1.example.", TYPE_A, 3600, "198.18.1.10")],
        authoritative=True,
    )
    decoded = DnsMessage.decode(reply.encode())
    assert decoded.is_reply
    assert decoded.flags & FLAG_AA
    assert decoded.ident == 7
    assert decoded.answer_addresses() == [IPv4Address("100.0.1.10")]
    assert decoded.referral_servers() == [("ns.site1.example.", IPv4Address("198.18.1.10"))]


def test_rcode_roundtrip():
    query = make_query(9, "nope.example.")
    reply = make_reply(query, rcode=RCODE_NXDOMAIN)
    assert DnsMessage.decode(reply.encode()).rcode == RCODE_NXDOMAIN


def test_truncated_data_raises():
    query = make_query(5, "x.example.")
    data = query.encode()
    with pytest.raises(DnsWireError):
        DnsMessage.decode(data[:8])
    with pytest.raises(DnsWireError):
        DnsMessage.decode(data[:-3])


def test_size_bytes_matches_encoding():
    query = make_query(1, "host.example.")
    assert query.size_bytes == len(query.encode())


names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=10),
    min_size=1, max_size=5,
).map(lambda labels: ".".join(labels) + ".")


@given(st.integers(min_value=0, max_value=65535), names,
       st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=86400))
def test_message_roundtrip_property(ident, name, address, ttl):
    query = make_query(ident, name)
    reply = make_reply(query, answers=[ResourceRecord(name, TYPE_A, ttl, address)],
                       authoritative=True)
    decoded = DnsMessage.decode(reply.encode())
    assert decoded.ident == ident
    assert decoded.qname == name
    assert decoded.answers[0].data == IPv4Address(address)
    assert int(decoded.answers[0].ttl) == ttl


def test_zone_answers_own_records():
    zone = Zone("site1.example.")
    zone.add_a("host0.site1.example.", "100.0.1.10")
    result = zone.lookup("host0.site1.example.")
    assert result.rcode == RCODE_NOERROR
    assert result.answers[0].data == IPv4Address("100.0.1.10")
    assert not result.is_referral


def test_zone_referral():
    zone = Zone("example.")
    zone.delegate("site1.example.", "ns.site1.example.", "198.18.1.10")
    result = zone.lookup("host0.site1.example.")
    assert result.is_referral
    assert result.authorities[0].rtype == TYPE_NS
    assert result.additionals[0].data == IPv4Address("198.18.1.10")


def test_zone_most_specific_delegation():
    zone = Zone("example.")
    zone.delegate("corp.example.", "ns.corp.example.", "192.0.2.1")
    zone.delegate("deep.corp.example.", "ns.deep.corp.example.", "192.0.2.2")
    result = zone.lookup("www.deep.corp.example.")
    assert result.additionals[0].data == IPv4Address("192.0.2.2")


def test_zone_nxdomain():
    zone = Zone("site1.example.")
    zone.add_a("host0.site1.example.", "100.0.1.10")
    assert zone.lookup("missing.site1.example.").rcode == RCODE_NXDOMAIN
    assert zone.lookup("other.domain.").rcode == RCODE_NXDOMAIN


def test_root_zone_covers_everything():
    zone = Zone(".")
    zone.delegate("example.", "a.gtld.", "192.5.6.30")
    result = zone.lookup("host.site.example.")
    assert result.is_referral
