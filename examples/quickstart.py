#!/usr/bin/env python
"""Quickstart: the paper's Fig. 1, step by step.

Builds the exact two-site/four-provider world of the paper's Figure 1,
starts one flow (DNS lookup, then a data packet), and prints the timeline
of the eight control-plane steps as they emerge from the simulation —
along with the claims the architecture makes about them.

Run:  python examples/quickstart.py
"""

from repro.experiments.fig1 import run_fig1_walkthrough
from repro.metrics import format_table


def main():
    outcome = run_fig1_walkthrough(seed=7)

    rows = [(label, "-" if when is None else f"{when * 1000:8.3f} ms", description)
            for label, when, description in outcome["steps"]]
    print(format_table(("step", "time", "what happens"), rows,
                       title="Fig. 1 walkthrough: one flow from AS_S to AS_D"))
    print()

    records = outcome["records"]
    print(f"DNS resolution finished      : {records['dns_done'] * 1000:8.3f} ms")
    installs = records["itr_installs"]
    print(f"mapping installed at ITRs    : {max(installs) * 1000:8.3f} ms "
          f"({len(installs)} ITRs)")
    print(f"first data packet encap      : {records['first_encap'] * 1000:8.3f} ms")
    print(f"first data packet decap      : {records['first_decap'] * 1000:8.3f} ms")
    print(f"reverse-mapping multicast    : {records['reverse_multicast'] * 1000:8.3f} ms")
    print(f"delivery at destination host : {records['delivery'] * 1000:8.3f} ms")
    print()

    print("architecture claims:")
    for name, ok in outcome["checks"].items():
        print(f"  [{'ok' if ok else 'FAILED'}] {name}")
    if not all(outcome["checks"].values()):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
