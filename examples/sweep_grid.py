#!/usr/bin/env python
"""Parameter sweeps: fan a declarative scenario grid out over processes.

Declares a small grid — two control planes x two site counts x two seeds,
Zipf-skewed destinations — runs every cell and prints the seed-averaged
aggregates.  Each distinct world is pre-built exactly once into a shared
snapshot store; workers restore from it instead of building their own
copies.  The same machinery scales to the built-in "scale" preset: 24
cells, four control planes, up to 120 sites.

The second half demos a persistent store: pointed at a ``snapshot_dir``
(CLI: ``python -m repro sweep --snapshot-dir ~/.cache/repro-worlds``),
built worlds are serialized into content-addressed blob files, and a
repeated run of the same grid performs **zero** world builds while
producing a byte-identical aggregate digest.

Run:  python examples/sweep_grid.py
"""

import tempfile

from repro.experiments.sweep import SweepGrid, payload_digest, run_sweep
from repro.metrics import format_table


def main():
    grid = SweepGrid(
        name="example",
        control_planes=("pce", "alt"),
        site_counts=(4, 12),
        seeds=(1, 2),
        zipf_values=(1.2,),
        num_flows=20,
        arrival_rate=20.0,
    )

    payload = run_sweep(grid, workers=2)
    rows = [(a["control_plane"], a["num_sites"], a["cells"], a["flows"],
             a["first_packet_drops"], a["packets_lost"],
             "-" if a["cache_hit_ratio_mean"] is None
             else f"{a['cache_hit_ratio_mean']:.3f}")
            for a in payload["aggregates"]]
    print(format_table(("system", "sites", "cells", "flows", "drops",
                        "pkts_lost", "hit_ratio"), rows,
                       title=f"sweep '{grid.name}': {payload['num_cells']} cells"))

    # Determinism is the whole point: re-running the same grid single-process
    # reproduces the multi-process aggregate byte for byte.
    replay = run_sweep(grid, workers=1)
    same = payload_digest(replay) == payload_digest(payload)
    print()
    print(f"  [{'ok' if same else 'MISMATCH'}] workers=2 and workers=1 "
          "produce identical aggregates")

    # Persistent snapshot store (the CLI's --snapshot-dir): the first run
    # serializes every distinct world, the rerun restores all of them —
    # zero builds — and the digest doesn't move a byte.
    with tempfile.TemporaryDirectory() as snapshot_dir:
        cold = run_sweep(grid, workers=2, snapshot_dir=snapshot_dir)
        warm = run_sweep(grid, workers=2, snapshot_dir=snapshot_dir)
    zero_builds = warm["world_cache"]["builds"] == 0
    stable = payload_digest(warm) == payload_digest(payload)
    print(f"  [{'ok' if zero_builds else 'MISMATCH'}] snapshot-dir rerun "
          f"built {warm['world_cache']['builds']} worlds "
          f"(first run built {cold['world_cache']['builds']})")
    print(f"  [{'ok' if stable else 'MISMATCH'}] snapshot-restored worlds "
          "reproduce the aggregates byte for byte")
    return 0 if same and zero_builds and stable else 1


if __name__ == "__main__":
    raise SystemExit(main())
