#!/usr/bin/env python
"""Size-aware traffic shaping: byte accounting and pacing as sweep axes.

Runs a shrunk version of the built-in ``shaped`` preset (CLI:
``python -m repro sweep --preset shaped``): heavy-tailed (bounded Pareto)
flow sizes on 10 Mbit/s access links, with the pacing axis comparing the
historical constant-spacing sender against shaped traffic — mice burst
back-to-back, elephants pace their packets at 2 Mbit/s.

Every link meters bytes per flow (offered / delivered / dropped), so the
aggregates carry a byte-conservation verdict and real link utilization;
the determinism contract — ``--workers 1`` vs ``N`` digests byte-identical
— extends to the shaped cells unchanged.

Run:  python examples/shaped_sweep.py
"""

from dataclasses import replace

from repro.experiments.sweep import PRESETS, payload_digest, run_sweep
from repro.metrics import format_table


def main():
    grid = replace(PRESETS["shaped"], name="shaped-demo", site_counts=(4,),
                   seeds=(31,), num_flows=24)

    payload = run_sweep(grid, workers=2)
    rows = [(a["control_plane"], a["pacing"], a["cells"], a["flows"],
             a["packets_lost"], a["bytes_offered"], a["bytes_dropped"],
             "ok" if a["bytes_conserved"] else "VIOLATED",
             f"{a['access_util_peak']:.2f}")
            for a in payload["aggregates"]]
    print(format_table(("system", "pacing", "cells", "flows", "pkts_lost",
                        "bytes_offered", "bytes_dropped", "conserved",
                        "peak_util"), rows,
                       title=f"sweep '{grid.name}': {payload['num_cells']} cells"))

    # Pacing moves bytes in time, not in volume: shaped cells offer the
    # same flow byte budgets as their constant-spacing twins (same worlds,
    # same size draws) while spreading elephants and compressing mice.
    budgets = {}
    for cell in payload["cells"]:
        key = (cell["control_plane"], cell["seed"])
        budgets.setdefault(key, set()).add(
            cell["metrics"]["flow_bytes_budget"])
    same_budgets = all(len(values) == 1 for values in budgets.values())

    conserved = all(a["bytes_conserved"] for a in payload["aggregates"])
    replay = run_sweep(grid, workers=1)
    deterministic = payload_digest(replay) == payload_digest(payload)
    print()
    print(f"  [{'ok' if conserved else 'MISMATCH'}] every link conserved "
          "bytes (offered == delivered + dropped) in every cell")
    print(f"  [{'ok' if same_budgets else 'MISMATCH'}] pacing changed when "
          "bytes moved, never how many the flows budgeted")
    print(f"  [{'ok' if deterministic else 'MISMATCH'}] workers=2 and "
          "workers=1 produce identical aggregates")
    return 0 if conserved and same_budgets and deterministic else 1


if __name__ == "__main__":
    raise SystemExit(main())
