#!/usr/bin/env python
"""Cache aging: why reactive LISP keeps dropping packets (paper §1).

Sweeps the ITR map-cache TTL and the destination-popularity skew for a
reactive LISP deployment (ALT, drop-on-miss) and for the PCE control
plane.  Reactive caches miss whenever a mapping "has aged out, or simply
was never requested before"; the PCE pushes a fresh mapping at every
flow start, so its loss column stays at zero.

Run:  python examples/cache_aging.py
"""

from repro.experiments import e7_cache_aging as e7
from repro.metrics import format_table


def main():
    rows = e7.run_e7(num_sites=8, num_flows=40, ttls=(1.0, 10.0, 120.0),
                     zipf_values=(0.0, 1.2))
    print(format_table(e7.HEADERS, [row.as_tuple() for row in rows],
                       title="E7: map-cache hit ratio and packet loss vs TTL "
                             "and Zipf skew"))
    failures = e7.check_shape(rows)
    print(f"shape check: {'ok' if not failures else failures}")
    print()
    alt = [row for row in rows if row.system == "alt"]
    worst = max(alt, key=lambda row: row.packets_lost)
    best = min(alt, key=lambda row: row.packets_lost)
    print(f"reactive LISP: between {best.packets_lost} and {worst.packets_lost} "
          f"packets lost depending on TTL/skew; hit ratio "
          f"{best.hit_ratio:.0%} at best")
    pce_lost = sum(row.packets_lost for row in rows if row.system == "pce")
    print(f"PCE control plane: {pce_lost} packets lost across the whole sweep")


if __name__ == "__main__":
    main()
