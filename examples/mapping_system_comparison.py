#!/usr/bin/env python
"""Compare the PCE control plane against ALT, CONS, NERD and plain IP.

Reproduces, at example scale, the paper's two quantitative arguments:

1. what happens to the *first packets* of a flow while the EID-to-RLOC
   mapping is being resolved (E1), and
2. what the user-visible TCP connection-setup latency looks like under
   each control plane (E3, the §1 formulas).

Run:  python examples/mapping_system_comparison.py
"""

from repro.experiments import e1_packet_loss as e1
from repro.experiments import e3_setup_latency as e3
from repro.metrics import format_table


def main():
    print("running E1 (first-packet fate)...")
    rows = e1.run_e1(num_sites=6, num_flows=30, cache_ttls=(60.0,))
    print(format_table(e1.HEADERS, [row.as_tuple() for row in rows],
                       title="E1: fate of each flow's first data packet"))
    failures = e1.check_shape(rows)
    print(f"shape check: {'ok' if not failures else failures}")
    print()

    print("running E3 (connection-setup latency)...")
    rows = e3.run_e3(num_sites=6, num_flows=25)
    print(format_table(e3.HEADERS, [row.as_tuple() for row in rows],
                       title="E3: TCP setup latency (seconds)"))
    failures = e3.check_shape(rows)
    print(f"shape check: {'ok' if not failures else failures}")
    print()
    by_system = {row.system: row for row in rows}
    plain, pce = by_system["plain"], by_system["pce"]
    alt = by_system["alt+drop"]
    print(f"plain IP total wait : {plain.total_mean * 1000:8.1f} ms")
    print(f"PCE-based CP        : {pce.total_mean * 1000:8.1f} ms "
          f"({pce.total_mean / plain.total_mean:.2f}x plain)")
    print(f"LISP+ALT, drop miss : {alt.total_mean * 1000:8.1f} ms "
          f"({alt.total_mean / plain.total_mean:.1f}x plain — SYNs lost to "
          f"cache misses cost full retransmission timeouts)")


if __name__ == "__main__":
    main()
