#!/usr/bin/env python
"""Traffic engineering with the PCE control plane (the paper's claim C3).

A multihomed destination site receives flows from four other sites.  With
plain LISP, every inbound packet lands on the statically-preferred locator;
with the PCE control plane, PCE_D picks the inbound locator per flow with
its IRC engine, and — independently — each source site spreads its
*outbound* packets over its own providers (the two one-way tunnels).

The second half demonstrates the push-to-all-ITRs rationale of Step 7b:
live flows are re-homed from one egress ITR to another, and nothing drops
because every ITR already holds the mapping.

Run:  python examples/te_multihoming.py
"""

from repro.experiments import e4_te_flexibility as e4
from repro.experiments.scenario import FLOW_UDP_PORT, ScenarioConfig, build_scenario
from repro.experiments.workload import WorkloadConfig, run_workload
from repro.metrics import format_table
from repro.net.packet import udp_packet


def load_balance_demo():
    rows = e4.run_e4(num_sites=5, num_flows=40)
    print(format_table(e4.HEADERS, [row.as_tuple() for row in rows],
                       title="E4: per-provider byte shares at the destination "
                             "site (inbound) and a source site (outbound)"))
    failures = e4.check_shape(rows)
    print(f"shape check: {'ok' if not failures else failures}")


def rehoming_demo():
    print("\n--- TE re-homing under push-to-all (Step 7b rationale) ---")
    config = ScenarioConfig(control_plane="pce", num_sites=4, seed=17)
    scenario = build_scenario(config)
    cp = scenario.control_plane
    sim = scenario.sim
    run_workload(scenario, WorkloadConfig(num_flows=15, arrival_rate=10.0,
                                          source_site=0))
    site = scenario.topology.sites[0]
    assignment = dict(cp.egress_assignments[site.index])
    print(f"egress assignment after workload: "
          f"{ {str(p): i for p, i in assignment.items()} }")

    # Pretend ITR0 is congested and re-home everything it carries.
    loads = [1_000_000 if b == 0 else 0 for b in range(len(site.xtrs))]
    moves = cp.rebalance_site_egress(site, loads=loads)
    print(f"TE optimizer planned {len(moves)} move(s):")
    for move in moves:
        print(f"  {move.destination_prefix}: ITR{move.from_itr} -> ITR{move.to_itr}")

    dropped_before = cp.miss_policy.stats.dropped
    host = site.hosts[0]
    for prefix in assignment:
        host.send(udp_packet(host.address, prefix.address_at(10), 5000,
                             FLOW_UDP_PORT))
    sim.run(until=sim.now + 2.0)
    dropped = cp.miss_policy.stats.dropped - dropped_before
    print(f"packets dropped after re-homing: {dropped} "
          f"(mappings were already on every ITR)")
    if dropped:
        raise SystemExit(1)


def main():
    load_balance_demo()
    rehoming_demo()


if __name__ == "__main__":
    main()
